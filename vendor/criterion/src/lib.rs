//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! A real — if minimal — benchmark harness: it warms up, takes
//! `sample_size` timed samples bounded by `measurement_time`, and reports
//! median / min / max per benchmark on stderr.  It implements the API
//! subset used by `crates/bench/benches/*`: [`Criterion::benchmark_group`],
//! group configuration chaining, [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//! No statistical analysis, baselines, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding of benchmark
/// inputs (best-effort without compiler intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier rendering only the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    config: &'a Config,
}

impl Bencher<'_> {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// group's measurement-time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.config.measurement_time {
                break;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// A named collection of related benchmarks sharing one configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs a parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, &self.config, |b| f(b, input));
        self
    }

    /// Runs an unparameterised benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &self.config, |b| f(b));
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, config: &Config, mut f: impl FnMut(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        config,
    };
    f(&mut bencher);
    samples.sort_unstable();
    if samples.is_empty() {
        eprintln!("bench {label:<60} (no samples collected)");
    } else {
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        eprintln!(
            "bench {label:<60} median {median:>12.3?}  (min {min:.3?}, max {max:.3?}, n={})",
            samples.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`--bench`, filters, …) so
    /// `cargo bench` and `cargo test --benches` both work.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: Config::default(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark with the default configuration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, &Config::default(), |b| f(b));
        self
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a benchmark binary built with `harness = false`.
///
/// When invoked by `cargo test --benches` (which passes `--test` and
/// expects a fast smoke run), benchmarks still execute — they are simply
/// bounded by their configured budgets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
