//! Offline stand-in for `serde`: marker traits plus re-exported no-op
//! derives.  See `vendor/README.md` for scope and how to swap the real
//! crate back in.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
