//! Offline stand-in for `serde`: a small but *functional* JSON data model
//! and codec behind `Serialize` / `Deserialize` traits, plus re-exported
//! no-op derives.  See `vendor/README.md` for scope and how to swap the
//! real crate back in.
//!
//! Unlike the original marker-only stub, this version actually serializes:
//! [`Serialize::to_json`] produces a [`json::Value`], [`Deserialize::from_json`]
//! reads one back, and [`json::Value::parse`] / the `Display` impl of
//! [`json::Value`] convert between values and JSON text.  The parser reports the offending
//! line and column on malformed input, which the `cqfit-serve` JSONL server
//! relays to clients verbatim.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Functional stand-in for `serde::Serialize`: conversion into the JSON
/// data model.
pub trait Serialize {
    /// Serializes `self` into a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Functional stand-in for `serde::Deserialize`: conversion from the JSON
/// data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from a JSON value.
    ///
    /// # Errors
    /// Returns a [`json::JsonError`] describing the structural mismatch.
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError>;
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Parses JSON text and deserializes a value of type `T` from it.
///
/// # Errors
/// Returns a [`json::JsonError`] with line/column position on malformed
/// JSON, or a position-less error on a structural mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, json::JsonError> {
    let v = json::Value::parse(text)?;
    T::from_json(&v)
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
        v.as_bool()
            .ok_or_else(|| json::JsonError::mismatch("bool", v))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
                let i = v.as_i64().ok_or_else(|| json::JsonError::mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| {
                    json::JsonError::semantic(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64);

// Unsigned values above `i64::MAX` have no JSON integer representation in
// this model; they serialize as decimal strings (and deserialize from
// either shape), so the wire never carries a silently wrapped negative.
macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                match i64::try_from(*self) {
                    Ok(i) => json::Value::Int(i),
                    Err(_) => json::Value::Str(self.to_string()),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
                if let Some(s) = v.as_str() {
                    return s.parse::<$t>().map_err(|_| {
                        json::JsonError::semantic(format!(
                            "invalid {} string `{s}`",
                            stringify!($t)
                        ))
                    });
                }
                let i = v.as_i64().ok_or_else(|| json::JsonError::mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| {
                    json::JsonError::semantic(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, usize, u64);

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
        v.as_f64()
            .ok_or_else(|| json::JsonError::mismatch("number", v))
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::JsonError::mismatch("string", v))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
        v.as_arr()
            .ok_or_else(|| json::JsonError::mismatch("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(t) => t.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert!(from_str::<bool>(&to_string(&true)).unwrap());
        assert_eq!(from_str::<u32>(&to_string(&7u32)).unwrap(), 7);
        assert_eq!(from_str::<i64>(&to_string(&-3i64)).unwrap(), -3);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64)).unwrap(), 1.5);
        let s = "hé\"llo\n".to_string();
        assert_eq!(from_str::<String>(&to_string(&s)).unwrap(), s);
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v)).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(from_str::<Option<u32>>(&to_string(&o)).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }

    #[test]
    fn huge_u64_round_trips_without_wrapping() {
        let huge = u64::MAX - 7;
        let text = to_string(&huge);
        assert!(!text.starts_with('-'), "must not wrap negative: {text}");
        assert_eq!(from_str::<u64>(&text).unwrap(), huge);
        // In-range values still serialize as plain integers.
        assert_eq!(to_string(&42u64), "42");
        assert!(from_str::<u64>("\"notanumber\"").is_err());
    }
}
