//! A minimal JSON data model, parser and writer.
//!
//! The parser is a recursive-descent reader with a depth limit (the server
//! feeds it untrusted request lines) that tracks line and column, so every
//! syntax error carries the position of the offending token.  Objects keep
//! their key insertion order, which makes serialized output deterministic.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// A number with fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys keep insertion order (no deduplication).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object value from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content of an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an object (first occurrence); `None` for missing
    /// keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Looks up a key that must be present.
    ///
    /// # Errors
    /// Fails when `self` is not an object or the key is missing.
    pub fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::semantic(format!("missing key `{key}`")))
    }

    /// A short name of the value's type, used in mismatch errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] carrying the line/column of the offending
    /// token.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no NaN/inf literal; degrade to null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error raised by the JSON parser and by [`crate::Deserialize`] impls.
///
/// Parse errors carry the 1-based line and column of the offending token;
/// structural (deserialization) errors carry position `(0, 0)` and display
/// without one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending token; 0 for structural errors.
    pub line: usize,
    /// 1-based column of the offending token; 0 for structural errors.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl JsonError {
    /// A structural (position-less) error.
    pub fn semantic(msg: impl Into<String>) -> JsonError {
        JsonError {
            line: 0,
            col: 0,
            msg: msg.into(),
        }
    }

    /// A type-mismatch error naming the expected shape and the found value.
    pub fn mismatch(expected: &str, found: &Value) -> JsonError {
        JsonError::semantic(format!("expected {expected}, found {}", found.type_name()))
    }

    /// True if this error carries a source position.
    pub fn has_position(&self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.has_position() {
            write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == b => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                b as char, found as char
            ))),
            None => Err(self.error(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        for expected in word.bytes() {
            match self.peek() {
                Some(b) if b == expected => {
                    self.bump();
                }
                _ => return Err(self.error(format!("invalid literal (expected `{word}`)"))),
            }
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut pending = Vec::new();
        loop {
            let Some(b) = self.bump() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    if !pending.is_empty() {
                        out.push_str(
                            std::str::from_utf8(&pending)
                                .map_err(|_| self.error("invalid UTF-8 in string"))?,
                        );
                    }
                    return Ok(out);
                }
                b'\\' => {
                    if !pending.is_empty() {
                        out.push_str(
                            std::str::from_utf8(&pending)
                                .map_err(|_| self.error("invalid UTF-8 in string"))?,
                        );
                        pending.clear();
                    }
                    let Some(esc) = self.bump() else {
                        return Err(self.error("unterminated escape sequence"));
                    };
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate in string"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x20 => return Err(self.error("unescaped control character in string")),
                b => pending.push(b),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return Err(self.error("unterminated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(Value::parse("1.5e2").unwrap(), Value::Float(150.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.req("c").unwrap().as_str(), Some("x"));
        let arr = v.req("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn round_trips_text() {
        let cases = [
            r#"{"k":"v","n":[1,2.5,null,true],"s":"\"q\\uote\""}"#,
            "[]",
            "{}",
            r#""unicode: ⊤ and é""#,
        ];
        for text in cases {
            let v = Value::parse(text).unwrap();
            let re = Value::parse(&v.to_string()).unwrap();
            assert_eq!(v, re, "round trip of {text}");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = Value::parse("{\"a\": 1,\n  \"b\" 2}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
        assert!(err.to_string().contains("line 2"));
        let err = Value::parse("[1, 2").unwrap_err();
        assert!(err.has_position());
        assert!(Value::parse("[1] trailing").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Value::parse(r#""\ud83d""#).is_err());
    }
}
