//! No-op stand-ins for serde's derive macros (offline build).
//!
//! The derives intentionally expand to nothing: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations and
//! never serializes through them, so marker-trait conformance is not
//! required.  The `attributes(serde)` declaration makes `#[serde(skip)]`
//! and friends parse without effect.

use proc_macro::TokenStream;

/// Derives nothing; accepts and ignores `#[serde(...)]` field attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts and ignores `#[serde(...)]` field attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
