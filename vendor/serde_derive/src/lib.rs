//! No-op stand-ins for serde's derive macros (offline build).
//!
//! The derives intentionally expand to nothing: types that actually
//! serialize implement the stub `serde::Serialize` / `serde::Deserialize`
//! traits *by hand* (see `cqfit_data::serde_impls` and
//! `cqfit_query::serde_impls`); the remaining `#[derive(Serialize,
//! Deserialize)]` occurrences are forward-looking annotations only.  The
//! `attributes(serde)` declaration makes `#[serde(skip)]` and friends
//! parse without effect.

use proc_macro::TokenStream;

/// Derives nothing; accepts and ignores `#[serde(...)]` field attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts and ignores `#[serde(...)]` field attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
