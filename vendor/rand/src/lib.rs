//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements the exact API subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`] —
//! backed by SplitMix64, a well-mixed 64-bit PRNG.  Determinism is the
//! point: the same seed always yields the same stream, on every platform,
//! independent of any crates.io version drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform `u64` in `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Maps 53 random bits onto `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly samples one value from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs 0 <= p <= 1");
        unit_f64(self.next_u64()) < p
    }

    /// Returns a uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types [`Rng::gen`] can produce.
pub trait Standard {
    /// Builds a uniform value from one random 64-bit word.
    fn from_word(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        unit_f64(word)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not cryptographically secure — statistical use only, exactly like
    /// the real `StdRng` contract this stands in for.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            // Full-width inclusive range: span wraps to 0; must not overflow
            // in debug builds.
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(0usize..=usize::MAX);
            let f = rng.gen_range(0.05f64..0.6);
            assert!((0.05..0.6).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&heads), "heads = {heads}");
    }
}
