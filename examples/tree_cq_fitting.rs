//! Tree CQ (ELI concept) fitting, Section 5 of the paper.
//!
//! Run with `cargo run --example tree_cq_fitting`.

use cqfit::{tree, SearchBudget};
use cqfit_data::{parse_example, LabeledExamples, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 5.20 of the paper.
    let schema = Schema::binary_schema(["P", "Q"], ["R"]);
    let pos = parse_example(&schema, "P(a)\nR(a,b)\nQ(b)\n* a")?;
    let neg1 = parse_example(&schema, "P(a)\nR(a,b)\n* a")?;
    let neg2 = parse_example(&schema, "R(a,b)\nR(c,b)\nR(c,d)\nQ(d)\n* a")?;
    let examples = LabeledExamples::new(vec![pos], vec![neg1, neg2])?;
    let budget = SearchBudget::default();

    println!(
        "fitting tree CQ exists:        {}",
        tree::fitting_exists(&examples)?
    );

    let fitting = tree::construct_fitting(&examples, &budget)?.expect("fitting exists");
    println!("a fitting tree CQ:             {fitting}");

    println!(
        "most-specific fitting exists:  {}",
        tree::most_specific_exists(&examples)?
    );
    let ms = tree::construct_most_specific(&examples, &budget)?.expect("exists");
    println!("most-specific fitting tree CQ: {ms}");
    println!(
        "  weakly most-general?         {}",
        tree::verify_weakly_most_general(&ms, &examples)?
    );

    match tree::construct_weakly_most_general(&examples, &budget)? {
        Some(q) => println!("weakly most-general fitting:   {q}"),
        None => println!("no weakly most-general fitting found within the budget"),
    }

    println!(
        "unique fitting tree CQ exists: {:?}",
        tree::unique_exists(&examples, &budget)?
    );

    // Example 5.13: with only the positive loop example there are fittings
    // but no most-specific one.
    let schema2 = Schema::binary_schema([], ["R"]);
    let loop_pos = parse_example(&schema2, "R(a,a)\n* a")?;
    let loop_examples = LabeledExamples::new(vec![loop_pos], vec![])?;
    println!(
        "loop example: fitting exists = {}, most-specific exists = {}",
        tree::fitting_exists(&loop_examples)?,
        tree::most_specific_exists(&loop_examples)?
    );
    Ok(())
}
