//! Automatic feature generation (see the introduction of the paper): given a
//! relational dataset with labeled tuples, extremal fitting CQs are natural
//! candidate features — most-specific fittings describe the positives
//! exactly, most-general fittings generalize as far as the negatives allow,
//! and the whole convex set of fittings lies between them.
//!
//! Run with `cargo run --example feature_generation`.

use cqfit::{cq, ucq, Certainty, SearchBudget};
use cqfit_data::{parse_example, LabeledExamples, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy "molecule" schema: atoms carry element labels, bonds are binary.
    let schema = Schema::binary_schema(["Carbon", "Oxygen", "Nitrogen"], ["bond"]);

    // Positive molecules contain a carbon double-bonded… simplified here to:
    // a carbon bonded to an oxygen.  Negative molecules do not.
    let pos1 = parse_example(
        &schema,
        "Carbon(c1)\nOxygen(o1)\nbond(c1,o1)\nCarbon(c2)\nbond(c1,c2)\n* c1",
    )?;
    let pos2 = parse_example(
        &schema,
        "Carbon(c1)\nOxygen(o1)\nbond(c1,o1)\nNitrogen(n1)\nbond(n1,c1)\n* c1",
    )?;
    let neg1 = parse_example(&schema, "Carbon(c1)\nCarbon(c2)\nbond(c1,c2)\n* c1")?;
    let neg2 = parse_example(&schema, "Oxygen(o1)\nNitrogen(n1)\nbond(o1,n1)\n* o1")?;
    let examples = LabeledExamples::new(vec![pos1, pos2], vec![neg1, neg2])?;

    let budget = SearchBudget::default();

    // Feature 1: the most-specific fitting CQ (safe, conservative feature).
    if let Some(q) = cq::most_specific_fitting(&examples)? {
        println!("feature (most-specific fitting CQ, core): {}", q.core());
    }

    // Feature 2: a weakly most-general fitting CQ (the most permissive
    // feature that still separates the examples).
    match cq::construct_weakly_most_general(&examples, &budget)? {
        Some(q) => println!("feature (weakly most-general fitting CQ): {q}"),
        None => println!("no weakly most-general fitting CQ found within the budget"),
    }

    // Feature 3: the most-specific fitting UCQ (one disjunct per positive).
    if let Some(u) = ucq::most_specific_fitting(&examples)? {
        println!("feature (most-specific fitting UCQ): {} disjuncts", u.len());
        match ucq::verify_most_general_fitting(&u, &examples, &budget)? {
            Certainty::Yes => println!("  … and it is also most-general (unique fitting UCQ)"),
            Certainty::No => println!("  … and it is not most-general"),
            Certainty::Unknown => println!("  … most-generality undecided within the budget"),
        }
    }
    Ok(())
}
