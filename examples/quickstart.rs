//! Quickstart: fit conjunctive queries to labeled data examples.
//!
//! Run with `cargo run --example quickstart`.

use cqfit::{cq, SearchBudget};
use cqfit_data::{parse_example, LabeledExamples, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A schema with a single binary relation R (directed graphs).
    let schema = Schema::digraph();

    // Positive examples: a directed triangle and a directed 5-cycle.
    // Negative example: the symmetric edge (2-cycle).
    let c3 = parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,a)")?;
    let c5 = parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)")?;
    let k2 = parse_example(&schema, "R(a,b)\nR(b,a)")?;
    let examples = LabeledExamples::new(vec![c3, c5], vec![k2])?;

    println!(
        "fitting CQ exists:          {}",
        cq::fitting_exists(&examples)?
    );

    // The most-specific fitting CQ is the canonical CQ of the direct product
    // of the positive examples (Theorem 3.3 / Proposition 3.5).
    let most_specific = cq::most_specific_fitting(&examples)?.expect("a fitting exists");
    println!(
        "most-specific fitting:       {} atoms, {} variables (its core is the directed 15-cycle)",
        most_specific.num_atoms(),
        most_specific.num_variables()
    );
    println!(
        "  core size: {} variables",
        most_specific.core().num_variables()
    );
    assert!(cq::verify_fitting(&most_specific, &examples)?);
    assert!(cq::verify_most_specific_fitting(&most_specific, &examples)?);

    // Is it also weakly most-general / unique?  (It is not: longer odd cycles
    // are strictly more general fittings.)
    println!(
        "most-specific is weakly most-general: {}",
        cq::verify_weakly_most_general(&most_specific.core(), &examples)?
    );
    println!(
        "unique fitting exists:       {}",
        cq::unique_fitting_exists(&examples)?
    );

    // The bounded search for a weakly most-general fitting reports Unknown
    // here, reflecting Example 3.10(3) of the paper.
    let budget = SearchBudget::default();
    println!(
        "weakly most-general search:  {:?}",
        cq::weakly_most_general_exists(&examples, &budget)?
    );
    Ok(())
}
