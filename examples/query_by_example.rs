//! Query-By-Example on the EmpInfo database of Figure 1 / Example 1.1.
//!
//! Given the labeled employees (Hilbert, +), (Turing, −), (Einstein, +), we
//! look for fitting queries.  The paper's hand-written fitting queries q1–q3
//! all use constants or negation; constant-free CQs/UCQs cannot separate the
//! examples, and the library detects this.  Promoting the constant `Gauss`
//! to a unary relation (the standard trick in Query-By-Example systems)
//! makes a unique fitting CQ appear.
//!
//! Run with `cargo run --example query_by_example`.

use cqfit::{cq, ucq, SearchBudget};
use cqfit_data::{Example, Instance, LabeledExamples, Schema};
use cqfit_gen::empinfo_database;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (_schema, database, examples) = empinfo_database();
    println!("database: {database}");

    // 1. Constant-free CQs / UCQs cannot fit these labeled examples.
    println!(
        "constant-free fitting CQ exists:  {}",
        cq::fitting_exists(&examples)?
    );
    println!(
        "constant-free fitting UCQ exists: {}",
        ucq::fitting_exists(&examples)?
    );

    // 2. Promote the constant `Gauss` to a unary relation and retry.
    let schema = Arc::new(Schema::new([("EmpInfo", 3), ("IsGauss", 1)])?);
    let mut inst = Instance::new(schema.clone());
    inst.add_fact_labels("EmpInfo", &["Hilbert", "Math", "Gauss"])?;
    inst.add_fact_labels("EmpInfo", &["Turing", "ComputerScience", "vonNeumann"])?;
    inst.add_fact_labels("EmpInfo", &["Einstein", "Physics", "Gauss"])?;
    inst.add_fact_labels("IsGauss", &["Gauss"])?;
    let point = |name: &str| {
        let v = inst.value_by_label(name).unwrap();
        Example::new(inst.clone(), vec![v])
    };
    let examples = LabeledExamples::new(
        vec![point("Hilbert"), point("Einstein")],
        vec![point("Turing")],
    )?;

    println!(
        "with IsGauss: fitting CQ exists:  {}",
        cq::fitting_exists(&examples)?
    );
    let most_specific = cq::most_specific_fitting(&examples)?.expect("a fitting CQ exists");
    println!("most-specific fitting CQ (core): {}", most_specific.core());

    // Generalize as far as the negative example allows: this recovers the
    // shape of q1 from Example 1.1, "employees managed by Gauss".
    let budget = SearchBudget::default();
    match cq::construct_weakly_most_general(&examples, &budget)? {
        Some(q) => {
            println!("weakly most-general fitting CQ:  {q}");
            println!(
                "  verified: {}",
                cq::verify_weakly_most_general(&q, &examples)?
            );
        }
        None => println!("no weakly most-general fitting CQ found within the budget"),
    }
    println!(
        "unique fitting CQ exists:         {}",
        cq::unique_fitting_exists(&examples)?
    );

    // Evaluate the most-specific fitting on the database: it must return
    // Hilbert and Einstein but not Turing.
    let answers = most_specific.evaluate(&inst);
    let names: Vec<&str> = answers.iter().map(|t| inst.label(t[0])).collect();
    println!("answers on the database:          {names:?}");
    Ok(())
}
