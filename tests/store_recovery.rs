//! Differential suite for the durable store (PR 5): after any fixed-seed
//! churn sequence, an engine recovered from its write-ahead log must be
//! **indistinguishable** from the engine that never crashed — identical
//! workspace info, hom-equivalent (in fact byte-identical) fitting
//! answers, identical CQ/UCQ existence answers — including recovery from
//! a torn log (truncated mid-record) and reopening after snapshot
//! compaction.
//!
//! The oracle is the storeless engine driven through the identical
//! request sequence: both engines see the same `cqfit_gen::churn_workload`
//! ops plus interleaved questions, and every comparison is on the
//! serialized response text, so any divergence — ids, revisions, query
//! shapes — fails loudly.

use cqfit_engine::{
    Engine, EngineConfig, ExamplePayload, FitMode, Polarity, QueryClass, Request, Response,
};
use cqfit_gen::{churn_workload, resolve_churn, ChurnOp, RandomConfig, ResolvedChurnOp};
use cqfit_store::{Store, StoreConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const WS: &str = "churn";

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cqfit_recovery_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path, compact_after: usize) -> Store {
    Store::open(StoreConfig {
        dir: dir.to_path_buf(),
        compact_after,
        // The tests simulate crashes by dropping the engine, not by
        // killing the OS; skipping fsync keeps the suite fast without
        // weakening what is being tested (log content, not disk caches).
        fsync: false,
    })
    .expect("open store")
}

fn durable(dir: &Path, compact_after: usize) -> (Engine, cqfit_store::RecoveryReport) {
    Engine::with_store(EngineConfig::default(), open_store(dir, compact_after))
        .expect("durable engine")
}

fn create_request() -> Request {
    Request::CreateWorkspace {
        workspace: WS.into(),
        schema: cqfit_data::Schema::digraph().as_ref().clone(),
        arity: 0,
    }
}

/// Turns churn ops into concrete requests via the shared
/// [`resolve_churn`] id resolver (both engines assign ids identically).
fn churn_requests(ops: &[ChurnOp]) -> Vec<Request> {
    let polarity = |positive| {
        if positive {
            Polarity::Positive
        } else {
            Polarity::Negative
        }
    };
    let mut requests = vec![create_request()];
    requests.extend(resolve_churn(ops, 0).into_iter().map(|op| match op {
        ResolvedChurnOp::Add { positive, example } => Request::AddExample {
            workspace: WS.into(),
            polarity: polarity(positive),
            example: ExamplePayload::Structured(*example),
        },
        ResolvedChurnOp::Remove { positive, id } => Request::RemoveExample {
            workspace: WS.into(),
            polarity: polarity(positive),
            id,
        },
    }));
    requests
}

/// The question battery both engines must answer identically.
///
/// `WorkspaceInfo` comes *after* the fitting questions: recovery rebuilds
/// the maintained product lazily (on the first question), so its
/// `product_fresh` flag — cache introspection, not logical state — only
/// converges with the oracle once a question has forced the rebuild on
/// both sides.  Everything logical (counts, arity, revision, every
/// fitting answer) must match from the first request on.
fn questions() -> Vec<Request> {
    vec![
        Request::FittingExists {
            workspace: WS.into(),
            class: QueryClass::Cq,
        },
        Request::FittingExists {
            workspace: WS.into(),
            class: QueryClass::Ucq,
        },
        Request::Fit {
            workspace: WS.into(),
            class: QueryClass::Cq,
            mode: FitMode::Plain,
        },
        Request::Fit {
            workspace: WS.into(),
            class: QueryClass::Cq,
            mode: FitMode::Minimized,
        },
        Request::Fit {
            workspace: WS.into(),
            class: QueryClass::Ucq,
            mode: FitMode::Minimized,
        },
        Request::WorkspaceInfo {
            workspace: WS.into(),
        },
    ]
}

/// Asserts that both engines answer the question battery byte-identically.
/// The `Plain` CQ fit serializes the canonical CQ of the maintained
/// product, so byte equality there certifies product equivalence.
fn assert_same_answers(oracle: &Engine, recovered: &Engine, context: &str) {
    for question in questions() {
        let expected = serde::to_string(&oracle.handle(&question));
        let got = serde::to_string(&recovered.handle(&question));
        assert_eq!(got, expected, "{context}: {question:?} diverged");
    }
}

fn workload(seed: u64, steps: usize) -> Vec<Request> {
    let cfg = RandomConfig {
        num_values: 4,
        density: 0.3,
        arity: 0,
        num_positive: 4,
        num_negative: 3,
        seed,
    };
    churn_requests(&churn_workload(&cqfit_data::Schema::digraph(), &cfg, steps))
}

fn drive(engine: &Engine, requests: &[Request]) {
    for request in requests {
        let response = engine.handle(request);
        assert!(response.is_ok(), "{request:?} failed: {response:?}");
    }
}

/// Crash (drop without shutdown) after a churn sequence: the recovered
/// engine is byte-identical to the never-crashed oracle, across several
/// seeds and with questions interleaved mid-stream on both sides.
#[test]
fn recovered_engine_matches_never_crashed_oracle() {
    for (seed, steps) in [(11u64, 40usize), (12, 70), (13, 100)] {
        let dir = tmp_dir("differential");
        let requests = workload(seed, steps);
        let (live, _) = durable(&dir, 1024);
        let oracle = Engine::new(EngineConfig::default());
        for (i, request) in requests.iter().enumerate() {
            let live_resp = serde::to_string(&live.handle(request));
            let oracle_resp = serde::to_string(&oracle.handle(request));
            assert_eq!(live_resp, oracle_resp, "seed {seed}: mutation {i} diverged");
            // Interleave questions so the oracle's product freshness
            // follows the same rebuild schedule a real session would.
            if i % 17 == 5 {
                assert_same_answers(&oracle, &live, "mid-stream");
            }
        }
        assert_same_answers(&oracle, &live, "pre-crash");
        drop(live); // crash: no shutdown, no final sync

        let (recovered, report) = durable(&dir, 1024);
        assert_eq!(report.workspaces, 1, "seed {seed}");
        assert_eq!(report.torn_bytes_dropped, 0, "seed {seed}: clean log");
        assert_eq!(
            report.records_replayed,
            requests.len() as u64,
            "seed {seed}: one record per mutation"
        );
        assert_same_answers(&oracle, &recovered, "post-crash");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Exhaustive torn tails (PR 6): instead of a handful of fixed-offset
/// cuts, drive the simulation harness, which cuts the log at **every**
/// record boundary and at interior bytes of **every** record, recovers
/// each cut on the simulated filesystem, and compares against an oracle
/// that only saw the surviving mutation prefix — plus seeded mid-run
/// crashes and write/sync fault injection (phases B and C).  A failure
/// prints the seed; replay it with `CQFIT_SIM_SEED=<seed>`.
#[test]
fn torn_tails_are_explored_exhaustively_by_the_simulator() {
    let cfg = cqfit_sim::SimConfig::smoke();
    let mut total = cqfit_sim::ExploreStats::default();
    for seed in [21u64, 22] {
        let stats = cqfit_sim::explore(seed, &cfg)
            .unwrap_or_else(|message| panic!("CQFIT_SIM_SEED={seed} reproduces: {message}"));
        assert!(
            stats.boundary_cuts > stats.records,
            "seed {seed}: every record boundary (plus the empty and full \
             logs) must be cut: {stats:?}"
        );
        assert!(
            stats.mid_record_cuts >= stats.records,
            "seed {seed}: at least one interior byte of every record must \
             be cut: {stats:?}"
        );
        total.merge(&stats);
    }
    assert!(total.executions > 50, "coverage collapsed: {total:?}");
}

/// One fast real-filesystem torn-tail cut stays in tier-1: the simulator
/// models the filesystem, so keep a smoke check that the real
/// `std::fs`-backed store truncates and recovers identically.
#[test]
fn torn_tail_smoke_on_the_real_filesystem() {
    let dir = tmp_dir("torn");
    let requests = workload(21, 30);
    let (live, _) = durable(&dir, 1024);
    drive(&live, &requests);
    drop(live);
    let wal = dir.join(format!("ws-{WS}.wal"));
    let full = std::fs::read(&wal).unwrap();

    let torn_bytes = 7usize;
    let cut_dir = tmp_dir("torn_cut");
    std::fs::create_dir_all(&cut_dir).unwrap();
    std::fs::write(
        cut_dir.join(format!("ws-{WS}.wal")),
        &full[..full.len() - torn_bytes],
    )
    .unwrap();
    let (recovered, report) = durable(&cut_dir, 1024);
    assert!(report.torn_bytes_dropped > 0);
    let survived = report.records_replayed as usize;
    assert!(survived < requests.len(), "the torn record is lost");
    // Oracle: replay only the surviving prefix of mutations.
    let oracle = Engine::new(EngineConfig::default());
    drive(&oracle, &requests[..survived]);
    assert_same_answers(&oracle, &recovered, "torn tail");
    // The truncated log keeps accepting appends, and reopening again
    // replays them.
    let extra = Request::AddExample {
        workspace: WS.into(),
        polarity: Polarity::Negative,
        example: ExamplePayload::Text("R(z,z)".into()),
    };
    let recovered_resp = serde::to_string(&recovered.handle(&extra));
    assert_eq!(recovered_resp, serde::to_string(&oracle.handle(&extra)));
    drop(recovered);
    let (reopened, _) = durable(&cut_dir, 1024);
    assert_same_answers(&oracle, &reopened, "torn tail + append + reopen");
    std::fs::remove_dir_all(&cut_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A small compaction budget forces snapshot compactions mid-churn; the
/// compacted log reopens to the same engine, and a forced `Persist`
/// followed by a kill keeps the post-snapshot tail.
#[test]
fn compaction_preserves_equivalence_across_reopen() {
    let dir = tmp_dir("compaction");
    let requests = workload(31, 80);
    // Budget far below the record count: many auto-compactions.
    let (live, _) = durable(&dir, 8);
    let oracle = Engine::new(EngineConfig::default());
    drive(&live, &requests);
    drive(&oracle, &requests);
    let store_stats = live.store().unwrap().stats();
    assert!(
        store_stats.compactions >= 5,
        "budget 8 over 80 ops must compact repeatedly ({} compactions)",
        store_stats.compactions
    );
    assert!(store_stats.bytes_compacted > 0);
    drop(live);

    let (recovered, report) = durable(&dir, 8);
    assert!(
        report.records_replayed < requests.len() as u64,
        "replay is bounded by the compaction budget, not workspace lifetime"
    );
    assert_same_answers(&oracle, &recovered, "post-compaction reopen");

    // Forced persist, two more mutations, crash, reopen: snapshot + tail.
    assert!(recovered.handle(&Request::Persist).is_ok());
    let tail = [
        Request::AddExample {
            workspace: WS.into(),
            polarity: Polarity::Negative,
            example: ExamplePayload::Text("R(t,t)".into()),
        },
        Request::FittingExists {
            workspace: WS.into(),
            class: QueryClass::Cq,
        },
    ];
    for request in &tail {
        let a = serde::to_string(&recovered.handle(request));
        let b = serde::to_string(&oracle.handle(request));
        assert_eq!(a, b, "post-persist tail");
    }
    drop(recovered);
    let (reopened, report) = durable(&dir, 8);
    assert!(
        report.records_replayed >= 2,
        "snapshot plus the post-persist tail replays"
    );
    assert_same_answers(&oracle, &reopened, "persist + tail + reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-and-retry differential (PR 8): a crash *between* applying an
/// identified mutation and acking it is the ambiguous window a client
/// retry must survive.  The `request_id` travels in the WAL record, so
/// recovery repopulates the idempotency memo and the retried mutation is
/// answered from it — applied exactly once — instead of applied twice.
/// The oracle saw each logical mutation exactly once and never crashed.
#[test]
fn retried_mutation_after_kill_applies_exactly_once() {
    let dir = tmp_dir("kill_retry");
    let requests = workload(41, 30);
    let (live, _) = durable(&dir, 1024);
    let oracle = Engine::new(EngineConfig::default());
    // Drive both engines through identified mutations, like a real
    // client session would (each request carries a fresh request_id).
    for (i, request) in requests.iter().enumerate() {
        let id = Some(1_000 + i as u64);
        let a = serde::to_string(&live.handle_with_id(request, id));
        let b = serde::to_string(&oracle.handle_with_id(request, id));
        assert_eq!(a, b, "mutation {i} diverged");
    }
    // The ambiguous mutation: applied and logged, but the "ack" (the
    // response reaching the client) is lost in the crash below.
    let ambiguous = Request::AddExample {
        workspace: WS.into(),
        polarity: Polarity::Negative,
        example: ExamplePayload::Text("R(q,q)".into()),
    };
    let ambiguous_id = Some(77_777);
    let original = serde::to_string(&live.handle_with_id(&ambiguous, ambiguous_id));
    let oracle_resp = serde::to_string(&oracle.handle_with_id(&ambiguous, ambiguous_id));
    assert_eq!(original, oracle_resp);
    drop(live); // kill -9: no shutdown, no ack delivered

    // The client cannot know whether the mutation applied; it retries
    // the same request_id against the recovered server.
    let (recovered, report) = durable(&dir, 1024);
    assert_eq!(report.workspaces, 1);
    let retried = serde::to_string(&recovered.handle_with_id(&ambiguous, ambiguous_id));
    assert_eq!(
        retried, original,
        "the retry must be answered from the recovered memo with the \
         original response"
    );
    // Differential: the recovered-and-retried engine matches the oracle
    // that saw the mutation exactly once.  Without memo repopulation the
    // retry double-applies and the counts/ids below diverge.
    assert_same_answers(&oracle, &recovered, "kill + retry");

    // A *fresh* id for the same payload is a new logical mutation and
    // must really apply on both sides.
    let fresh = serde::to_string(&recovered.handle_with_id(&ambiguous, Some(88_888)));
    let oracle_fresh = serde::to_string(&oracle.handle_with_id(&ambiguous, Some(88_888)));
    assert_eq!(fresh, oracle_fresh, "fresh ids still apply");
    assert_ne!(fresh, retried, "a fresh id is not a memo hit");
    assert_same_answers(&oracle, &recovered, "kill + retry + fresh");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Multi-workspace recovery: each workspace restores independently, drops
/// stay dropped, and ids keep flowing from the pre-crash counters.
#[test]
fn multiple_workspaces_and_drops_survive_restart() {
    let dir = tmp_dir("multi");
    let (live, _) = durable(&dir, 1024);
    for ws in ["alpha", "beta", "gamma"] {
        assert!(live
            .handle(&Request::CreateWorkspace {
                workspace: ws.into(),
                schema: cqfit_data::Schema::digraph().as_ref().clone(),
                arity: 0,
            })
            .is_ok());
        assert!(live
            .handle(&Request::AddExample {
                workspace: ws.into(),
                polarity: Polarity::Positive,
                example: ExamplePayload::Text("R(a,b)\nR(b,c)\nR(c,a)".into()),
            })
            .is_ok());
    }
    assert!(live
        .handle(&Request::DropWorkspace {
            workspace: "beta".into()
        })
        .is_ok());
    drop(live);

    let (recovered, report) = durable(&dir, 1024);
    assert_eq!(report.workspaces, 2, "dropped workspace stays dropped");
    match recovered.handle(&Request::ListWorkspaces) {
        Response::Workspaces { names } => assert_eq!(names, vec!["alpha", "gamma"]),
        other => panic!("unexpected {other:?}"),
    }
    // Ids continue from the pre-crash counter in each workspace.
    match recovered.handle(&Request::AddExample {
        workspace: "alpha".into(),
        polarity: Polarity::Negative,
        example: ExamplePayload::Text("R(x,x)".into()),
    }) {
        Response::ExampleAdded { id, .. } => assert_eq!(id, 1),
        other => panic!("unexpected {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
