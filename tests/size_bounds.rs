//! Reproduction of the paper's size lower bounds on small parameters
//! (Theorems 3.40, 3.41, 3.42 and 5.37): the measured sizes of the
//! constructed fittings must match the predicted exponential growth.

use cqfit::{cq, tree, SearchBudget};
use cqfit_gen::{bitstring_family, bitstring_family_z, lra_family, prime_cycles_family, primes};

/// Theorem 3.40: the smallest fitting CQ for the prime-cycle family has size
/// ∏_{i=2..n} p_i ≥ 2ⁿ⁻¹ while the examples have polynomial size.
#[test]
fn theorem_3_40_exponential_fitting_size() {
    for n in 2..=5 {
        let e = prime_cycles_family(n);
        assert!(cq::fitting_exists(&e).unwrap(), "n = {n}");
        let fitting = cq::most_specific_fitting(&e).unwrap().unwrap();
        let expected: usize = primes(n)[1..].iter().product();
        // The product of directed cycles of pairwise coprime lengths is the
        // directed cycle of the product length, which is already a core.
        assert_eq!(
            fitting.num_variables(),
            expected,
            "the fitting is the directed cycle of length ∏ p_i"
        );
        // The input is small, the output is large.
        assert!(e.total_size() < expected + 2 * n + 2);
    }
}

/// Theorem 3.41: the bit-string family has a unique fitting CQ with 2ⁿ
/// variables (here n = 1, 2; n = 3 is already 8 values on a 9-relation
/// schema and exercised by the benchmark harness instead).
#[test]
fn theorem_3_41_unique_fitting_with_exponentially_many_variables() {
    for n in 1..=2usize {
        let e = bitstring_family(n);
        assert!(cq::fitting_exists(&e).unwrap(), "n = {n}");
        let fitting = cq::most_specific_fitting(&e).unwrap().unwrap();
        assert_eq!(fitting.core().num_variables(), 1 << n);
        assert!(
            cq::unique_fitting_exists(&e).unwrap(),
            "the family has a unique fitting CQ (n = {n})"
        );
    }
}

/// Theorem 3.42: the Z-extended family still has fitting CQs with 2ⁿ
/// variables; its bases of most-general fittings have doubly exponential
/// cardinality, which we witness indirectly by checking that the
/// most-specific fitting is *not* weakly most-general (so the basis, if any,
/// must contain other members).
#[test]
fn theorem_3_42_family_shapes() {
    let e = bitstring_family_z(1);
    assert!(cq::fitting_exists(&e).unwrap());
    let fitting = cq::most_specific_fitting(&e).unwrap().unwrap();
    assert_eq!(fitting.core().num_variables(), 2);
}

/// Theorem 5.37: fitting tree CQs for the L/R/A family exist; constructing
/// them requires unraveling the product (the paper shows doubly exponential
/// growth — already for n = 2 the existence check is cheap while explicit
/// constructions get large, which is why only n = 1 is constructed here and
/// the scaling series lives in the benchmark harness).
#[test]
fn theorem_5_37_tree_fitting_blowup() {
    let e = lra_family(1);
    assert!(tree::fitting_exists(&e).unwrap());
    let budget = SearchBudget {
        max_tree_nodes: 1_000_000,
        ..SearchBudget::default()
    };
    let q = tree::construct_fitting(&e, &budget).unwrap().unwrap();
    assert!(tree::verify_fitting(&q, &e).unwrap());
    assert!(q.num_variables() >= 2);

    let e2 = lra_family(2);
    assert!(tree::fitting_exists(&e2).unwrap());
    assert!(e2.total_size() > e.total_size());
}
