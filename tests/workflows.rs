//! End-to-end workflow tests: consistency between the different fitting
//! notions across the public API, on fixed scenarios and deterministic
//! random collections.

use cqfit::{cq, tree, ucq, Certainty, SearchBudget};
use cqfit_data::{LabeledExamples, Schema};
use cqfit_gen::{random_labeled_examples, RandomConfig};

/// For random Boolean example collections over the digraph schema, the
/// different CQ fitting notions are mutually consistent.
#[test]
fn cq_notions_are_consistent_on_random_collections() {
    let schema = Schema::digraph();
    let budget = SearchBudget::default();
    for seed in 0..20u64 {
        let cfg = RandomConfig {
            num_values: 3,
            density: 0.35,
            arity: 0,
            num_positive: 2,
            num_negative: 2,
            seed,
        };
        let examples = random_labeled_examples(&schema, &cfg);
        let exists = cq::fitting_exists(&examples).unwrap();
        let constructed = cq::construct_fitting(&examples).unwrap();
        assert_eq!(exists, constructed.is_some(), "seed {seed}");
        if let Some(q) = &constructed {
            assert!(cq::verify_fitting(q, &examples).unwrap(), "seed {seed}");
            assert!(
                cq::verify_most_specific_fitting(q, &examples).unwrap(),
                "seed {seed}"
            );
            // A unique fitting, when it exists, is the most-specific one and
            // is weakly most-general.
            if cq::unique_fitting_exists(&examples).unwrap() {
                let u = cq::construct_unique_fitting(&examples).unwrap().unwrap();
                assert!(cq::verify_unique_fitting(&u, &examples).unwrap());
                assert!(cq::verify_weakly_most_general(&u, &examples).unwrap());
            }
        } else {
            assert!(!cq::unique_fitting_exists(&examples).unwrap());
        }
        // UCQ fitting existence is implied by CQ fitting existence.
        if exists {
            assert!(ucq::fitting_exists(&examples).unwrap(), "seed {seed}");
        }
        // The most-specific UCQ, when defined, fits.
        if let Some(u) = ucq::most_specific_fitting(&examples).unwrap() {
            assert!(ucq::verify_fitting(&u, &examples).unwrap());
            assert!(ucq::verify_most_specific_fitting(&u, &examples).unwrap());
        }
        let _ = &budget;
    }
}

/// For random unary collections over a binary schema, the tree CQ notions
/// are mutually consistent and consistent with the CQ notions.
#[test]
fn tree_notions_are_consistent_on_random_collections() {
    let schema = Schema::binary_schema(["A"], ["R"]);
    let budget = SearchBudget {
        max_unraveling_depth: 12,
        max_generalization_steps: 12,
        ..SearchBudget::default()
    };
    for seed in 0..20u64 {
        let cfg = RandomConfig {
            num_values: 3,
            density: 0.3,
            arity: 1,
            num_positive: 2,
            num_negative: 1,
            seed: 1000 + seed,
        };
        let examples = random_labeled_examples(&schema, &cfg);
        let exists = tree::fitting_exists(&examples).unwrap();
        // A fitting tree CQ is in particular a fitting CQ.
        if exists {
            assert!(cq::fitting_exists(&examples).unwrap(), "seed {seed}");
        }
        let constructed = tree::construct_fitting(&examples, &budget).unwrap();
        if let Some(q) = &constructed {
            assert!(exists);
            assert!(tree::verify_fitting(q, &examples).unwrap(), "seed {seed}");
        }
        if tree::most_specific_exists(&examples).unwrap() {
            assert!(exists, "seed {seed}");
            if let Some(ms) = tree::construct_most_specific(&examples, &budget).unwrap() {
                assert!(
                    tree::verify_most_specific(&ms, &examples).unwrap(),
                    "seed {seed}"
                );
            }
        }
        match tree::unique_exists(&examples, &budget).unwrap() {
            Certainty::Yes => {
                let u = tree::construct_unique(&examples, &budget).unwrap().unwrap();
                assert!(tree::verify_unique(&u, &examples).unwrap(), "seed {seed}");
            }
            Certainty::No | Certainty::Unknown => {}
        }
    }
}

/// The empty collection is fitted by everything; collections whose positive
/// and negative parts coincide are fitted by nothing.
#[test]
fn degenerate_collections() {
    let schema = Schema::digraph();
    let empty = LabeledExamples::empty();
    let q = cqfit_query::parse_cq(&schema, "q() :- R(x,y)").unwrap();
    assert!(cq::verify_fitting(&q, &empty).unwrap());

    let e = cqfit_data::parse_example(&schema, "R(a,b)\nR(b,c)").unwrap();
    let contradictory = LabeledExamples::new(vec![e.clone()], vec![e]).unwrap();
    assert!(!cq::fitting_exists(&contradictory).unwrap());
    assert!(!ucq::fitting_exists(&contradictory).unwrap());
}
