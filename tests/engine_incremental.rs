//! Differential certification of the incremental fitting path: after *any*
//! fixed-seed sequence of add/remove operations, the workspace state must
//! agree with the from-scratch batch computation —
//!
//! * the maintained product `Π E⁺` is hom-equivalent to the batch product
//!   (structurally equal when no removal intervened),
//! * every fitting answer (existence, construction, minimized
//!   construction, CQ and UCQ) matches the batch entry points of
//!   `cqfit::cq` / `cqfit::ucq` up to query equivalence,
//! * cached and uncached engines agree.
//!
//! Randomness is fixed-seed (`StdRng::seed_from_u64`), so failures
//! reproduce run-to-run.

use cqfit::incremental::{ExampleId, IncrementalFitting};
use cqfit_data::{Example, Schema};
use cqfit_gen::{random_example, RandomConfig};
use cqfit_hom::{hom_equivalent, product_of, HomCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One random workspace operation.
#[derive(Debug)]
enum Op {
    AddPositive,
    AddNegative,
    RemovePositive,
    RemoveNegative,
    Check,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..10u32) {
        0..=2 => Op::AddPositive,
        3..=4 => Op::AddNegative,
        5 => Op::RemovePositive,
        6 => Op::RemoveNegative,
        _ => Op::Check,
    }
}

/// Asserts full agreement between the incremental state and the
/// from-scratch batch computation on the same collection.
fn assert_matches_batch(inc: &mut IncrementalFitting, cache: Option<&HomCache>, ctx: &str) {
    let batch = inc.labeled_examples();
    let schema = inc.schema().clone();
    let arity = inc.arity();

    // The batch entry points reject fully-empty collections (they cannot
    // infer a schema); the incremental workspace knows its schema, so it
    // answers: the product is the top example and every CQ over it fits.
    if batch.schema().is_none() {
        assert!(
            inc.product().unwrap().is_data_example(),
            "{ctx}: top product"
        );
        assert!(inc.cq_fitting_exists(cache).unwrap(), "{ctx}: empty exists");
        assert!(
            inc.cq_construct_fitting(cache).unwrap().is_some(),
            "{ctx}: empty construct"
        );
        return;
    }

    // Product: hom-equivalent to the batch fold (structurally equal when
    // the incremental path never rebuilt, but removal rebuilds may
    // parenthesize over fewer factors — hom-equivalence is the contract).
    let positives: Vec<Example> = batch.positives().to_vec();
    let batch_product = product_of(&schema, arity, &positives).unwrap();
    let inc_product = inc.product().unwrap().clone();
    assert!(
        hom_equivalent(&inc_product, &batch_product),
        "{ctx}: maintained product not hom-equivalent to batch product"
    );

    // CQ existence + construction.
    let batch_exists = cqfit::cq::fitting_exists(&batch).unwrap();
    assert_eq!(
        inc.cq_fitting_exists(cache).unwrap(),
        batch_exists,
        "{ctx}: cq existence"
    );
    let inc_fit = inc.cq_construct_fitting(cache).unwrap();
    let batch_fit = cqfit::cq::construct_fitting(&batch).unwrap();
    assert_eq!(inc_fit.is_some(), batch_fit.is_some(), "{ctx}: cq found");
    if let (Some(a), Some(b)) = (&inc_fit, &batch_fit) {
        assert!(a.equivalent_to(b).unwrap(), "{ctx}: cq fit inequivalent");
    }
    let inc_min = inc.cq_construct_fitting_minimized(cache).unwrap();
    let batch_min = cqfit::cq::construct_fitting_minimized(&batch).unwrap();
    assert_eq!(
        inc_min.is_some(),
        batch_min.is_some(),
        "{ctx}: cq min found"
    );
    if let (Some(a), Some(b)) = (&inc_min, &batch_min) {
        assert!(
            a.equivalent_to(b).unwrap(),
            "{ctx}: minimized cq fit inequivalent"
        );
        assert_eq!(
            a.size(),
            b.size(),
            "{ctx}: minimized cq sizes differ (both must be cores)"
        );
    }

    // UCQ existence + most-specific construction.
    let batch_uexists = cqfit::ucq::fitting_exists(&batch).unwrap();
    assert_eq!(
        inc.ucq_fitting_exists(cache).unwrap(),
        batch_uexists,
        "{ctx}: ucq existence"
    );
    let inc_ucq = inc.ucq_most_specific_fitting(cache).unwrap();
    let batch_ucq = cqfit::ucq::most_specific_fitting(&batch).unwrap();
    assert_eq!(inc_ucq.is_some(), batch_ucq.is_some(), "{ctx}: ucq found");
    if let (Some(a), Some(b)) = (&inc_ucq, &batch_ucq) {
        assert!(a.equivalent_to(b).unwrap(), "{ctx}: ucq inequivalent");
    }
    let inc_umin = inc.ucq_most_specific_fitting_minimized(cache).unwrap();
    let batch_umin = cqfit::ucq::most_specific_fitting_minimized(&batch).unwrap();
    assert_eq!(
        inc_umin.is_some(),
        batch_umin.is_some(),
        "{ctx}: ucq min found"
    );
    if let (Some(a), Some(b)) = (&inc_umin, &batch_umin) {
        assert!(
            a.equivalent_to(b).unwrap(),
            "{ctx}: minimized ucq inequivalent"
        );
        assert_eq!(
            a.len(),
            b.len(),
            "{ctx}: minimized ucq disjunct counts differ"
        );
    }
}

/// Runs one fixed-seed operation sequence against a workspace, checking
/// against the batch path at every `Check` op and at the end.
fn run_sequence(schema: &Arc<Schema>, arity: usize, seed: u64, ops: usize, caching: bool) {
    let cache = caching.then(HomCache::new);
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomConfig {
        num_values: 3 + (seed as usize % 3),
        density: 0.3,
        arity,
        seed,
        ..RandomConfig::default()
    };
    let mut inc = IncrementalFitting::new(schema.clone(), arity);
    let mut pos_ids: Vec<ExampleId> = Vec::new();
    let mut neg_ids: Vec<ExampleId> = Vec::new();
    for step in 0..ops {
        let ctx = format!("seed {seed}, step {step}");
        match random_op(&mut rng) {
            Op::AddPositive => {
                // Cap the factor count: the product grows multiplicatively
                // in the number of positives, and the differential check
                // cores it at every checkpoint.
                if pos_ids.len() < 3 {
                    let e = random_example(schema, &cfg, &mut rng);
                    pos_ids.push(inc.add_positive(e).unwrap());
                }
            }
            Op::AddNegative => {
                let e = random_example(schema, &cfg, &mut rng);
                neg_ids.push(inc.add_negative(e).unwrap());
            }
            Op::RemovePositive => {
                if !pos_ids.is_empty() {
                    let id = pos_ids.swap_remove(rng.gen_range(0..pos_ids.len()));
                    assert!(inc.remove_positive(id), "{ctx}: removal must succeed");
                }
            }
            Op::RemoveNegative => {
                if !neg_ids.is_empty() {
                    let id = neg_ids.swap_remove(rng.gen_range(0..neg_ids.len()));
                    assert!(inc.remove_negative(id), "{ctx}: removal must succeed");
                }
            }
            Op::Check => assert_matches_batch(&mut inc, cache.as_ref(), &ctx),
        }
    }
    assert_matches_batch(&mut inc, cache.as_ref(), &format!("seed {seed}, final"));
}

#[test]
fn boolean_digraph_sequences_match_batch() {
    let schema = Schema::digraph();
    for seed in 0..12u64 {
        run_sequence(&schema, 0, seed, 14, seed % 2 == 0);
    }
}

#[test]
fn unary_binary_schema_sequences_match_batch() {
    let schema = Schema::binary_schema(["P"], ["R", "S"]);
    for seed in 100..108u64 {
        run_sequence(&schema, 1, seed, 12, seed % 2 == 0);
    }
}

#[test]
fn binary_arity_sequences_match_batch() {
    let schema = Schema::digraph();
    for seed in 200..206u64 {
        run_sequence(&schema, 2, seed, 10, true);
    }
}

/// The same op sequence on a cached and an uncached workspace must agree
/// answer-for-answer (the cache may change wall-clock, never answers).
#[test]
fn cached_and_uncached_agree() {
    let schema = Schema::digraph();
    let cache = HomCache::new();
    for seed in 300..306u64 {
        let cfg = RandomConfig {
            num_values: 4,
            density: 0.3,
            arity: 0,
            seed,
            ..RandomConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = IncrementalFitting::new(schema.clone(), 0);
        let mut b = IncrementalFitting::new(schema.clone(), 0);
        for _ in 0..6 {
            let e = random_example(&schema, &cfg, &mut rng);
            if rng.gen_bool(0.5) {
                a.add_positive(e.clone()).unwrap();
                b.add_positive(e).unwrap();
            } else {
                a.add_negative(e.clone()).unwrap();
                b.add_negative(e).unwrap();
            }
            assert_eq!(
                a.cq_fitting_exists(Some(&cache)).unwrap(),
                b.cq_fitting_exists(None).unwrap()
            );
            let fa = a.cq_construct_fitting_minimized(Some(&cache)).unwrap();
            let fb = b.cq_construct_fitting_minimized(None).unwrap();
            assert_eq!(fa.is_some(), fb.is_some());
            if let (Some(fa), Some(fb)) = (fa, fb) {
                assert!(fa.equivalent_to(&fb).unwrap());
            }
        }
    }
    // The shared cache must have seen real traffic.
    let stats = cache.stats();
    assert!(stats.hom_hits + stats.hom_misses + stats.core_misses > 0);
}

/// Interleaving removals with re-adds of the *same* example must behave
/// like the batch path on the surviving set (regression shape for the
/// lazy-invalidation bookkeeping).
#[test]
fn remove_then_readd_round_trips() {
    let schema = Schema::digraph();
    let c3 = cqfit_data::parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,a)").unwrap();
    let c5 = cqfit_data::parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)").unwrap();
    let neg = cqfit_data::parse_example(&schema, "R(a,b)\nR(b,a)").unwrap();
    let mut inc = IncrementalFitting::new(schema.clone(), 0);
    let id3 = inc.add_positive(c3.clone()).unwrap();
    inc.add_positive(c5.clone()).unwrap();
    inc.add_negative(neg).unwrap();
    let before = inc.cq_construct_fitting_minimized(None).unwrap().unwrap();
    assert_eq!(before.num_variables(), 15);
    // Drop C3: the fitting relaxes to C5.
    assert!(inc.remove_positive(id3));
    let mid = inc.cq_construct_fitting_minimized(None).unwrap().unwrap();
    assert_eq!(mid.num_variables(), 5);
    // Re-add C3: back to the C15 core.
    inc.add_positive(c3).unwrap();
    let after = inc.cq_construct_fitting_minimized(None).unwrap().unwrap();
    assert!(after.equivalent_to(&before).unwrap());
    assert_eq!(after.num_variables(), 15);
}
