//! Cross-crate integration tests reproducing the worked examples of
//! *Extremal Fitting Problems for Conjunctive Queries* (PODS 2023) through
//! the public API.

use cqfit::{cq, tree, ucq, Certainty, SearchBudget};
use cqfit_data::{parse_example, LabeledExamples, Schema};
use cqfit_duality::{check_hom_duality, frontier_examples, DualityConfig};
use cqfit_gen::{empinfo_database, exact_colorability, ghrv_examples, symmetric_clique};
use cqfit_hom::{hom_exists, product_of};
use cqfit_query::{parse_cq, Cq, TreeCq};
use std::sync::Arc;

fn labeled(schema: &Arc<Schema>, pos: &[&str], neg: &[&str]) -> LabeledExamples {
    LabeledExamples::new(
        pos.iter()
            .map(|t| parse_example(schema, t).unwrap())
            .collect(),
        neg.iter()
            .map(|t| parse_example(schema, t).unwrap())
            .collect(),
    )
    .unwrap()
}

/// Example 1.1: without constants, no CQ or UCQ separates
/// (Hilbert, +), (Turing, −), (Einstein, +) over the EmpInfo database.
#[test]
fn example_1_1_empinfo_needs_constants() {
    let (_, _, examples) = empinfo_database();
    assert!(!cq::fitting_exists(&examples).unwrap());
    assert!(!ucq::fitting_exists(&examples).unwrap());
}

/// Theorem 3.1: fitting verification encodes exact 4-colorability with the
/// fixed examples E⁺ = {K4}, E⁻ = {K3}.
#[test]
fn theorem_3_1_exact_four_colorability() {
    let e = exact_colorability(3);
    let schema = Schema::digraph();
    // K4 is exactly 4-colorable: its canonical CQ fits.
    let k4 = Cq::from_example(&symmetric_clique(&schema, 4)).unwrap();
    assert!(cq::verify_fitting(&k4, &e).unwrap());
    // K3 is 3-colorable: its canonical CQ does not fit (maps to the negative).
    let k3 = Cq::from_example(&symmetric_clique(&schema, 3)).unwrap();
    assert!(!cq::verify_fitting(&k3, &e).unwrap());
    // The symmetric 5-cycle is 3-colorable, hence does not fit either.
    let c5 = parse_cq(
        &schema,
        "q() :- R(a,b), R(b,a), R(b,c), R(c,b), R(c,d), R(d,c), R(d,e), R(e,d), R(e,a), R(a,e)",
    )
    .unwrap();
    assert!(!cq::verify_fitting(&c5, &e).unwrap());
}

/// Example 2.14 (Gallai–Hasse–Roy–Vitaver): the directed path of length n
/// maps into a digraph iff the digraph does not map into the linear order of
/// length n−1; spot-check with the duality machinery and plain hom tests.
#[test]
fn example_2_14_ghrv() {
    // ({path with n edges}, {linear order on n vertices}) is a duality.
    let (path4, order4) = ghrv_examples(4);
    let (path3, _) = ghrv_examples(3);
    // The path with 4 edges does not map into the order on 4 vertices, but
    // the path with 3 edges does.
    assert!(!hom_exists(&path4, &order4));
    assert!(hom_exists(&path3, &order4));
    let out = check_hom_duality(&[path4], &[order4], &DualityConfig::default());
    assert_ne!(out.certainty, Certainty::No, "{}", out.reason);
}

/// Theorem 3.3 / Proposition 3.5 on a non-trivial instance: the product of
/// the positive examples is the most-specific fitting.
#[test]
fn theorem_3_3_product_fitting() {
    let schema = Schema::digraph();
    let e = labeled(
        &schema,
        &["R(a,b)\nR(b,c)\nR(c,a)", "R(a,b)\nR(b,a)"],
        &["R(a,b)"],
    );
    assert!(cq::fitting_exists(&e).unwrap());
    let ms = cq::most_specific_fitting(&e).unwrap().unwrap();
    assert!(cq::verify_most_specific_fitting(&ms, &e).unwrap());
    // Its core is the directed 6-cycle.
    assert_eq!(ms.core().num_variables(), 6);
    // Every other fitting CQ contains it.
    let product = product_of(&schema, 0, e.positives()).unwrap();
    let c6 = Cq::from_example(&product).unwrap();
    assert!(ms.equivalent_to(&c6).unwrap());
}

/// Example 3.33: unique fitting CQ q(x) :- R(x,x).
#[test]
fn example_3_33_unique_fitting() {
    let schema = Schema::digraph();
    let i = "R(a,b)\nR(b,a)\nR(b,b)";
    let e = labeled(&schema, &[&format!("{i}\n* b")], &[&format!("{i}\n* a")]);
    let q = parse_cq(&schema, "q(x) :- R(x,x)").unwrap();
    assert!(cq::verify_unique_fitting(&q, &e).unwrap());
    let constructed = cq::construct_unique_fitting(&e).unwrap().unwrap();
    assert!(constructed.equivalent_to(&q).unwrap());
}

/// Example 2.13 frontiers through the public API.
#[test]
fn example_2_13_frontiers() {
    let schema = Schema::digraph();
    let q1 = parse_cq(&schema, "q(x) :- R(x,y), R(y,z)").unwrap();
    assert!(!frontier_examples(&q1).unwrap().is_empty());
    let q3 = parse_cq(&schema, "q(x) :- R(x,y), R(y,y)").unwrap();
    assert!(frontier_examples(&q3).is_err());
}

/// Example 4.1: UCQ fitting where no CQ fits; the union of the positives is
/// the unique fitting UCQ.
#[test]
fn example_4_1_ucq() {
    let schema = Schema::binary_schema(["P", "Q", "R"], []);
    let e = labeled(
        &schema,
        &["P(a)\nQ(a)", "P(a)\nR(a)"],
        &["P(a)\nQ(b)\nR(b)"],
    );
    assert!(!cq::fitting_exists(&e).unwrap());
    assert!(ucq::fitting_exists(&e).unwrap());
    let budget = SearchBudget::default();
    assert_eq!(
        ucq::unique_fitting_exists(&e, &budget).unwrap(),
        Certainty::Yes
    );
    let u = ucq::construct_unique_fitting(&e, &budget).unwrap().unwrap();
    assert_eq!(u.len(), 2);
}

/// Example 5.1 / 5.13 / 5.20: the tree CQ pipeline.
#[test]
fn section_5_tree_examples() {
    let budget = SearchBudget::default();
    // 5.1: no fitting tree CQ although a CQ fits.
    let schema = Schema::binary_schema([], ["R"]);
    let e = labeled(&schema, &["R(a,a)\n* a"], &["R(a,b)\nR(b,a)\n* a"]);
    assert!(cq::fitting_exists(&e).unwrap());
    assert!(!tree::fitting_exists(&e).unwrap());
    // 5.13: fittings exist but no most-specific one.
    let e = labeled(&schema, &["R(a,a)\n* a"], &[]);
    assert!(tree::fitting_exists(&e).unwrap());
    assert!(!tree::most_specific_exists(&e).unwrap());
    // 5.20: weakly most-general exists, unique does not.
    let schema = Schema::binary_schema(["P", "Q"], ["R"]);
    let e = labeled(
        &schema,
        &["P(a)\nR(a,b)\nQ(b)\n* a"],
        &["P(a)\nR(a,b)\n* a", "R(a,b)\nR(c,b)\nR(c,d)\nQ(d)\n* a"],
    );
    let q = TreeCq::try_new(parse_cq(&schema, "q(x) :- R(x,y), Q(y)").unwrap()).unwrap();
    assert!(tree::verify_weakly_most_general(&q, &e).unwrap());
    assert_eq!(tree::unique_exists(&e, &budget).unwrap(), Certainty::No);
    assert_eq!(
        tree::weakly_most_general_exists(&e, &budget).unwrap(),
        Certainty::Yes
    );
}

/// The convexity of the set of fitting CQs (Introduction): if q1 ⊆ q ⊆ q2
/// and q1, q2 fit, then q fits.
#[test]
fn fitting_set_is_convex() {
    let schema = Schema::digraph();
    let e = labeled(&schema, &["R(a,b)\nR(b,c)\nR(c,a)"], &["R(a,b)\nR(b,a)"]);
    let q1 = parse_cq(&schema, "q() :- R(x,y), R(y,z), R(z,x), R(x,w)").unwrap();
    let q = parse_cq(&schema, "q() :- R(x,y), R(y,z), R(z,x)").unwrap();
    let q2 = parse_cq(
        &schema,
        "q() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x6), R(x6,x7), R(x7,x8), R(x8,x9), R(x9,x1)",
    )
    .unwrap();
    assert!(q1.is_contained_in(&q).unwrap() && q.is_contained_in(&q2).unwrap());
    assert!(cq::verify_fitting(&q1, &e).unwrap());
    assert!(cq::verify_fitting(&q2, &e).unwrap());
    assert!(cq::verify_fitting(&q, &e).unwrap());
}
