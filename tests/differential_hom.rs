//! Differential test suite for the trail-based homomorphism engine.
//!
//! The engine rewrite (flat `u64` candidate store + undo trail, explicit
//! branching stack, index-accelerated propagation) is a pure optimization:
//! variable selection, value ordering and the propagation fixpoint are
//! unchanged, so the new engine must agree with the preserved pre-rewrite
//! engine (`cqfit_hom::reference`) not only on existence but on the exact
//! witnesses and enumeration order.  This harness drives ≥200 fixed-seed
//! random source/target pairs from `cqfit-gen` through both engines, with
//! arc-consistency propagation both on and off, and asserts:
//!
//! * identical existence answers,
//! * identical enumeration results (same homomorphisms, same order, same
//!   counts under a truncation limit),
//! * every returned witness passes `Homomorphism::verify`,
//! * identical search statistics (nodes / backtracks / found), proving the
//!   search trees coincide, and
//! * agreement of the standalone arc-consistency closure with a
//!   deterministic, sorted rendering.

use cqfit_data::{Example, Schema};
use cqfit_gen::{random_example, RandomConfig};
use cqfit_hom::{
    arc_consistency_candidates, find_all_homomorphisms_with, find_homomorphism_with, reference,
    HomConfig, HomSearchStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Enumeration cap: high enough that small random instances are enumerated
/// exhaustively, low enough to bound the worst case.
const ENUM_LIMIT: usize = 3_000;

fn schemas() -> Vec<Arc<Schema>> {
    vec![
        Schema::digraph(),
        Schema::binary_schema(["P", "Q"], ["R", "S"]),
        Arc::new(Schema::new([("T", 3), ("U", 1)]).unwrap()),
    ]
}

/// Generates `count` (src, dst) pairs over `schema` from a fixed seed.
fn pairs(schema: &Arc<Schema>, seed: u64, count: usize, arity: usize) -> Vec<(Example, Example)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let src_cfg = RandomConfig {
        num_values: 4,
        density: 0.25,
        arity,
        ..RandomConfig::default()
    };
    let dst_cfg = RandomConfig {
        num_values: 5,
        density: 0.35,
        arity,
        ..RandomConfig::default()
    };
    (0..count)
        .map(|_| {
            (
                random_example(schema, &src_cfg, &mut rng),
                random_example(schema, &dst_cfg, &mut rng),
            )
        })
        .collect()
}

/// Runs one pair through both engines under one configuration and asserts
/// full agreement.  Returns whether a homomorphism exists.
fn check_pair(src: &Example, dst: &Example, config: &HomConfig, label: &str) -> bool {
    // Single-witness search, with statistics.
    let mut new_stats = HomSearchStats::default();
    let new_one = find_homomorphism_with(src, dst, config, &mut new_stats).unwrap();
    let mut ref_stats = HomSearchStats::default();
    let ref_one = reference::find_homomorphism_with(src, dst, config, &mut ref_stats).unwrap();
    assert_eq!(
        new_one.is_some(),
        ref_one.is_some(),
        "{label}: existence disagreement\nsrc = {}\ndst = {}",
        src.instance(),
        dst.instance()
    );
    assert_eq!(new_one, ref_one, "{label}: witness disagreement");
    if let Some(h) = &new_one {
        assert!(h.verify(src, dst), "{label}: invalid witness");
    }
    assert_eq!(
        (new_stats.nodes, new_stats.backtracks, new_stats.found),
        (ref_stats.nodes, ref_stats.backtracks, ref_stats.found),
        "{label}: search-tree statistics diverged"
    );

    // Exhaustive enumeration under a shared truncation limit.
    let new_all = find_all_homomorphisms_with(src, dst, config, ENUM_LIMIT);
    let ref_all = reference::find_all_homomorphisms_with(src, dst, config, ENUM_LIMIT);
    assert_eq!(
        new_all.len(),
        ref_all.len(),
        "{label}: enumeration count disagreement"
    );
    assert_eq!(new_all, ref_all, "{label}: enumeration order disagreement");
    for h in &new_all {
        assert!(h.verify(src, dst), "{label}: invalid enumerated witness");
    }
    new_one.is_some()
}

#[test]
fn differential_random_pairs_agree_with_reference_engine() {
    let mut total = 0usize;
    let mut with_hom = 0usize;
    for (si, schema) in schemas().iter().enumerate() {
        for arity in [0usize, 1] {
            let seed = 0xD1F + (si as u64) * 1000 + arity as u64;
            for (pi, (src, dst)) in pairs(schema, seed, 35, arity).iter().enumerate() {
                for ac in [true, false] {
                    let config = HomConfig {
                        use_arc_consistency: ac,
                        max_nodes: None,
                    };
                    let label = format!("schema {si}, arity {arity}, pair {pi}, ac {ac}");
                    let exists = check_pair(src, dst, &config, &label);
                    total += 1;
                    if exists {
                        with_hom += 1;
                    }
                }
            }
        }
    }
    assert!(total >= 200, "differential suite ran only {total} checks");
    // The workload must exercise both outcomes, not just one easy regime.
    assert!(with_hom > 0, "no pair admitted a homomorphism");
    assert!(with_hom < total, "every pair admitted a homomorphism");
}

#[test]
fn differential_arc_closure_is_deterministic_and_consistent() {
    let schema = Schema::digraph();
    let ps = pairs(&schema, 0xAC, 40, 1);
    for (src, dst) in &ps {
        let a = arc_consistency_candidates(src, dst);
        let b = arc_consistency_candidates(src, dst);
        match (&a, &b) {
            (None, None) => {
                // Arc-consistency refutation is sound: the engines agree.
                assert!(!cqfit_hom::hom_exists(src, dst));
                assert!(!reference::hom_exists(src, dst));
            }
            (Some(x), Some(y)) => {
                assert_eq!(x, y);
                // Ordered map with sorted candidate vectors: the debug
                // rendering is reproducible run-to-run.
                assert_eq!(format!("{x:?}"), format!("{y:?}"));
                for cands in x.values() {
                    assert!(cands.windows(2).all(|w| w[0] < w[1]));
                }
            }
            _ => panic!("arc closure not deterministic"),
        }
    }
}

#[test]
fn differential_budget_behaviour_matches() {
    // Budget exhaustion must trigger at the same node count in both engines.
    let schema = Schema::digraph();
    for (src, dst) in pairs(&schema, 0xB0D6E7, 20, 0) {
        for budget in [1u64, 3, 10] {
            let config = HomConfig {
                use_arc_consistency: false,
                max_nodes: Some(budget),
            };
            let mut s1 = HomSearchStats::default();
            let r1 = find_homomorphism_with(&src, &dst, &config, &mut s1);
            let mut s2 = HomSearchStats::default();
            let r2 = reference::find_homomorphism_with(&src, &dst, &config, &mut s2);
            match (r1, r2) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(e1), Err(e2)) => {
                    assert_eq!(e1, e2);
                    assert_eq!(s1.nodes, s2.nodes);
                }
                (a, b) => panic!("budget divergence: {a:?} vs {b:?}"),
            }
        }
    }
}
