//! Differential test suite for the mask-based core engine.
//!
//! The core rewrite (`cqfit_hom::core`: deactivation mask, endomorphism
//! sweep, orbit folding, batched retraction checks) must agree with the
//! preserved greedy oracle (`cqfit_hom::core::reference`) *up to
//! isomorphism*: cores are unique only up to isomorphism, and the two
//! engines may retract onto different (isomorphic) sub-instances.  For every
//! fixed-seed random instance and every paper-family instance this harness
//! asserts:
//!
//! * equal value counts and equal fact counts of the two cores,
//! * homomorphic equivalence of the two cores, and of each core with the
//!   input,
//! * identical distinguished handling: same arity, and positionally
//!   identical distinguished labels (neither engine may ever fold away or
//!   relabel a distinguished value),
//! * both outputs are cores according to *both* engines' `is_core`, and the
//!   two `is_core` implementations agree on the input itself.

use cqfit_data::{Example, Schema};
use cqfit_gen::{
    bitstring_family, directed_cycle, prime_cycles_family, random_example, symmetric_clique,
    RandomConfig,
};
use cqfit_hom::core::reference;
use cqfit_hom::{core_of, hom_equivalent, is_core, product_of};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn schemas() -> Vec<Arc<Schema>> {
    vec![
        Schema::digraph(),
        Schema::binary_schema(["P", "Q"], ["R", "S"]),
        Arc::new(Schema::new([("T", 3), ("U", 1)]).unwrap()),
    ]
}

/// Distinguished labels of an example, in tuple order.
fn distinguished_labels(e: &Example) -> Vec<String> {
    e.distinguished()
        .iter()
        .map(|&d| e.instance().label(d).to_string())
        .collect()
}

/// Runs one instance through both engines and asserts full agreement up to
/// isomorphism.  Returns 1 (the number of performed checks) for counting.
fn check_example(e: &Example, label: &str) -> usize {
    let fast = core_of(e);
    let slow = reference::core_of(e);
    assert_eq!(
        fast.instance().num_values(),
        slow.instance().num_values(),
        "{label}: core value counts diverge\ninput = {}",
        e.instance()
    );
    assert_eq!(
        fast.size(),
        slow.size(),
        "{label}: core fact counts diverge\ninput = {}",
        e.instance()
    );
    assert!(
        hom_equivalent(&fast, &slow),
        "{label}: cores are not homomorphically equivalent"
    );
    assert!(
        hom_equivalent(e, &fast),
        "{label}: new core is not equivalent to the input"
    );
    assert!(
        hom_equivalent(e, &slow),
        "{label}: reference core is not equivalent to the input"
    );
    // Distinguished handling: same arity, positionally identical labels
    // (distinguished values are never folded away or remapped).
    assert_eq!(fast.arity(), e.arity(), "{label}: arity changed");
    assert_eq!(slow.arity(), e.arity(), "{label}: oracle arity changed");
    assert_eq!(
        distinguished_labels(&fast),
        distinguished_labels(e),
        "{label}: distinguished labels changed"
    );
    assert_eq!(
        distinguished_labels(&slow),
        distinguished_labels(e),
        "{label}: oracle distinguished labels changed"
    );
    // Both outputs are cores, according to both engines.
    assert!(is_core(&fast), "{label}: new core is not a core (new)");
    assert!(
        reference::is_core(&fast),
        "{label}: new core is not a core (oracle)"
    );
    assert!(
        is_core(&slow),
        "{label}: reference core is not a core (new)"
    );
    // And the two `is_core` implementations agree on the raw input.
    assert_eq!(
        is_core(e),
        reference::is_core(e),
        "{label}: is_core disagreement on the input"
    );
    1
}

#[test]
fn differential_random_instances_agree_with_reference_engine() {
    let mut total = 0usize;
    let mut proper_retracts = 0usize;
    for (si, schema) in schemas().iter().enumerate() {
        for arity in [0usize, 1] {
            let mut rng = StdRng::seed_from_u64(0xC0_3E + (si as u64) * 1000 + arity as u64);
            for (ci, cfg) in [
                RandomConfig {
                    num_values: 4,
                    density: 0.2,
                    arity,
                    ..RandomConfig::default()
                },
                RandomConfig {
                    num_values: 5,
                    density: 0.35,
                    arity,
                    ..RandomConfig::default()
                },
                RandomConfig {
                    num_values: 6,
                    density: 0.5,
                    arity,
                    ..RandomConfig::default()
                },
            ]
            .into_iter()
            .enumerate()
            {
                for pi in 0..18 {
                    let e = random_example(schema, &cfg, &mut rng);
                    let label = format!("schema {si}, arity {arity}, config {ci}, instance {pi}");
                    total += check_example(&e, &label);
                    if core_of(&e).instance().num_values() < e.instance().num_values() {
                        proper_retracts += 1;
                    }
                }
            }
        }
    }
    assert!(total >= 324, "random sweep ran only {total} checks");
    // The workload must exercise both regimes: instances that fold and
    // instances that are already cores.
    assert!(proper_retracts > 0, "no instance had a proper retract");
    assert!(proper_retracts < total, "every instance folded");
}

#[test]
fn differential_family_instances_agree_with_reference_engine() {
    let mut total = 0usize;
    let digraph = Schema::digraph();
    // Thm. 3.40 prime-cycle products (cores) and their padded variants.
    for n in [2usize, 3] {
        let fam = prime_cycles_family(n);
        let schema = fam.schema().unwrap().clone();
        let product = product_of(&schema, 0, fam.positives()).unwrap();
        total += check_example(&product, &format!("prime cycle product n={n}"));
    }
    // Single cycles and cliques.
    for len in [4usize, 7, 12] {
        total += check_example(&directed_cycle(&digraph, len), &format!("C{len}"));
    }
    for k in [3usize, 4] {
        total += check_example(&symmetric_clique(&digraph, k), &format!("K{k}"));
    }
    // Thm. 3.41 bitstring product.
    let fam = bitstring_family(2);
    let schema = fam.schema().unwrap().clone();
    let product = product_of(&schema, 0, fam.positives()).unwrap();
    total += check_example(&product, "bitstring product n=2");
    // Padded instance: pendant path + isolated declared values (regression
    // shape for the up-front isolated-value masking).
    let product = {
        let cycles: Vec<Example> = [3usize, 5]
            .iter()
            .map(|&p| directed_cycle(&digraph, p))
            .collect();
        product_of(&digraph, 0, &cycles).unwrap()
    };
    let (mut inst, dist) = product.into_parts();
    let rel = inst.schema().rel("R").unwrap();
    let mut prev = cqfit_data::Value(0);
    for k in 0..5 {
        let next = inst.add_value(format!("pad{k}"));
        inst.add_fact(rel, &[prev, next]).unwrap();
        prev = next;
    }
    for k in 0..4 {
        inst.add_value(format!("iso{k}"));
    }
    let padded = Example::new(inst, dist);
    total += check_example(&padded, "padded prime cycle product");
    let core = core_of(&padded);
    assert_eq!(
        core.instance().num_values(),
        15,
        "padding and pendant path must fold away, leaving C15"
    );
    assert!(total >= 9);
}

/// The combined suite must perform at least 300 new-vs-reference checks;
/// this meta-test keeps the count honest if the sweeps above are retuned.
#[test]
fn differential_suite_reaches_300_checks() {
    // 3 schemas × 2 arities × 3 configs × 18 instances = 324 random checks,
    // plus 9 family checks — the constants below must match the sweeps
    // above.
    let random_checks = 3 * 2 * 3 * 18;
    let family_checks = 2 + 3 + 2 + 1 + 1;
    assert!(
        random_checks + family_checks >= 300,
        "retune the sweeps: only {} checks",
        random_checks + family_checks
    );
}
