//! Concurrency certification of the engine: N client threads hammering one
//! shared [`Engine`] with interleaved add-example / fit requests must
//! yield exactly the fittings the equivalent sequential batch calls yield.
//!
//! Design: each thread owns a disjoint set of workspaces (per-workspace
//! request order is what the engine guarantees; cross-workspace order is
//! unconstrained), all threads share one engine — and therefore one
//! workspace map and one hom-cache, which is where the races would live.
//! A second suite fires *read-only* fit/exists volleys at a single
//! workspace from many threads and checks every answer is identical.
//!
//! Workloads are fixed-seed; the differential oracle is a fresh engine
//! processing the same per-workspace request streams sequentially.

use cqfit_data::Schema;
use cqfit_engine::{
    Engine, EngineConfig, ExamplePayload, FitMode, Polarity, QueryClass, Request, Response,
};
use cqfit_gen::{random_example, RandomConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The per-workspace request stream for one fixed seed: create, then an
/// interleaving of adds and fits.
fn workspace_stream(ws: &str, seed: u64) -> Vec<Request> {
    let schema = Schema::digraph();
    let cfg = RandomConfig {
        num_values: 4,
        density: 0.3,
        arity: 0,
        seed,
        ..RandomConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reqs = vec![Request::CreateWorkspace {
        workspace: ws.into(),
        schema: Schema::new([("R", 2)]).unwrap(),
        arity: 0,
    }];
    let mut positives = 0usize;
    for _ in 0..8 {
        let e = random_example(&schema, &cfg, &mut rng);
        // Cap the positive factor count: the maintained product grows
        // multiplicatively in the number of positives.
        let polarity = if rng.gen_bool(0.6) && positives < 3 {
            positives += 1;
            Polarity::Positive
        } else {
            Polarity::Negative
        };
        reqs.push(Request::AddExample {
            workspace: ws.into(),
            polarity,
            example: ExamplePayload::Structured(e),
        });
        match rng.gen_range(0..3u32) {
            0 => reqs.push(Request::Fit {
                workspace: ws.into(),
                class: QueryClass::Cq,
                mode: FitMode::Minimized,
            }),
            1 => reqs.push(Request::FittingExists {
                workspace: ws.into(),
                class: QueryClass::Ucq,
            }),
            _ => {}
        }
    }
    reqs.push(Request::Fit {
        workspace: ws.into(),
        class: QueryClass::Cq,
        mode: FitMode::Minimized,
    });
    reqs.push(Request::Fit {
        workspace: ws.into(),
        class: QueryClass::Ucq,
        mode: FitMode::Plain,
    });
    reqs
}

/// Serializes responses for comparison (JSON is deterministic).
fn render(responses: &[Response]) -> Vec<String> {
    responses.iter().map(serde::to_string).collect()
}

#[test]
fn concurrent_sessions_match_sequential_batch() {
    const THREADS: usize = 8;
    let concurrent = Arc::new(Engine::new(EngineConfig::default()));
    let sequential = Engine::new(EngineConfig::default());

    let streams: Vec<(String, Vec<Request>)> = (0..THREADS)
        .map(|t| {
            let ws = format!("ws{t}");
            let stream = workspace_stream(&ws, 7_000 + t as u64);
            (ws, stream)
        })
        .collect();

    // Concurrent run: one thread per workspace, all hammering the shared
    // engine (shared workspace map, shared hom-cache).
    let concurrent_out: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|(_, stream)| {
                let engine = Arc::clone(&concurrent);
                scope.spawn(move || {
                    let responses: Vec<Response> =
                        stream.iter().map(|r| engine.handle(r)).collect();
                    render(&responses)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });

    // Sequential oracle: same streams, one after another, fresh engine.
    for ((_, stream), concurrent_rendered) in streams.iter().zip(&concurrent_out) {
        let sequential_responses: Vec<Response> =
            stream.iter().map(|r| sequential.handle(r)).collect();
        assert_eq!(
            &render(&sequential_responses),
            concurrent_rendered,
            "concurrent session diverged from the sequential batch"
        );
    }

    // Sanity: the engines really processed all workspaces.
    match concurrent.handle(&Request::ListWorkspaces) {
        Response::Workspaces { names } => assert_eq!(names.len(), THREADS),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn handle_batch_matches_per_request_calls() {
    let a = Engine::new(EngineConfig::default());
    let b = Engine::new(EngineConfig::default());
    let mut all: Vec<Request> = Vec::new();
    for t in 0..4 {
        all.extend(workspace_stream(&format!("w{t}"), 9_100 + t as u64));
    }
    let batched = b.handle_batch(&all);
    let sequential: Vec<Response> = all.iter().map(|r| a.handle(r)).collect();
    assert_eq!(render(&sequential), render(&batched));
}

#[test]
fn read_only_volley_is_consistent() {
    const READERS: usize = 12;
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    // Prepare one workspace with a non-trivial fitting (C3 × C5 vs C2).
    for req in [
        Request::CreateWorkspace {
            workspace: "shared".into(),
            schema: Schema::new([("R", 2)]).unwrap(),
            arity: 0,
        },
        Request::AddExample {
            workspace: "shared".into(),
            polarity: Polarity::Positive,
            example: ExamplePayload::Text("R(a,b)\nR(b,c)\nR(c,a)".into()),
        },
        Request::AddExample {
            workspace: "shared".into(),
            polarity: Polarity::Positive,
            example: ExamplePayload::Text("R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)".into()),
        },
        Request::AddExample {
            workspace: "shared".into(),
            polarity: Polarity::Negative,
            example: ExamplePayload::Text("R(a,b)\nR(b,a)".into()),
        },
    ] {
        assert!(engine.handle(&req).is_ok());
    }
    let fit = Request::Fit {
        workspace: "shared".into(),
        class: QueryClass::Cq,
        mode: FitMode::Minimized,
    };
    let expected = serde::to_string(&engine.handle(&fit));
    let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let fit = fit.clone();
                scope.spawn(move || {
                    (0..5)
                        .map(|_| serde::to_string(&engine.handle(&fit)))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    for per_thread in answers {
        for answer in per_thread {
            assert_eq!(
                answer, expected,
                "read-only volley returned a different fitting"
            );
        }
    }
}
