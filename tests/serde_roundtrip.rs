//! Fixed-seed serde round-trip property suite: random instances, examples
//! and labeled collections (plus queries derived from them) must survive
//! JSON serialization byte-exactly in structure.
//!
//! Determinism: every workload is generated from `StdRng::seed_from_u64`
//! with fixed seeds, so failures reproduce run-to-run.

use cqfit_data::{Example, Instance, LabeledExamples, Schema};
use cqfit_gen::{random_example, random_labeled_examples, RandomConfig};
use cqfit_query::{Cq, Ucq};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn schemas() -> Vec<Arc<Schema>> {
    vec![
        Schema::digraph(),
        Schema::binary_schema(["P", "Q"], ["R", "S"]),
        Arc::new(Schema::new([("T", 3), ("P", 1)]).unwrap()),
    ]
}

fn assert_instances_equal(a: &Instance, b: &Instance) {
    assert_eq!(a.num_values(), b.num_values());
    assert!(a.same_facts(b), "fact sets differ");
    for v in a.values() {
        assert_eq!(a.label(v), b.label(v), "label of {v:?} differs");
    }
    assert_eq!(a.canonical_hash(), b.canonical_hash());
}

fn assert_examples_equal(a: &Example, b: &Example) {
    assert_instances_equal(a.instance(), b.instance());
    assert_eq!(a.distinguished(), b.distinguished());
}

#[test]
fn random_examples_round_trip() {
    for (si, schema) in schemas().into_iter().enumerate() {
        for seed in 0..20u64 {
            let cfg = RandomConfig {
                num_values: 3 + (seed as usize % 4),
                density: 0.25 + 0.1 * (seed % 3) as f64,
                arity: (seed % 3) as usize,
                seed: 1000 * si as u64 + seed,
                ..RandomConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let e = random_example(&schema, &cfg, &mut rng);
            let text = serde::to_string(&e);
            let back: Example = serde::from_str(&text).expect("round trip parses");
            assert_examples_equal(&e, &back);
            // Serialization is deterministic: same value, same text.
            assert_eq!(serde::to_string(&back), text);
        }
    }
}

#[test]
fn random_labeled_collections_round_trip() {
    for (si, schema) in schemas().into_iter().enumerate() {
        for seed in 0..10u64 {
            let cfg = RandomConfig {
                num_values: 4,
                density: 0.3,
                arity: (seed % 2) as usize,
                num_positive: 1 + (seed as usize % 3),
                num_negative: seed as usize % 3,
                seed: 5000 + 100 * si as u64 + seed,
            };
            let col = random_labeled_examples(&schema, &cfg);
            let back: LabeledExamples =
                serde::from_str(&serde::to_string(&col)).expect("round trip parses");
            assert_eq!(back.positives().len(), col.positives().len());
            assert_eq!(back.negatives().len(), col.negatives().len());
            for ((a, la), (b, lb)) in col.all().zip(back.all()) {
                assert_eq!(la, lb);
                assert_examples_equal(a, b);
            }
            assert!(back.validate().is_ok());
        }
    }
}

#[test]
fn canonical_cqs_of_random_examples_round_trip() {
    for (si, schema) in schemas().into_iter().enumerate() {
        for seed in 0..10u64 {
            let cfg = RandomConfig {
                num_values: 4,
                density: 0.35,
                arity: (seed % 3) as usize,
                seed: 9000 + 100 * si as u64 + seed,
                ..RandomConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let e = random_example(&schema, &cfg, &mut rng);
            let q = Cq::from_example(&e).expect("random examples are data examples");
            let back: Cq = serde::from_str(&serde::to_string(&q)).expect("round trip parses");
            // Cq derives Eq: the round trip must be *identical*, not just
            // equivalent.
            assert_eq!(back, q);
        }
    }
}

#[test]
fn ucqs_of_random_positives_round_trip() {
    let schema = Schema::digraph();
    for seed in 0..10u64 {
        let cfg = RandomConfig {
            num_values: 4,
            density: 0.35,
            arity: 1,
            num_positive: 2 + (seed as usize % 3),
            num_negative: 0,
            seed: 42_000 + seed,
        };
        let col = random_labeled_examples(&schema, &cfg);
        let u = Ucq::from_examples(col.positives()).expect("data examples");
        let back: Ucq = serde::from_str(&serde::to_string(&u)).expect("round trip parses");
        assert_eq!(back, u);
    }
}

/// JSON-level determinism and self-containment: a serialized example can be
/// shipped to another process with no shared schema state.
#[test]
fn serialized_examples_are_self_describing() {
    let schema = Arc::new(Schema::new([("EmpInfo", 3)]).unwrap());
    let e = cqfit_data::parse_example(
        &schema,
        "EmpInfo(Hilbert, Math, Gauss)\nEmpInfo(Einstein, Physics, Gauss)\n* Gauss",
    )
    .unwrap();
    let text = serde::to_string(&e);
    // No out-of-band context: parse with nothing but the text.
    let back: Example = serde::from_str(&text).unwrap();
    assert_eq!(
        back.instance().schema().name(cqfit_data::RelId(0)),
        "EmpInfo"
    );
    assert_eq!(back.arity(), 1);
    assert_eq!(back.instance().label(back.distinguished()[0]), "Gauss");
}
