//! Property-style tests for the core data structures and the
//! order-theoretic invariants of Section 2.2.
//!
//! Every test draws its random cases from a [`StdRng`] with a fixed,
//! documented seed, so failures reproduce identically run-to-run (no
//! proptest shrinking, but also no flakiness and no external dependency).

use cqfit_data::{Example, Instance, Schema, Value};
use cqfit_hom::{core_of, direct_product, disjoint_union, hom_equivalent, hom_exists};
use cqfit_query::{is_c_acyclic_example, Cq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property.
const CASES: usize = 24;

/// Draws a small random Boolean example over the digraph schema (directed
/// graphs with up to 4 vertices).
fn digraph_example(rng: &mut StdRng) -> Example {
    let n = rng.gen_range(1usize..=4);
    let num_edges = rng.gen_range(0usize..8);
    let schema = Schema::digraph();
    let rel = schema.rel("R").unwrap();
    let mut inst = Instance::new(schema);
    let vs: Vec<Value> = (0..n).map(|i| inst.add_value(format!("v{i}"))).collect();
    for _ in 0..num_edges {
        let a = rng.gen_range(0usize..n);
        let b = rng.gen_range(0usize..n);
        inst.add_fact(rel, &[vs[a], vs[b]]).unwrap();
    }
    Example::boolean(inst)
}

/// Draws a small random unary example over a binary schema with one unary
/// and one binary relation.
fn unary_example(rng: &mut StdRng) -> Example {
    let n = rng.gen_range(1usize..=4);
    let num_edges = rng.gen_range(1usize..6);
    let num_labels = rng.gen_range(0usize..3);
    let schema = Schema::binary_schema(["A"], ["R"]);
    let r = schema.rel("R").unwrap();
    let a = schema.rel("A").unwrap();
    let mut inst = Instance::new(schema);
    let vs: Vec<Value> = (0..n).map(|i| inst.add_value(format!("v{i}"))).collect();
    for _ in 0..num_edges {
        let x = rng.gen_range(0usize..n);
        let y = rng.gen_range(0usize..n);
        inst.add_fact(r, &[vs[x], vs[y]]).unwrap();
    }
    for _ in 0..num_labels {
        let x = rng.gen_range(0usize..n);
        inst.add_fact(a, &[vs[x]]).unwrap();
    }
    let active = inst.active_domain();
    let root = active[rng.gen_range(0usize..active.len())];
    Example::new(inst, vec![root])
}

/// Proposition 2.7: the direct product is a greatest lower bound.
#[test]
fn product_is_glb() {
    let mut rng = StdRng::seed_from_u64(0xC027);
    for _ in 0..CASES {
        let e1 = digraph_example(&mut rng);
        let e2 = digraph_example(&mut rng);
        let below = digraph_example(&mut rng);
        let p = direct_product(&e1, &e2).unwrap();
        assert!(hom_exists(&p, &e1));
        assert!(hom_exists(&p, &e2));
        if hom_exists(&below, &e1) && hom_exists(&below, &e2) {
            assert!(hom_exists(&below, &p));
        }
    }
}

/// Proposition 2.2: the disjoint union is a least upper bound.
#[test]
fn disjoint_union_is_lub() {
    let mut rng = StdRng::seed_from_u64(0xC022);
    for _ in 0..CASES {
        let e1 = digraph_example(&mut rng);
        let e2 = digraph_example(&mut rng);
        let above = digraph_example(&mut rng);
        let u = disjoint_union(&e1, &e2).unwrap();
        assert!(hom_exists(&e1, &u));
        assert!(hom_exists(&e2, &u));
        if hom_exists(&e1, &above) && hom_exists(&e2, &above) {
            assert!(hom_exists(&u, &above));
        }
    }
}

/// Cores are homomorphically equivalent to the original and idempotent:
/// `core_of(e)` is recognized by `is_core`, so coring twice changes nothing.
#[test]
fn core_properties() {
    let mut rng = StdRng::seed_from_u64(0xC0_4E);
    for _ in 0..CASES {
        let e = digraph_example(&mut rng);
        let c = core_of(&e);
        assert!(hom_equivalent(&e, &c));
        assert!(cqfit_hom::is_core(&c), "core_of must return a core");
        let cc = core_of(&c);
        assert_eq!(c.instance().num_facts(), cc.instance().num_facts());
        assert_eq!(c.instance().num_values(), cc.instance().num_values());
        assert!(c.instance().num_values() <= e.instance().num_values());
    }
}

/// `is_core(core_of(e))` also holds for pointed (unary) examples, where
/// distinguished values must never fold away.
#[test]
fn core_idempotent_on_pointed_examples() {
    let mut rng = StdRng::seed_from_u64(0xC0_4F);
    for _ in 0..CASES {
        let e = unary_example(&mut rng);
        let c = core_of(&e);
        assert!(hom_equivalent(&e, &c));
        assert!(cqfit_hom::is_core(&c));
        assert_eq!(c.arity(), e.arity());
        assert!(
            c.is_data_example(),
            "active distinguished values stay active"
        );
    }
}

/// Coring preserves fitting: whenever the product-of-positives construction
/// fits, the minimized construction yields an equivalent CQ that still fits
/// (and whose canonical example is a core).
#[test]
fn core_preserves_verify_fitting() {
    let mut rng = StdRng::seed_from_u64(0xC0_F1);
    let mut fitted = 0usize;
    for _ in 0..CASES {
        let pos1 = unary_example(&mut rng);
        let pos2 = unary_example(&mut rng);
        let neg = unary_example(&mut rng);
        let examples = cqfit_data::LabeledExamples::new(vec![pos1, pos2], vec![neg]).unwrap();
        let plain = cqfit::cq::construct_fitting(&examples).unwrap();
        let minimized = cqfit::cq::construct_fitting_minimized(&examples).unwrap();
        assert_eq!(plain.is_some(), minimized.is_some());
        let (Some(plain), Some(minimized)) = (plain, minimized) else {
            continue;
        };
        fitted += 1;
        assert!(cqfit::cq::verify_fitting(&minimized, &examples).unwrap());
        assert!(minimized.equivalent_to(&plain).unwrap());
        assert!(cqfit_hom::is_core(&minimized.canonical_example()));
        assert!(minimized.size() <= plain.size());
    }
    assert!(fitted > 0, "the sweep never produced a fitting");
}

/// UCQ minimization cores every disjunct and leaves the surviving disjuncts
/// pairwise incomparable under containment.
#[test]
fn minimized_ucq_disjuncts_pairwise_incomparable() {
    use cqfit_query::Ucq;
    let mut rng = StdRng::seed_from_u64(0xD151);
    let mut pruned = 0usize;
    for _ in 0..CASES {
        let examples: Vec<Example> = (0..3).map(|_| unary_example(&mut rng)).collect();
        let u = Ucq::from_examples(&examples).unwrap();
        let m = u.minimized();
        assert!(m.equivalent_to(&u).unwrap());
        assert!(m.len() <= u.len());
        if m.len() < u.len() {
            pruned += 1;
        }
        for d in m.disjuncts() {
            assert!(cqfit_hom::is_core(&d.canonical_example()));
        }
        for (i, di) in m.disjuncts().iter().enumerate() {
            for (j, dj) in m.disjuncts().iter().enumerate() {
                if i != j {
                    assert!(
                        !di.is_contained_in(dj).unwrap(),
                        "disjuncts {i} and {j} are comparable after minimization"
                    );
                }
            }
        }
    }
    assert!(pruned > 0, "the sweep never pruned a disjunct");
}

/// Canonical CQ ↔ canonical example round trips up to equivalence, and
/// containment is transitive and reflexive.
#[test]
fn canonical_roundtrip_and_containment() {
    let mut rng = StdRng::seed_from_u64(0x2_1);
    for _ in 0..CASES {
        let e = unary_example(&mut rng);
        let f = unary_example(&mut rng);
        let g = unary_example(&mut rng);
        let qe = Cq::from_example(&e).unwrap();
        let back = qe.canonical_example();
        assert!(hom_equivalent(&e, &back));
        let qf = Cq::from_example(&f).unwrap();
        let qg = Cq::from_example(&g).unwrap();
        assert!(qe.is_contained_in(&qe).unwrap());
        if qe.is_contained_in(&qf).unwrap() && qf.is_contained_in(&qg).unwrap() {
            assert!(qe.is_contained_in(&qg).unwrap());
        }
    }
}

/// Homomorphism existence implies simulation existence (§5).
#[test]
fn hom_implies_simulation() {
    let mut rng = StdRng::seed_from_u64(0x5_1);
    for _ in 0..CASES {
        let e = unary_example(&mut rng);
        let f = unary_example(&mut rng);
        if hom_exists(&e, &f) {
            assert!(cqfit_hom::simulates(&e, &f).unwrap());
        }
    }
}

/// The frontier construction (Definitions 3.21/3.22): members are
/// strictly below the query, and random examples strictly below the query
/// map into some member.
#[test]
fn frontier_soundness_and_coverage() {
    let mut rng = StdRng::seed_from_u64(0x3_21);
    for _ in 0..CASES {
        let e = unary_example(&mut rng);
        let candidate = unary_example(&mut rng);
        let q = Cq::from_example(&core_of(&e)).unwrap();
        let canon = q.canonical_example();
        if !is_c_acyclic_example(&canon) {
            continue;
        }
        let members = cqfit_duality::frontier_examples(&q).unwrap();
        for m in &members {
            assert!(hom_exists(m, &canon));
            assert!(!hom_exists(&canon, m));
        }
        let strictly_below = hom_exists(&candidate, &canon) && !hom_exists(&canon, &candidate);
        if strictly_below {
            assert!(
                members.iter().any(|m| hom_exists(&candidate, m)),
                "frontier must cover {candidate}"
            );
        }
    }
}

/// Fitting is monotone under generalization towards the most-specific
/// fitting: the most-specific fitting CQ is contained in every fitting CQ
/// (Proposition 3.5).
#[test]
fn most_specific_is_minimum() {
    let mut rng = StdRng::seed_from_u64(0x3_5);
    for _ in 0..CASES {
        let pos1 = unary_example(&mut rng);
        let pos2 = unary_example(&mut rng);
        let neg = unary_example(&mut rng);
        let other = unary_example(&mut rng);
        let examples = cqfit_data::LabeledExamples::new(vec![pos1, pos2], vec![neg]).unwrap();
        if let Some(ms) = cqfit::cq::most_specific_fitting(&examples).unwrap() {
            let q = Cq::from_example(&other).unwrap();
            if cqfit::cq::verify_fitting(&q, &examples).unwrap() {
                assert!(ms.is_contained_in(&q).unwrap());
            }
        }
    }
}

/// The tree CQ reduction produces equivalent, no-larger queries (checked on a
/// deterministic sample of random tree CQs).
#[test]
fn tree_reduce_preserves_equivalence() {
    use rand::SeedableRng;
    let schema = Schema::binary_schema(["A", "B"], ["R", "S"]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let q = cqfit_gen::random_tree_cq(&schema, 3, 2, &mut rng);
        let r = q.reduce();
        assert!(r.equivalent_to(&q).unwrap());
        assert!(r.size() <= q.size());
    }
}

/// Tree CQ containment (simulation-based) agrees with CQ containment
/// (homomorphism-based) on random tree CQs.
#[test]
fn tree_containment_agrees_with_cq_containment() {
    use rand::SeedableRng;
    let schema = Schema::binary_schema(["A"], ["R", "S"]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    for _ in 0..30 {
        let q1 = cqfit_gen::random_tree_cq(&schema, 3, 2, &mut rng);
        let q2 = cqfit_gen::random_tree_cq(&schema, 3, 2, &mut rng);
        assert_eq!(
            q1.is_contained_in(&q2).unwrap(),
            q1.as_cq().is_contained_in(q2.as_cq()).unwrap()
        );
    }
}

/// Arc consistency is sound: whenever it refutes, no homomorphism exists.
#[test]
fn arc_consistency_soundness() {
    use rand::SeedableRng;
    let schema = Schema::binary_schema(["A"], ["R"]);
    let cfg = cqfit_gen::RandomConfig {
        num_values: 4,
        density: 0.25,
        arity: 1,
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..40 {
        let e1 = cqfit_gen::random_example(&schema, &cfg, &mut rng);
        let e2 = cqfit_gen::random_example(&schema, &cfg, &mut rng);
        if !cqfit_hom::arc_consistent(&e1, &e2) {
            assert!(!hom_exists(&e1, &e2));
        }
    }
}

/// Arc consistency is complete on c-acyclic sources.
#[test]
fn arc_consistency_complete_on_c_acyclic() {
    use rand::SeedableRng;
    let schema = Schema::binary_schema(["A"], ["R"]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let cfg = cqfit_gen::RandomConfig {
        num_values: 4,
        density: 0.3,
        arity: 1,
        ..Default::default()
    };
    for _ in 0..40 {
        let t = cqfit_gen::random_tree_cq(&schema, 3, 2, &mut rng);
        let src = t.canonical_example();
        let dst = cqfit_gen::random_example(&schema, &cfg, &mut rng);
        assert_eq!(
            cqfit_hom::arc_consistent(&src, &dst),
            hom_exists(&src, &dst),
            "arc consistency decides homomorphism existence for tree-shaped sources"
        );
    }
}
