//! Smoke tests for the workspace dependency DAG.
//!
//! One test per public crate entry point, exercising the canonical
//! pipeline `parse → product → core → frontier → fit`.  The point is not
//! algorithmic coverage (the other suites do that) but *linkage*: if a
//! future manifest change drops a crate from the workspace, breaks a
//! re-export, or splits a type into two incompatible definitions, these
//! tests fail loudly at `cargo test` time instead of at link time deep
//! inside an unrelated suite.

use cqfit_data::{parse_example, LabeledExamples, Schema};
use cqfit_query::{parse_cq, Cq};

/// `cqfit-data`: schema construction and the example parser.
#[test]
fn data_entry_point_parses() {
    let schema = Schema::digraph();
    let e = parse_example(&schema, "R(a,b)\nR(b,c)").unwrap();
    assert_eq!(e.instance().num_facts(), 2);
    assert_eq!(e.arity(), 0);
}

/// `cqfit-query`: the CQ parser round-trips through the canonical example.
#[test]
fn query_entry_point_parses() {
    let schema = Schema::digraph();
    let q = parse_cq(&schema, "q(x) :- R(x,y), R(y,x)").unwrap();
    assert_eq!(q.arity(), 1);
    let canon = q.canonical_example();
    assert_eq!(canon.instance().num_facts(), 2);
}

/// `cqfit-hom`: direct products and homomorphism search compose.
#[test]
fn hom_entry_point_products() {
    let schema = Schema::digraph();
    let e1 = parse_example(&schema, "R(a,b)\nR(b,a)").unwrap();
    let e2 = parse_example(&schema, "R(x,x)").unwrap();
    let p = cqfit_hom::direct_product(&e1, &e2).unwrap();
    assert!(cqfit_hom::hom_exists(&p, &e1));
    assert!(cqfit_hom::hom_exists(&p, &e2));
    let c = cqfit_hom::core_of(&p);
    assert!(cqfit_hom::hom_equivalent(&p, &c));
}

/// `cqfit-duality`: the frontier construction runs on a c-acyclic CQ.
#[test]
fn duality_entry_point_frontier() {
    let schema = Schema::digraph();
    let q = parse_cq(&schema, "q(x) :- R(x,y)").unwrap();
    let members = cqfit_duality::frontier_examples(&q).unwrap();
    let canon = q.canonical_example();
    for m in &members {
        assert!(cqfit_hom::hom_exists(m, &canon));
        assert!(!cqfit_hom::hom_exists(&canon, m));
    }
}

/// `cqfit-gen`: generators are deterministic for a fixed seed.
#[test]
fn gen_entry_point_deterministic() {
    let schema = Schema::binary_schema(["A"], ["R"]);
    let cfg = cqfit_gen::RandomConfig::default();
    let a = cqfit_gen::random_labeled_examples(&schema, &cfg);
    let b = cqfit_gen::random_labeled_examples(&schema, &cfg);
    assert_eq!(a.total_size(), b.total_size());
    let fact_counts = |e: &cqfit_data::LabeledExamples| -> Vec<usize> {
        e.positives()
            .iter()
            .chain(e.negatives())
            .map(|ex| ex.instance().num_facts())
            .collect()
    };
    assert_eq!(fact_counts(&a), fact_counts(&b));
}

/// `cqfit` (core): the full fitting pipeline end-to-end.
#[test]
fn core_entry_point_fits() {
    let schema = Schema::digraph();
    let pos = parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,a)").unwrap();
    let neg = parse_example(&schema, "R(a,b)").unwrap();
    let examples = LabeledExamples::new(vec![pos], vec![neg]).unwrap();
    assert!(cqfit::cq::fitting_exists(&examples).unwrap());
    let fit = cqfit::cq::most_specific_fitting(&examples)
        .unwrap()
        .unwrap();
    assert!(cqfit::cq::verify_fitting(&fit, &examples).unwrap());
}

/// `cqfit-bench` links and exposes its (doc-only) library target.
#[test]
fn bench_crate_links() {
    // The crate has no API surface; depending on it at all is the test.
    use cqfit_bench as _;
}

/// Satellite guarantee: `cqfit::Certainty` *is* `cqfit_duality::Certainty` —
/// one canonical definition, re-exported, not duplicated.
#[test]
fn certainty_reexport_is_canonical() {
    fn takes_duality(c: cqfit_duality::Certainty) -> cqfit::Certainty {
        c
    }
    assert_eq!(
        takes_duality(cqfit_duality::Certainty::Yes),
        cqfit::Certainty::Yes
    );
    assert_eq!(
        takes_duality(cqfit_duality::Certainty::Unknown),
        cqfit::Certainty::Unknown
    );
}

/// The re-exported umbrella paths in `cqfit-suite` resolve to the same
/// crates as the direct dependencies.
#[test]
fn suite_reexports_resolve() {
    let schema = Schema::digraph();
    let e = cqfit_suite::cqfit_data::parse_example(&schema, "R(a,a)").unwrap();
    let q: Cq = Cq::from_example(&e).unwrap();
    assert!(q.is_contained_in(&q).unwrap());
}
