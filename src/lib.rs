//! # cqfit-suite
//!
//! Umbrella package for the `cqfit` workspace.  It carries the repo-level
//! integration tests (`tests/`) and the runnable examples (`examples/`), and
//! re-exports every member crate so that one `use cqfit_suite::*` path is
//! enough to script against the whole stack.
//!
//! The member crates, in dependency order:
//!
//! 1. [`cqfit_data`] — schemas, instances, labeled examples,
//! 2. [`cqfit_query`] — CQs, UCQs and tree CQs,
//! 3. [`cqfit_hom`] — homomorphism search, cores, products, simulations,
//! 4. [`cqfit_duality`] — frontiers and (simulation) dualities,
//! 5. [`cqfit_gen`] — paper families and random workloads,
//! 6. [`cqfit`] — the fitting algorithms themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cqfit;
pub use cqfit_data;
pub use cqfit_duality;
pub use cqfit_gen;
pub use cqfit_hom;
pub use cqfit_query;
