//! # cqfit
//!
//! A from-scratch implementation of
//! *ten Cate, Dalmau, Funk, Lutz — Extremal Fitting Problems for Conjunctive
//! Queries* (PODS 2023).
//!
//! Given a collection of labeled data examples `E = (E⁺, E⁻)`, the *fitting
//! problem* asks for a query that returns every positive example and none of
//! the negative ones.  This crate implements, for three query classes, the
//! verification, existence and construction problems for
//!
//! * arbitrary fittings,
//! * most-specific fittings,
//! * weakly most-general fittings,
//! * bases of most-general fittings (and strongly most-general fittings as
//!   the singleton case),
//! * unique fittings,
//!
//! following the structural characterizations of the paper (direct products,
//! frontiers, homomorphism dualities and simulation dualities).
//!
//! ## Modules
//!
//! * [`cq`] — conjunctive queries (Section 3),
//! * [`ucq`] — unions of conjunctive queries (Section 4),
//! * [`tree`] — tree CQs over binary schemas (Section 5), including
//!   unravelings and complete initial pieces,
//! * [`incremental`] — incremental CQ/UCQ fitting over evolving example
//!   collections, the state machine behind the `cqfit-engine` service.
//!
//! ## Exactness
//!
//! Everything the paper characterizes by a direct construction is
//! implemented exactly.  Problems that are NExpTime-/ExpTime-complete or
//! `HomDual`-equivalent expose *bounded-complete* procedures that take an
//! explicit [`SearchBudget`] and return a three-valued
//! [`Certainty`] (`Yes` / `No` / `Unknown`); `No` and `Yes` answers are always
//! certified, `Unknown` means the budget ran out.  See `DESIGN.md` at the
//! repository root for the full exactness table.
//!
//! ## Quick start
//!
//! ```
//! use cqfit_data::{parse_example, LabeledExamples, Schema};
//! use cqfit::cq;
//!
//! let schema = Schema::digraph();
//! // Positive: a directed triangle; negative: a single loop-free edge.
//! let pos = parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,a)").unwrap();
//! let neg = parse_example(&schema, "R(a,b)").unwrap();
//! let examples = LabeledExamples::new(vec![pos], vec![neg]).unwrap();
//!
//! assert!(cq::fitting_exists(&examples).unwrap());
//! let fit = cq::most_specific_fitting(&examples).unwrap().unwrap();
//! assert!(cq::verify_fitting(&fit, &examples).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cq;
mod error;
pub mod incremental;
pub mod tree;
pub mod ucq;

pub use cqfit_duality::{Certainty, DualityConfig};
pub use error::FitError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FitError>;

/// Resource limits for the bounded-complete search procedures.
///
/// The defaults are calibrated so that every worked example of the paper and
/// every workload used in the test suite is decided exactly; raise them for
/// larger inputs (at an exponential cost, as the underlying problems are
/// NExpTime-/ExpTime-complete).
#[derive(Debug, Clone)]
pub struct SearchBudget {
    /// Maximum number of generalization steps when searching for weakly
    /// most-general fittings.
    pub max_generalization_steps: usize,
    /// Maximum size (variables + atoms) of intermediate candidate queries.
    pub max_query_size: usize,
    /// Maximum number of candidate queries kept during basis search.
    pub max_candidates: usize,
    /// Maximum number of nodes when materialising unravelings and fitting
    /// tree CQs.
    pub max_tree_nodes: usize,
    /// Maximum unraveling depth for tree CQ construction.
    pub max_unraveling_depth: usize,
    /// Configuration of the underlying duality checks.
    pub duality: DualityConfig,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_generalization_steps: 64,
            max_query_size: 4_096,
            max_candidates: 256,
            max_tree_nodes: 100_000,
            max_unraveling_depth: 64,
            duality: DualityConfig::default(),
        }
    }
}
