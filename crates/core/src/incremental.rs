//! Incremental fitting over an evolving collection of labeled examples.
//!
//! The batch entry points of [`crate::cq`] recompute the direct product
//! `Π E⁺` from scratch on every call, but interactive workloads
//! (query-by-example sessions, the `cqfit-engine` service) evolve `E⁺`/`E⁻`
//! one example at a time and re-ask for fittings after each step.
//! [`IncrementalFitting`] maintains that state *incrementally*:
//!
//! * **Adding a positive example extends the product** by one factor
//!   (`Π ← Π × e`, a single [`direct_product`]) instead of refolding the
//!   whole family — the direct product is associative up to isomorphism,
//!   and the left fold used here parenthesizes identically to the batch
//!   [`product_of`], so the maintained product is *structurally equal* to
//!   the from-scratch one as long as no removal intervened.
//! * **Removing a positive example invalidates lazily**: the product is
//!   dropped and rebuilt (as one fold over the surviving positives, in
//!   insertion order) only when the next fitting question arrives.
//!   Products have no useful "division"; eager rebuilding would waste the
//!   work when several removals arrive back-to-back.
//! * **Negative examples never touch the product** — adding or removing
//!   one costs O(1).
//!
//! Every fitting entry point takes an optional [`HomCache`]; with a cache,
//! the per-negative hom checks and the core minimizations are served from
//! the canonical-hash keyed store on repeat (across workspaces and
//! sessions), which is what makes warm re-fits cheap in the engine.
//!
//! The answers are certified against the batch path by
//! `tests/engine_incremental.rs`: after any fixed-seed sequence of
//! add/remove operations, the maintained product is hom-equivalent (in
//! fact structurally equal, modulo the rebuild fold) to the from-scratch
//! product, and every fitting answer matches the batch answer up to query
//! equivalence.

use crate::{FitError, Result};
use cqfit_data::{Example, LabeledExamples, Schema};
use cqfit_hom::{any_hom_exists_batch, direct_product, product_of, HomCache};
use cqfit_query::{Cq, Ucq};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of an example within an [`IncrementalFitting`] workspace.
pub type ExampleId = u64;

/// An evolving collection of labeled examples with incrementally
/// maintained most-specific-fitting state.  See the module documentation.
#[derive(Debug, Clone)]
pub struct IncrementalFitting {
    schema: Arc<Schema>,
    arity: usize,
    next_id: ExampleId,
    positives: BTreeMap<ExampleId, Example>,
    negatives: BTreeMap<ExampleId, Example>,
    /// The maintained product `Π E⁺`; `None` after a positive removal
    /// (lazy invalidation) until the next question rebuilds it.
    product: Option<Example>,
    /// Bumped on every successful mutation; lets callers (the engine's
    /// per-workspace memo) detect staleness cheaply.
    revision: u64,
}

impl IncrementalFitting {
    /// An empty workspace over the given schema and arity.  The product of
    /// the empty positive family is the top example, as in the batch path.
    pub fn new(schema: Arc<Schema>, arity: usize) -> Self {
        let product = cqfit_hom::top_example(&schema, arity);
        IncrementalFitting {
            schema,
            arity,
            next_id: 0,
            positives: BTreeMap::new(),
            negatives: BTreeMap::new(),
            product: Some(product),
            revision: 0,
        }
    }

    /// The schema of the workspace.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The arity of the workspace.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rebuilds a workspace from externally persisted state (the restore
    /// path of `cqfit-store` recovery): examples arrive with their original
    /// ids, and the id/revision counters are restored verbatim so clients
    /// holding pre-crash ids keep working and the revision-keyed memos of
    /// the engine stay correct.  The maintained product starts invalidated
    /// (first question rebuilds it by the same id-order fold as the batch
    /// path), so restore cost is proportional to the replayed examples,
    /// not to the product.
    ///
    /// # Errors
    /// Rejects examples failing [`IncrementalFitting::validate_example`],
    /// duplicate ids, and ids at or above `next_id`.
    pub fn from_parts(
        schema: Arc<Schema>,
        arity: usize,
        positives: Vec<(ExampleId, Example)>,
        negatives: Vec<(ExampleId, Example)>,
        next_id: ExampleId,
        revision: u64,
    ) -> Result<Self> {
        let mut inc = IncrementalFitting {
            schema,
            arity,
            next_id,
            positives: BTreeMap::new(),
            negatives: BTreeMap::new(),
            product: None,
            revision,
        };
        let mut seen = std::collections::BTreeSet::new();
        for (polarity_positive, examples) in [(true, positives), (false, negatives)] {
            for (id, e) in examples {
                inc.validate_example(&e)?;
                if id >= next_id {
                    return Err(FitError::Data(cqfit_data::DataError::Parse(format!(
                        "restored example id {id} is not below next_id {next_id}"
                    ))));
                }
                // Ids are drawn from one shared counter, so they must be
                // unique across both polarities, not just within one.
                if !seen.insert(id) {
                    return Err(FitError::Data(cqfit_data::DataError::Parse(format!(
                        "duplicate restored example id {id}"
                    ))));
                }
                let map = if polarity_positive {
                    &mut inc.positives
                } else {
                    &mut inc.negatives
                };
                map.insert(id, e);
            }
        }
        Ok(inc)
    }

    /// The current revision; bumped by every successful mutation.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The id the next added example will receive.
    pub fn next_id(&self) -> ExampleId {
        self.next_id
    }

    /// Number of positive examples.
    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// Number of negative examples.
    pub fn num_negatives(&self) -> usize {
        self.negatives.len()
    }

    /// The positive examples with their ids, in insertion (id) order.
    pub fn positives(&self) -> impl Iterator<Item = (ExampleId, &Example)> {
        self.positives.iter().map(|(&id, e)| (id, e))
    }

    /// The negative examples with their ids, in insertion (id) order.
    pub fn negatives(&self) -> impl Iterator<Item = (ExampleId, &Example)> {
        self.negatives.iter().map(|(&id, e)| (id, e))
    }

    /// True if the maintained product is currently valid (no rebuild
    /// pending).  Exposed for introspection and tests; questions rebuild
    /// transparently.
    pub fn product_is_fresh(&self) -> bool {
        self.product.is_some()
    }

    /// True if a positive example with this id exists.
    pub fn has_positive(&self, id: ExampleId) -> bool {
        self.positives.contains_key(&id)
    }

    /// True if a negative example with this id exists.
    pub fn has_negative(&self, id: ExampleId) -> bool {
        self.negatives.contains_key(&id)
    }

    /// Checks that an example is admissible for this workspace (right
    /// schema and arity, distinguished tuple inside the active domain) —
    /// the exact validation the add entry points perform.  Exposed so
    /// callers that must order a durable log write *before* the mutation
    /// (the engine's persist-before-ack path) can establish up front that
    /// the subsequent add cannot fail.
    ///
    /// # Errors
    /// The same errors as [`IncrementalFitting::add_positive`].
    pub fn validate_example(&self, e: &Example) -> Result<()> {
        self.validate(e)
    }

    fn validate(&self, e: &Example) -> Result<()> {
        if e.instance().schema().as_ref() != self.schema.as_ref() {
            return Err(FitError::Data(cqfit_data::DataError::SchemaMismatch));
        }
        if e.arity() != self.arity {
            return Err(FitError::Data(
                cqfit_data::DataError::ExampleArityMismatch {
                    left: self.arity,
                    right: e.arity(),
                },
            ));
        }
        if !e.is_data_example() {
            return Err(FitError::Data(
                cqfit_data::DataError::DistinguishedOutsideActiveDomain(format!("{e}")),
            ));
        }
        Ok(())
    }

    /// Adds a positive example, extending the maintained product by one
    /// factor (unless a rebuild is already pending).  Returns the new
    /// example's id.
    ///
    /// # Errors
    /// Rejects examples of the wrong schema or arity, and pointed
    /// instances that are not data examples.
    pub fn add_positive(&mut self, e: Example) -> Result<ExampleId> {
        self.validate(&e)?;
        if let Some(p) = self.product.take() {
            self.product = Some(direct_product(&p, &e)?);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.positives.insert(id, e);
        self.revision += 1;
        Ok(id)
    }

    /// Adds a negative example (never touches the product).  Returns the
    /// new example's id.
    ///
    /// # Errors
    /// Same validation as [`IncrementalFitting::add_positive`].
    pub fn add_negative(&mut self, e: Example) -> Result<ExampleId> {
        self.validate(&e)?;
        let id = self.next_id;
        self.next_id += 1;
        self.negatives.insert(id, e);
        self.revision += 1;
        Ok(id)
    }

    /// Removes a positive example; the maintained product is invalidated
    /// lazily (rebuilt by the next question).  Returns whether the id
    /// existed.
    pub fn remove_positive(&mut self, id: ExampleId) -> bool {
        if self.positives.remove(&id).is_some() {
            self.product = None;
            self.revision += 1;
            true
        } else {
            false
        }
    }

    /// Removes a negative example in O(1).  Returns whether the id existed.
    pub fn remove_negative(&mut self, id: ExampleId) -> bool {
        if self.negatives.remove(&id).is_some() {
            self.revision += 1;
            true
        } else {
            false
        }
    }

    /// A from-scratch snapshot of the current collection (the batch view;
    /// used by the differential tests).
    pub fn labeled_examples(&self) -> LabeledExamples {
        let mut col = LabeledExamples::empty();
        for e in self.positives.values() {
            col.add_positive(e.clone());
        }
        for e in self.negatives.values() {
            col.add_negative(e.clone());
        }
        col
    }

    /// Rebuilds the product if a removal invalidated it; afterwards
    /// `self.product` is always `Some`.  Split from [`Self::product`] so
    /// the fitting entry points can end the mutable borrow here and then
    /// read the product and the negatives through separate shared borrows
    /// (no per-request clone of the product).
    fn ensure_product(&mut self) -> Result<()> {
        if self.product.is_none() {
            let positives: Vec<Example> = self.positives.values().cloned().collect();
            self.product = Some(product_of(&self.schema, self.arity, &positives)?);
        }
        Ok(())
    }

    /// The product `Π E⁺`, rebuilding it first if a removal invalidated
    /// it.  The rebuild folds the surviving positives in id order, exactly
    /// like the batch [`product_of`].
    pub fn product(&mut self) -> Result<&Example> {
        self.ensure_product()?;
        Ok(self.product.as_ref().expect("just ensured"))
    }

    /// Is there a homomorphism from `e` into some negative example?
    fn maps_into_some_negative(&self, e: &Example, cache: Option<&HomCache>) -> bool {
        let pairs: Vec<(&Example, &Example)> =
            self.negatives.values().map(|neg| (e, neg)).collect();
        match cache {
            Some(c) => c.any_hom_exists(&pairs),
            None => any_hom_exists_batch(&pairs),
        }
    }

    fn core_via(cache: Option<&HomCache>, e: &Example) -> Arc<Example> {
        match cache {
            Some(c) => c.core_of(e),
            None => Arc::new(cqfit_hom::core_of(e)),
        }
    }

    /// Does some CQ fit the current collection?  (Incremental counterpart
    /// of [`crate::cq::fitting_exists`].)
    pub fn cq_fitting_exists(&mut self, cache: Option<&HomCache>) -> Result<bool> {
        self.ensure_product()?;
        let product = self.product.as_ref().expect("just ensured");
        if !product.is_data_example() {
            return Ok(false);
        }
        Ok(!self.maps_into_some_negative(product, cache))
    }

    /// Constructs a fitting CQ — the canonical CQ of the maintained
    /// product — if one exists.  (Incremental counterpart of
    /// [`crate::cq::construct_fitting`]; the result is a most-specific
    /// fitting.)
    pub fn cq_construct_fitting(&mut self, cache: Option<&HomCache>) -> Result<Option<Cq>> {
        self.ensure_product()?;
        let product = self.product.as_ref().expect("just ensured");
        if !product.is_data_example() {
            return Ok(None);
        }
        if self.maps_into_some_negative(product, cache) {
            return Ok(None);
        }
        Ok(Some(Cq::from_example(product)?))
    }

    /// [`IncrementalFitting::cq_construct_fitting`] with the output
    /// minimized: the canonical CQ of the *core* of the maintained product
    /// (served from the cache on repeat).  Incremental counterpart of
    /// [`crate::cq::construct_fitting_minimized`].
    pub fn cq_construct_fitting_minimized(
        &mut self,
        cache: Option<&HomCache>,
    ) -> Result<Option<Cq>> {
        self.ensure_product()?;
        let product = self.product.as_ref().expect("just ensured");
        if !product.is_data_example() {
            return Ok(None);
        }
        let core = Self::core_via(cache, product);
        if self.maps_into_some_negative(&core, cache) {
            return Ok(None);
        }
        Ok(Some(Cq::from_example(&core)?))
    }

    /// Does some fitting UCQ exist?  (Incremental counterpart of
    /// [`crate::ucq::fitting_exists`]: no positive maps into a negative;
    /// with an empty `E⁺` this is the CQ existence question.)
    pub fn ucq_fitting_exists(&mut self, cache: Option<&HomCache>) -> Result<bool> {
        if self.positives.is_empty() {
            return self.cq_fitting_exists(cache);
        }
        let pairs: Vec<(&Example, &Example)> = self
            .positives
            .values()
            .flat_map(|pos| self.negatives.values().map(move |neg| (pos, neg)))
            .collect();
        Ok(match cache {
            Some(c) => !c.any_hom_exists(&pairs),
            None => !any_hom_exists_batch(&pairs),
        })
    }

    /// Constructs the most-specific fitting UCQ `⋃_{e ∈ E⁺} q_e` if a
    /// fitting UCQ exists.  (Incremental counterpart of
    /// [`crate::ucq::most_specific_fitting`]; requires a non-empty `E⁺`.)
    pub fn ucq_most_specific_fitting(&mut self, cache: Option<&HomCache>) -> Result<Option<Ucq>> {
        if self.positives.is_empty() {
            return Ok(None);
        }
        if !self.ucq_fitting_exists(cache)? {
            return Ok(None);
        }
        let positives: Vec<Example> = self.positives.values().cloned().collect();
        Ok(Some(Ucq::from_examples(&positives)?))
    }

    /// [`IncrementalFitting::ucq_most_specific_fitting`] with the output
    /// minimized via [`Ucq::minimized_with`]: every disjunct is cored and
    /// the pairwise containment pruning runs with both served from the
    /// cache on repeat.  One copy of the pruning logic serves the cached
    /// and uncached paths.
    pub fn ucq_most_specific_fitting_minimized(
        &mut self,
        cache: Option<&HomCache>,
    ) -> Result<Option<Ucq>> {
        Ok(self
            .ucq_most_specific_fitting(cache)?
            .map(|q| q.minimized_with(cache)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::parse_example;

    fn ex(text: &str) -> Example {
        parse_example(&Schema::digraph(), text).unwrap()
    }

    #[test]
    fn incremental_product_matches_batch() {
        let mut inc = IncrementalFitting::new(Schema::digraph(), 0);
        let c3 = ex("R(a,b)\nR(b,c)\nR(c,a)");
        let c5 = ex("R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)");
        inc.add_positive(c3.clone()).unwrap();
        inc.add_positive(c5.clone()).unwrap();
        let batch = product_of(&Schema::digraph(), 0, &[c3, c5]).unwrap();
        let p = inc.product().unwrap();
        assert!(p.instance().same_facts(batch.instance()));
        assert!(inc.product_is_fresh());
    }

    #[test]
    fn removal_invalidates_lazily_and_rebuilds() {
        let mut inc = IncrementalFitting::new(Schema::digraph(), 0);
        let c3 = ex("R(a,b)\nR(b,c)\nR(c,a)");
        let c5 = ex("R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)");
        let id3 = inc.add_positive(c3).unwrap();
        inc.add_positive(c5.clone()).unwrap();
        assert!(inc.remove_positive(id3));
        assert!(!inc.product_is_fresh(), "removal invalidates lazily");
        let rev = inc.revision();
        let batch = product_of(&Schema::digraph(), 0, &[c5]).unwrap();
        assert!(inc
            .product()
            .unwrap()
            .instance()
            .same_facts(batch.instance()));
        assert!(inc.product_is_fresh(), "question rebuilt the product");
        assert_eq!(inc.revision(), rev, "rebuild is not a mutation");
        assert!(!inc.remove_positive(id3), "double remove reports absence");
    }

    #[test]
    fn fitting_answers_match_batch_entry_points() {
        let cache = HomCache::new();
        let mut inc = IncrementalFitting::new(Schema::digraph(), 0);
        inc.add_positive(ex("R(a,b)\nR(b,c)\nR(c,a)")).unwrap();
        inc.add_positive(ex("R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)"))
            .unwrap();
        inc.add_negative(ex("R(a,b)\nR(b,a)")).unwrap();
        let batch = inc.labeled_examples();
        assert_eq!(
            inc.cq_fitting_exists(Some(&cache)).unwrap(),
            crate::cq::fitting_exists(&batch).unwrap()
        );
        let inc_fit = inc.cq_construct_fitting(Some(&cache)).unwrap().unwrap();
        let batch_fit = crate::cq::construct_fitting(&batch).unwrap().unwrap();
        assert!(inc_fit.equivalent_to(&batch_fit).unwrap());
        let inc_min = inc
            .cq_construct_fitting_minimized(Some(&cache))
            .unwrap()
            .unwrap();
        let batch_min = crate::cq::construct_fitting_minimized(&batch)
            .unwrap()
            .unwrap();
        assert!(inc_min.equivalent_to(&batch_min).unwrap());
        assert_eq!(inc_min.num_variables(), 15);
        // Warm re-ask hits the cache.
        let before = cache.stats();
        let again = inc
            .cq_construct_fitting_minimized(Some(&cache))
            .unwrap()
            .unwrap();
        assert!(again.equivalent_to(&inc_min).unwrap());
        let after = cache.stats();
        assert!(after.core_hits > before.core_hits);
    }

    #[test]
    fn ucq_answers_match_batch_entry_points() {
        let mut inc = IncrementalFitting::new(Schema::digraph(), 0);
        inc.add_positive(ex("R(a,b)\nR(b,c)\nR(c,a)")).unwrap();
        // A 9-cycle: cores to itself, contained in the 3-cycle disjunct.
        inc.add_positive(ex(
            "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,f)\nR(f,g)\nR(g,h)\nR(h,i)\nR(i,a)",
        ))
        .unwrap();
        inc.add_negative(ex("R(a,b)\nR(b,a)")).unwrap();
        let batch = inc.labeled_examples();
        assert_eq!(
            inc.ucq_fitting_exists(None).unwrap(),
            crate::ucq::fitting_exists(&batch).unwrap()
        );
        let inc_ucq = inc.ucq_most_specific_fitting(None).unwrap().unwrap();
        let batch_ucq = crate::ucq::most_specific_fitting(&batch).unwrap().unwrap();
        assert!(inc_ucq.equivalent_to(&batch_ucq).unwrap());
        let inc_min = inc
            .ucq_most_specific_fitting_minimized(None)
            .unwrap()
            .unwrap();
        let batch_min = crate::ucq::most_specific_fitting_minimized(&batch)
            .unwrap()
            .unwrap();
        assert!(inc_min.equivalent_to(&batch_min).unwrap());
        assert_eq!(
            inc_min.len(),
            batch_min.len(),
            "same disjuncts survive pruning"
        );
    }

    #[test]
    fn validation_rejects_mismatches() {
        let mut inc = IncrementalFitting::new(Schema::digraph(), 1);
        // Wrong arity.
        assert!(inc.add_positive(ex("R(a,b)")).is_err());
        // Wrong schema.
        let other = parse_example(&Schema::binary_schema(["P"], ["R"]), "P(a)\n* a").unwrap();
        assert!(inc.add_positive(other).is_err());
        // Valid example passes.
        assert!(inc.add_positive(ex("R(a,b)\n* a")).is_ok());
        assert_eq!(inc.num_positives(), 1);
    }

    #[test]
    fn from_parts_restores_counters_and_answers() {
        let mut live = IncrementalFitting::new(Schema::digraph(), 0);
        let id3 = live.add_positive(ex("R(a,b)\nR(b,c)\nR(c,a)")).unwrap();
        live.add_positive(ex("R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)"))
            .unwrap();
        live.add_negative(ex("R(a,b)\nR(b,a)")).unwrap();
        assert!(live.remove_positive(id3));
        let mut restored = IncrementalFitting::from_parts(
            Schema::digraph(),
            0,
            live.positives().map(|(id, e)| (id, e.clone())).collect(),
            live.negatives().map(|(id, e)| (id, e.clone())).collect(),
            live.next_id(),
            live.revision(),
        )
        .unwrap();
        assert_eq!(restored.revision(), live.revision());
        assert_eq!(restored.next_id(), live.next_id());
        assert!(!restored.product_is_fresh(), "product rebuilds lazily");
        // A fresh add in the restored workspace gets the next pre-crash id.
        let next = restored.add_negative(ex("R(x,x)")).unwrap();
        assert_eq!(next, live.next_id());
        assert!(restored.remove_negative(next));
        let live_fit = live.cq_construct_fitting_minimized(None).unwrap().unwrap();
        let restored_fit = restored
            .cq_construct_fitting_minimized(None)
            .unwrap()
            .unwrap();
        assert!(live_fit.equivalent_to(&restored_fit).unwrap());
        // Invalid restores are rejected.
        let dup = IncrementalFitting::from_parts(
            Schema::digraph(),
            0,
            vec![(0, ex("R(a,b)"))],
            vec![(0, ex("R(a,b)"))],
            1,
            2,
        );
        assert!(dup.is_err(), "duplicate id across polarities");
        let high = IncrementalFitting::from_parts(
            Schema::digraph(),
            0,
            vec![(5, ex("R(a,b)"))],
            vec![],
            3,
            1,
        );
        assert!(high.is_err(), "id at or above next_id");
    }

    #[test]
    fn empty_workspace_behaves_like_batch_top() {
        let mut inc = IncrementalFitting::new(Schema::digraph(), 0);
        // No examples: the top product is a data example mapping into no
        // negatives, so a fitting exists (the top CQ).
        assert!(inc.cq_fitting_exists(None).unwrap());
        // Negative loop absorbs everything.
        inc.add_negative(ex("R(a,a)")).unwrap();
        assert!(!inc.cq_fitting_exists(None).unwrap());
        assert!(inc.cq_construct_fitting(None).unwrap().is_none());
        // UCQ most-specific needs positives.
        assert!(inc.ucq_most_specific_fitting(None).unwrap().is_none());
    }
}
