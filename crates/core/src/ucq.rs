//! Fitting problems for unions of conjunctive queries (Section 4 of the
//! paper).
//!
//! The characterizations used here:
//!
//! * **Existence / most-specific fittings** (Propositions 4.2 and 4.3): a
//!   fitting UCQ exists iff no positive example maps homomorphically into a
//!   negative example, and then `⋃_{e ∈ E⁺} q_e` is the most-specific
//!   fitting UCQ.
//! * **Most-general fittings** (Proposition 4.4): a fitting UCQ
//!   `q1 ∪ … ∪ qn` is (weakly = strongly) most-general iff
//!   `({e_{q1},…,e_{qn}}, E⁻)` is a homomorphism duality.
//! * **Unique fittings** (Proposition 4.5): a unique fitting UCQ exists iff
//!   `(E⁺, E⁻)` is a homomorphism duality, and then `⋃_{e ∈ E⁺} q_e` is it.
//!
//! The duality checks are three-valued (`HomDual` is NP-hard with open exact
//! complexity, Theorem 4.8); everything else is exact.

use crate::{Certainty, FitError, Result, SearchBudget};
use cqfit_data::{Example, LabeledExamples};
use cqfit_duality::check_hom_duality;
use cqfit_hom::any_hom_exists_batch;
use cqfit_query::Ucq;

/// Does the UCQ fit the examples?  (Verification problem, Theorem 4.6(3).)
pub fn verify_fitting(q: &Ucq, examples: &LabeledExamples) -> Result<bool> {
    if let (Some(schema), Some(arity)) = (examples.schema(), examples.arity()) {
        if q.schema().as_ref() != schema.as_ref() || q.arity() != arity {
            return Err(FitError::Incompatible);
        }
    }
    Ok(examples.positives().iter().all(|e| q.is_satisfied_in(e))
        && !examples.negatives().iter().any(|e| q.is_satisfied_in(e)))
}

/// Does some fitting UCQ exist?  (Proposition 4.2, coNP-complete.)
///
/// For a non-empty `E⁺` this holds iff no positive example maps
/// homomorphically into a negative example.  For an empty `E⁺` a fitting UCQ
/// exists iff a fitting CQ exists (a single disjunct suffices), which is
/// delegated to [`crate::cq::fitting_exists`].
///
/// The `|E⁺| × |E⁻|` separation checks are independent, so they run as one
/// parallel batch with early exit ([`any_hom_exists_batch`]).
pub fn fitting_exists(examples: &LabeledExamples) -> Result<bool> {
    if examples.positives().is_empty() {
        return crate::cq::fitting_exists(examples);
    }
    let pairs: Vec<(&Example, &Example)> = examples
        .positives()
        .iter()
        .flat_map(|pos| examples.negatives().iter().map(move |neg| (pos, neg)))
        .collect();
    Ok(!any_hom_exists_batch(&pairs))
}

/// Constructs the most-specific fitting UCQ `⋃_{e ∈ E⁺} q_e` if a fitting UCQ
/// exists (Propositions 4.2/4.3).  Requires a non-empty `E⁺` (with no
/// positive examples there is no most-specific fitting UCQ, as UCQs cannot be
/// unsatisfiable).
pub fn most_specific_fitting(examples: &LabeledExamples) -> Result<Option<Ucq>> {
    if examples.positives().is_empty() {
        return Ok(None);
    }
    if !fitting_exists(examples)? {
        return Ok(None);
    }
    Ok(Some(Ucq::from_examples(examples.positives())?))
}

/// [`most_specific_fitting`] with the output minimized: every disjunct is
/// cored with the mask-based core engine and disjuncts contained in another
/// disjunct are dropped ([`Ucq::minimized`]).  The result is an equivalent
/// most-specific fitting UCQ whose disjuncts are cores and pairwise
/// incomparable under containment.
pub fn most_specific_fitting_minimized(examples: &LabeledExamples) -> Result<Option<Ucq>> {
    Ok(most_specific_fitting(examples)?.map(|q| q.minimized()))
}

/// Verifies that `q` is a most-specific fitting UCQ (Proposition 4.3: `q`
/// fits and is equivalent to `⋃_{e ∈ E⁺} q_e`).
pub fn verify_most_specific_fitting(q: &Ucq, examples: &LabeledExamples) -> Result<bool> {
    if !verify_fitting(q, examples)? {
        return Ok(false);
    }
    if examples.positives().is_empty() {
        return Ok(false);
    }
    let canonical = Ucq::from_examples(examples.positives())?;
    Ok(q.equivalent_to(&canonical)?)
}

/// Verifies (three-valued) that `q` is a most-general fitting UCQ
/// (Proposition 4.4): `q` fits and `({e_{q1},…,e_{qn}}, E⁻)` is a
/// homomorphism duality.  The weak and strong notions coincide for UCQs.
pub fn verify_most_general_fitting(
    q: &Ucq,
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    if !verify_fitting(q, examples)? {
        return Ok(Certainty::No);
    }
    let f: Vec<Example> = q
        .disjuncts()
        .iter()
        .map(|d| d.canonical_example())
        .collect();
    Ok(check_hom_duality(&f, examples.negatives(), &budget.duality).certainty)
}

/// Verifies (three-valued) that `q` is the unique fitting UCQ
/// (Proposition 4.5): `q` is equivalent to `⋃_{e ∈ E⁺} q_e` and `(E⁺, E⁻)` is
/// a homomorphism duality.
pub fn verify_unique_fitting(
    q: &Ucq,
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    if !verify_most_specific_fitting(q, examples)? {
        return Ok(Certainty::No);
    }
    Ok(check_hom_duality(examples.positives(), examples.negatives(), &budget.duality).certainty)
}

/// Decides (three-valued) whether a unique fitting UCQ exists
/// (Proposition 4.5, Theorem 4.8): iff `⋃_{e ∈ E⁺} q_e` fits and `(E⁺, E⁻)`
/// is a homomorphism duality.
pub fn unique_fitting_exists(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    if examples.positives().is_empty() || !fitting_exists(examples)? {
        return Ok(Certainty::No);
    }
    Ok(check_hom_duality(examples.positives(), examples.negatives(), &budget.duality).certainty)
}

/// Constructs the unique fitting UCQ when its existence can be certified.
pub fn construct_unique_fitting(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<Ucq>> {
    match unique_fitting_exists(examples, budget)? {
        Certainty::Yes => most_specific_fitting(examples),
        _ => Ok(None),
    }
}

/// Decides (three-valued) whether a most-general fitting UCQ exists
/// (Theorem 4.6(2), NP-complete).
///
/// The implemented procedure answers `No` when no fitting UCQ exists, `Yes`
/// when the most-specific fitting UCQ can be certified to be most-general
/// (in particular on unary-only schemas, where the duality check is
/// exhaustive), and `Unknown` otherwise.
pub fn most_general_fitting_exists(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    if !fitting_exists(examples)? {
        return Ok(Certainty::No);
    }
    if let Some(candidate) = most_specific_fitting(examples)? {
        if verify_most_general_fitting(&candidate, examples, budget)? == Certainty::Yes {
            return Ok(Certainty::Yes);
        }
    }
    Ok(Certainty::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::{parse_example, Schema};
    use cqfit_query::{parse_cq, Ucq};
    use std::sync::Arc;

    fn labeled(schema: &Arc<Schema>, pos: &[&str], neg: &[&str]) -> LabeledExamples {
        LabeledExamples::new(
            pos.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
            neg.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
        )
        .unwrap()
    }

    /// Example 4.1 of the paper: a fitting UCQ exists although no fitting CQ
    /// does, and q = (P∧Q) ∪ (P∧R) is the unique fitting UCQ.
    #[test]
    fn paper_example_4_1() {
        let schema = Schema::binary_schema(["P", "Q", "R"], []);
        let e = labeled(
            &schema,
            &["P(a)\nQ(a)", "P(a)\nR(a)"],
            &["P(a)\nQ(b)\nR(b)"],
        );
        // No fitting CQ…
        assert!(!crate::cq::fitting_exists(&e).unwrap());
        // …but a fitting UCQ.
        assert!(fitting_exists(&e).unwrap());
        let q = Ucq::new(vec![
            parse_cq(&schema, "q() :- P(x), Q(x)").unwrap(),
            parse_cq(&schema, "q() :- P(x), R(x)").unwrap(),
        ])
        .unwrap();
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(verify_most_specific_fitting(&q, &e).unwrap());
        let budget = SearchBudget::default();
        assert_eq!(
            verify_most_general_fitting(&q, &e, &budget).unwrap(),
            Certainty::Yes
        );
        assert_eq!(
            verify_unique_fitting(&q, &e, &budget).unwrap(),
            Certainty::Yes
        );
        assert_eq!(unique_fitting_exists(&e, &budget).unwrap(), Certainty::Yes);
        let constructed = construct_unique_fitting(&e, &budget).unwrap().unwrap();
        assert!(constructed.equivalent_to(&q).unwrap());
        assert_eq!(
            most_general_fitting_exists(&e, &budget).unwrap(),
            Certainty::Yes
        );
    }

    #[test]
    fn existence_fails_when_positive_maps_to_negative() {
        let schema = Schema::digraph();
        let e = labeled(&schema, &["R(a,b)"], &["R(a,b)\nR(b,c)"]);
        assert!(!fitting_exists(&e).unwrap());
        assert!(most_specific_fitting(&e).unwrap().is_none());
        assert_eq!(
            unique_fitting_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::No
        );
    }

    #[test]
    fn most_specific_is_union_of_positives() {
        let schema = Schema::digraph();
        // Positives: directed 3- and 5-cycles; negative: the 2-cycle.
        let c3_text = "R(a,b)\nR(b,c)\nR(c,a)";
        let c5_text = "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)";
        let e = labeled(&schema, &[c3_text, c5_text], &["R(a,b)\nR(b,a)"]);
        let ms = most_specific_fitting(&e).unwrap().unwrap();
        assert_eq!(ms.len(), 2);
        assert!(verify_most_specific_fitting(&ms, &e).unwrap());
        // The single-disjunct 15-cycle also fits (C15 maps homomorphically to
        // both positives, being divisible by 3 and 5, and not to the 2-cycle)
        // and is strictly more general, hence not most-specific.
        let mut cycle15 = String::new();
        for i in 0..15 {
            cycle15.push_str(&format!("R(v{}, v{})\n", i, (i + 1) % 15));
        }
        let c15_cq =
            cqfit_query::Cq::from_example(&cqfit_data::parse_example(&schema, &cycle15).unwrap())
                .unwrap();
        let c15 = Ucq::new(vec![c15_cq]).unwrap();
        assert!(verify_fitting(&c15, &e).unwrap());
        assert!(!verify_most_specific_fitting(&c15, &e).unwrap());
    }

    /// The minimized most-specific fitting cores each disjunct and prunes
    /// contained ones, while remaining a most-specific fitting.
    #[test]
    fn minimized_most_specific_cores_and_prunes() {
        let schema = Schema::digraph();
        // First positive: C3 plus a redundant pendant path (folds into the
        // cycle); second positive: C3 again (its canonical CQ is contained in
        // the first's after coring, so pruning drops one disjunct).
        let c3_padded = "R(a,b)\nR(b,c)\nR(c,a)\nR(a,d)\nR(d,e)";
        let c3 = "R(a,b)\nR(b,c)\nR(c,a)";
        let e = labeled(&schema, &[c3_padded, c3], &["R(a,b)\nR(b,a)"]);
        let plain = most_specific_fitting(&e).unwrap().unwrap();
        assert_eq!(plain.len(), 2);
        let minimized = most_specific_fitting_minimized(&e).unwrap().unwrap();
        assert_eq!(minimized.len(), 1, "equivalent disjuncts collapse");
        assert_eq!(minimized.disjuncts()[0].num_variables(), 3);
        assert!(minimized.equivalent_to(&plain).unwrap());
        assert!(verify_most_specific_fitting(&minimized, &e).unwrap());
    }

    #[test]
    fn ucq_fitting_more_liberal_than_cq() {
        // Two incomparable positives and the empty instance as the negative
        // example: the direct product of the positives is empty and maps into
        // the negative, so no CQ fits, but the union of the positives does.
        let schema = Schema::binary_schema(["P", "Q"], []);
        let e = labeled(&schema, &["P(a)", "Q(a)"], &["# empty"]);
        assert!(!crate::cq::fitting_exists(&e).unwrap());
        assert!(fitting_exists(&e).unwrap());
        let ms = most_specific_fitting(&e).unwrap().unwrap();
        assert!(verify_fitting(&ms, &e).unwrap());
    }

    #[test]
    fn empty_positives_delegate_to_cq() {
        let schema = Schema::digraph();
        let e = labeled(&schema, &[], &["R(a,a)"]);
        assert!(!fitting_exists(&e).unwrap());
        let e2 = labeled(&schema, &[], &["R(a,b)"]);
        assert!(fitting_exists(&e2).unwrap());
        assert!(most_specific_fitting(&e2).unwrap().is_none());
    }

    #[test]
    fn incompatible_query_rejected() {
        let schema = Schema::digraph();
        let e = labeled(&schema, &["R(a,b)"], &[]);
        let unary = Ucq::new(vec![parse_cq(&schema, "q(x) :- R(x,y)").unwrap()]).unwrap();
        assert_eq!(
            verify_fitting(&unary, &e).unwrap_err(),
            FitError::Incompatible
        );
    }
}
