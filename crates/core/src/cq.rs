//! Fitting problems for conjunctive queries (Section 3 of the paper).
//!
//! The central characterizations used here:
//!
//! * **Arbitrary / most-specific fittings** (Theorem 3.3, Proposition 3.5):
//!   if any CQ fits `E`, then the canonical CQ of the direct product
//!   `Π E⁺` fits, and it is the (unique up to equivalence) most-specific
//!   fitting CQ.
//! * **Weakly most-general fittings** (Proposition 3.11): a fitting `q` is
//!   weakly most-general iff it has a frontier all of whose members map
//!   homomorphically into a negative example.
//! * **Bases of most-general fittings** (Proposition 3.29): `{q1,…,qn}` is a
//!   basis iff each `q_i` fits and `({e_{q1},…,e_{qn}}, E⁻)` is a
//!   homomorphism duality relative to `Π E⁺`.
//! * **Unique fittings** (Proposition 3.34): a unique fitting is exactly a
//!   fitting that is both most-specific and weakly most-general.

use crate::{Certainty, FitError, Result, SearchBudget};
use cqfit_data::{Example, LabeledExamples, Schema};
use cqfit_duality::{check_relativized_duality, frontier_examples, FrontierError};
use cqfit_hom::{any_hom_exists_batch, hom_exists_cross, product_of};
use cqfit_query::Cq;
use std::sync::Arc;

/// True if the example maps homomorphically into *some* negative example;
/// the independent checks run in parallel.
fn maps_into_some_negative(e: &Example, examples: &LabeledExamples) -> bool {
    let pairs: Vec<(&Example, &Example)> =
        examples.negatives().iter().map(|neg| (e, neg)).collect();
    any_hom_exists_batch(&pairs)
}

/// For each source, whether it maps homomorphically into *some* target.
/// The full cross product of checks runs as one parallel batch.
fn cross_product_hom_flags(srcs: &[Example], dsts: &[Example]) -> Vec<bool> {
    let src_refs: Vec<&Example> = srcs.iter().collect();
    let dst_refs: Vec<&Example> = dsts.iter().collect();
    let cross = hom_exists_cross(&src_refs, &dst_refs);
    (0..srcs.len()).map(|i| cross.any_in_row(i)).collect()
}

/// The schema and arity of a non-empty collection of labeled examples.
fn schema_and_arity(examples: &LabeledExamples) -> Result<(Arc<Schema>, usize)> {
    match (examples.schema(), examples.arity()) {
        (Some(s), Some(k)) => Ok((s.clone(), k)),
        _ => Err(FitError::Incompatible),
    }
}

/// The direct product of the positive examples, `Π_{e ∈ E⁺}(e)`
/// (the product of the empty family is the one-element example carrying all
/// facts).  This pointed instance is a data example iff some CQ fits the
/// positive examples.
pub fn product_of_positives(examples: &LabeledExamples) -> Result<Example> {
    let (schema, arity) = schema_and_arity(examples)?;
    Ok(product_of(&schema, arity, examples.positives())?)
}

/// Does the query fit the examples: is every positive example a positive
/// example for `q` and every negative example a negative one?
/// (Verification problem for arbitrary fittings, Theorem 3.1.)
pub fn verify_fitting(q: &Cq, examples: &LabeledExamples) -> Result<bool> {
    if let (Some(schema), Some(arity)) = (examples.schema(), examples.arity()) {
        if q.schema().as_ref() != schema.as_ref() || q.arity() != arity {
            return Err(FitError::Incompatible);
        }
    }
    Ok(examples.positives().iter().all(|e| q.is_satisfied_in(e))
        && !examples.negatives().iter().any(|e| q.is_satisfied_in(e)))
}

/// Does *some* CQ fit the examples?  (Existence problem, Theorem 3.2.)
///
/// By Theorem 3.3 this holds iff `Π E⁺` is a data example that does not map
/// homomorphically into any negative example.  The per-negative checks are
/// independent and fanned across threads ([`any_hom_exists_batch`]).
pub fn fitting_exists(examples: &LabeledExamples) -> Result<bool> {
    let product = product_of_positives(examples)?;
    if !product.is_data_example() {
        return Ok(false);
    }
    Ok(!maps_into_some_negative(&product, examples))
}

/// Constructs a fitting CQ if one exists: the canonical CQ of `Π E⁺`
/// (Theorem 3.3).  The result, when it exists, is a most-specific fitting
/// (Proposition 3.5).
pub fn construct_fitting(examples: &LabeledExamples) -> Result<Option<Cq>> {
    let product = product_of_positives(examples)?;
    if !product.is_data_example() {
        return Ok(None);
    }
    if maps_into_some_negative(&product, examples) {
        return Ok(None);
    }
    Ok(Some(Cq::from_example(&product)?))
}

/// Constructs the most-specific fitting CQ if one exists (Proposition 3.5:
/// most-specific fittings exist exactly when fittings exist, and the
/// canonical CQ of `Π E⁺` is one).
pub fn most_specific_fitting(examples: &LabeledExamples) -> Result<Option<Cq>> {
    construct_fitting(examples)
}

/// [`construct_fitting`] with the output minimized: the canonical CQ of the
/// *core* of `Π E⁺`, computed with the mask-based core engine
/// (`cqfit_hom::core_of`).
///
/// Exactness is unchanged — the core is homomorphically equivalent to the
/// product, so it is a data example exactly when the product is, it maps
/// into a negative example exactly when the product does (the per-negative
/// checks below run on the smaller core), and its canonical CQ is equivalent
/// to the uncored fitting.  The size claims of Theorems 3.40–3.42 are claims
/// about precisely this core.
pub fn construct_fitting_minimized(examples: &LabeledExamples) -> Result<Option<Cq>> {
    let product = product_of_positives(examples)?;
    if !product.is_data_example() {
        return Ok(None);
    }
    let core = cqfit_hom::core_of(&product);
    debug_assert!(core.is_data_example());
    if maps_into_some_negative(&core, examples) {
        return Ok(None);
    }
    Ok(Some(Cq::from_example(&core)?))
}

/// [`most_specific_fitting`] with the output minimized; see
/// [`construct_fitting_minimized`].
pub fn most_specific_fitting_minimized(examples: &LabeledExamples) -> Result<Option<Cq>> {
    construct_fitting_minimized(examples)
}

/// Verifies that `q` is a most-specific fitting CQ for the examples
/// (Proposition 3.5: `q` fits and is equivalent to the canonical CQ of
/// `Π E⁺`).
pub fn verify_most_specific_fitting(q: &Cq, examples: &LabeledExamples) -> Result<bool> {
    if !verify_fitting(q, examples)? {
        return Ok(false);
    }
    let product = product_of_positives(examples)?;
    // q fits, so the product is a data example (Theorem 3.3).
    let product_cq = Cq::from_example(&product)?;
    Ok(q.equivalent_to(&product_cq)?)
}

/// One generalization step in the homomorphism pre-order, used by the
/// bounded searches for weakly most-general fittings and bases.
enum GeneralizeStep {
    /// The query is already weakly most-general fitting.
    AlreadyMostGeneral,
    /// Strictly more general fitting CQs, one per frontier member that still
    /// fits the examples.
    MoreGeneral(Vec<Cq>),
    /// The query is not weakly most-general, but no *safe* frontier member
    /// fits, or the query has no frontier; the bounded search cannot proceed.
    Stuck,
}

/// Computes the fitting frontier members of (the core of) `q`.
fn generalize(q: &Cq, examples: &LabeledExamples) -> Result<GeneralizeStep> {
    let core = q.core();
    let members = match frontier_examples(&core) {
        Ok(m) => m,
        Err(FrontierError::NoFrontierExists) => return Ok(GeneralizeStep::Stuck),
        Err(FrontierError::RequiresUnp) => return Err(FitError::RequiresUnp),
        Err(e) => return Err(e.into()),
    };
    // A frontier member "fails" for weak most-generality exactly if it does
    // not map into any negative example (Proposition 3.11).  All member ×
    // negative checks are independent: run the whole cross product as one
    // parallel batch.
    let maps_to_negative = cross_product_hom_flags(&members, examples.negatives());
    let mut failing_safe = Vec::new();
    let mut failing_unsafe = 0usize;
    for (mi, m) in members.iter().enumerate() {
        if maps_to_negative[mi] {
            continue;
        }
        if m.is_data_example() {
            // The member also maps into every positive example (it maps into
            // q's canonical example, which maps into every positive), so it
            // is a strictly more general fitting CQ.
            failing_safe.push(Cq::from_example(m)?);
        } else {
            failing_unsafe += 1;
        }
    }
    if failing_safe.is_empty() && failing_unsafe == 0 {
        Ok(GeneralizeStep::AlreadyMostGeneral)
    } else if failing_safe.is_empty() {
        Ok(GeneralizeStep::Stuck)
    } else {
        Ok(GeneralizeStep::MoreGeneral(failing_safe))
    }
}

/// Verifies that `q` is a weakly most-general fitting CQ (Proposition 3.11,
/// Theorem 3.12): `q` fits, its core is c-acyclic, and every frontier member
/// maps homomorphically into a negative example.
///
/// # Errors
/// Fails with [`FitError::RequiresUnp`] if `q` repeats answer variables (the
/// frontier construction implemented here requires the UNP).
pub fn verify_weakly_most_general(q: &Cq, examples: &LabeledExamples) -> Result<bool> {
    if !verify_fitting(q, examples)? {
        return Ok(false);
    }
    let core = q.core();
    let members = match frontier_examples(&core) {
        Ok(m) => m,
        Err(FrontierError::NoFrontierExists) => return Ok(false),
        Err(FrontierError::RequiresUnp) => return Err(FitError::RequiresUnp),
        Err(e) => return Err(e.into()),
    };
    // Member-level short-circuit (the first failing member settles the
    // answer); the per-member negative checks still run as a parallel batch.
    Ok(members.iter().all(|m| maps_into_some_negative(m, examples)))
}

/// Bounded-complete existence check for weakly most-general fitting CQs
/// (Theorem 3.13 shows the problem ExpTime-complete).
///
/// The search starts from the most-specific fitting CQ and repeatedly
/// replaces the current fitting by a strictly more general fitting frontier
/// member; it answers `Yes` when a weakly most-general fitting is reached,
/// `No` when no fitting exists at all, and `Unknown` when the budget is
/// exhausted or the greedy chain gets stuck.
pub fn weakly_most_general_exists(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    Ok(match construct_weakly_most_general(examples, budget)? {
        Some(_) => Certainty::Yes,
        None => {
            if !fitting_exists(examples)? {
                Certainty::No
            } else {
                Certainty::Unknown
            }
        }
    })
}

/// Bounded-complete construction of a weakly most-general fitting CQ; see
/// [`weakly_most_general_exists`].  Returns `None` if no fitting exists or
/// the budget is exhausted.
pub fn construct_weakly_most_general(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<Cq>> {
    let Some(mut current) = construct_fitting(examples)? else {
        return Ok(None);
    };
    for _ in 0..budget.max_generalization_steps {
        match generalize(&current, examples)? {
            GeneralizeStep::AlreadyMostGeneral => return Ok(Some(current.core())),
            GeneralizeStep::MoreGeneral(mut next) => {
                // Greedy: follow the smallest more-general candidate.
                next.sort_by_key(Cq::size);
                let candidate = next.swap_remove(0);
                if candidate.size() > budget.max_query_size {
                    return Ok(None);
                }
                current = candidate;
            }
            GeneralizeStep::Stuck => return Ok(None),
        }
    }
    Ok(None)
}

/// Verifies that `q` is a *unique* fitting CQ (Proposition 3.34: `q` is a
/// most-specific and weakly most-general fitting).
pub fn verify_unique_fitting(q: &Cq, examples: &LabeledExamples) -> Result<bool> {
    Ok(verify_most_specific_fitting(q, examples)? && verify_weakly_most_general(q, examples)?)
}

/// Decides whether a unique fitting CQ exists (Theorem 3.35): the canonical
/// CQ of `Π E⁺` must fit and be weakly most-general.
pub fn unique_fitting_exists(examples: &LabeledExamples) -> Result<bool> {
    match construct_fitting(examples)? {
        None => Ok(false),
        Some(q) => verify_weakly_most_general(&q, examples),
    }
}

/// Constructs the unique fitting CQ if one exists.
pub fn construct_unique_fitting(examples: &LabeledExamples) -> Result<Option<Cq>> {
    match construct_fitting(examples)? {
        None => Ok(None),
        Some(q) => {
            if verify_weakly_most_general(&q, examples)? {
                Ok(Some(q))
            } else {
                Ok(None)
            }
        }
    }
}

/// Verifies (three-valued) that `basis` is a basis of most-general fitting
/// CQs for the examples (Proposition 3.29, Theorem 3.31): each member fits
/// and `({e_{q1},…,e_{qn}}, E⁻)` is a homomorphism duality relative to
/// `Π E⁺`.
///
/// The exact parts of the check are: fitting of every member, coverage of the
/// most-specific fitting, and the certified-counterexample refutations of the
/// underlying duality check.  A `Yes` answer is produced only when the
/// duality check is exhaustive (see [`cqfit_duality::check_relativized_duality`]).
pub fn verify_basis(
    basis: &[Cq],
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    for q in basis {
        if !verify_fitting(q, examples)? {
            return Ok(Certainty::No);
        }
    }
    let product = product_of_positives(examples)?;
    if !product.is_data_example() || maps_into_some_negative(&product, examples) {
        // No fitting CQ exists: the empty basis (and only it) is valid.
        return Ok(if basis.is_empty() {
            Certainty::Yes
        } else {
            Certainty::No
        });
    }
    if basis.is_empty() {
        return Ok(Certainty::No);
    }
    // Exact necessary condition: the most-specific fitting must be contained
    // in some member.
    let most_specific = Cq::from_example(&product)?;
    let covered = basis
        .iter()
        .map(|q| most_specific.is_contained_in(q))
        .collect::<cqfit_query::Result<Vec<bool>>>()?;
    if !covered.into_iter().any(|b| b) {
        return Ok(Certainty::No);
    }
    let f: Vec<Example> = basis.iter().map(Cq::canonical_example).collect();
    let outcome = check_relativized_duality(&f, examples.negatives(), &product, &budget.duality);
    Ok(outcome.certainty)
}

/// Bounded-complete existence check for a (finite) basis of most-general
/// fitting CQs (Theorem 3.31 shows the problem NExpTime-complete).
///
/// When no fitting CQ exists the empty basis trivially works and the answer
/// is `Yes`.  Otherwise the procedure tries to construct a basis within the
/// budget (see [`construct_basis`]) and verifies it.
pub fn basis_exists(examples: &LabeledExamples, budget: &SearchBudget) -> Result<Certainty> {
    if !fitting_exists(examples)? {
        return Ok(Certainty::Yes);
    }
    match construct_basis(examples, budget)? {
        Some(_) => Ok(Certainty::Yes),
        None => Ok(Certainty::Unknown),
    }
}

/// Bounded-complete construction of a basis of most-general fitting CQs: a
/// breadth-first exploration of the generalization order above the
/// most-specific fitting, collecting weakly most-general fittings, followed
/// by the (three-valued) basis verification.  Returns `Some(basis)` only if
/// the verification answered `Yes` within the budget.
pub fn construct_basis(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<Vec<Cq>>> {
    let Some(start) = construct_fitting(examples)? else {
        return Ok(Some(Vec::new()));
    };
    let mut queue = vec![start.core()];
    let mut visited: Vec<Cq> = Vec::new();
    let mut collected: Vec<Cq> = Vec::new();
    let mut steps = 0usize;
    while let Some(q) = queue.pop() {
        steps += 1;
        if steps > budget.max_candidates {
            return Ok(None);
        }
        if visited
            .iter()
            .map(|v| v.equivalent_to(&q))
            .collect::<cqfit_query::Result<Vec<bool>>>()?
            .into_iter()
            .any(|b| b)
        {
            continue;
        }
        visited.push(q.clone());
        match generalize(&q, examples)? {
            GeneralizeStep::AlreadyMostGeneral => collected.push(q),
            GeneralizeStep::MoreGeneral(next) => {
                for n in next {
                    if n.size() <= budget.max_query_size {
                        queue.push(n);
                    } else {
                        return Ok(None);
                    }
                }
            }
            GeneralizeStep::Stuck => return Ok(None),
        }
    }
    if collected.is_empty() {
        return Ok(None);
    }
    // Keep only the most general representatives.
    let mut basis: Vec<Cq> = Vec::new();
    'outer: for q in collected {
        for other in &basis {
            if q.is_contained_in(other)? {
                continue 'outer;
            }
        }
        basis.retain(|other| !other.is_contained_in(&q).unwrap_or(false));
        basis.push(q);
    }
    match verify_basis(&basis, examples, budget)? {
        Certainty::Yes => Ok(Some(basis)),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::{parse_example, Instance};
    use cqfit_query::parse_cq;

    fn labeled(schema: &Arc<Schema>, pos: &[&str], neg: &[&str]) -> LabeledExamples {
        LabeledExamples::new(
            pos.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
            neg.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
        )
        .unwrap()
    }

    /// Example 3.6 of the paper: most-specific fitting over a ternary/unary
    /// schema.
    #[test]
    fn paper_example_3_6_most_specific() {
        let schema = Arc::new(Schema::new([("R", 3), ("P", 1)]).unwrap());
        let e = labeled(&schema, &["R(a,a,b)\nP(a)", "R(c,d,d)\nP(c)"], &[]);
        // The negative example is the empty instance; an empty instance has
        // an empty active domain, so we model it as "no negative examples"
        // plus the observation below (every Boolean CQ with at least one
        // atom already fails on the empty instance).
        let q1 = parse_cq(&schema, "q() :- R(x,y,z)").unwrap();
        let q2 = parse_cq(&schema, "q() :- R(x,y,z), P(x)").unwrap();
        assert!(verify_fitting(&q1, &e).unwrap());
        assert!(verify_fitting(&q2, &e).unwrap());
        assert!(!verify_most_specific_fitting(&q1, &e).unwrap());
        assert!(verify_most_specific_fitting(&q2, &e).unwrap());
        let constructed = most_specific_fitting(&e).unwrap().unwrap();
        assert!(constructed.equivalent_to(&q2).unwrap());
    }

    /// Example 3.10(1–2): strongly/weakly most-general fittings with only
    /// negative examples.
    #[test]
    fn paper_example_3_10_most_general() {
        let schema = Schema::binary_schema(["P", "Q"], ["R"]);
        // (1) E⁻ = {P(a), Q(a)}: q() :- R(x,y) is strongly most-general.
        let e1 = labeled(&schema, &[], &["P(a)\nQ(a)"]);
        let q_edge = parse_cq(&schema, "q() :- R(x,y)").unwrap();
        assert!(verify_weakly_most_general(&q_edge, &e1).unwrap());
        // It is a singleton basis; verification must not refute it.
        let budget = SearchBudget::default();
        assert_ne!(
            verify_basis(std::slice::from_ref(&q_edge), &e1, &budget).unwrap(),
            Certainty::No
        );

        // (2) E⁻ = {P(a)}, {Q(a)}: both R(x,y) and P(x)∧Q(y) are weakly
        // most-general.
        let e2 = labeled(&schema, &[], &["P(a)", "Q(a)"]);
        let q_pq = parse_cq(&schema, "q() :- P(x), Q(y)").unwrap();
        assert!(verify_weakly_most_general(&q_edge, &e2).unwrap());
        assert!(verify_weakly_most_general(&q_pq, &e2).unwrap());
        // A query that fits but is not weakly most-general:
        let q_specific = parse_cq(&schema, "q() :- P(x), Q(x)").unwrap();
        assert!(verify_fitting(&q_specific, &e2).unwrap());
        assert!(!verify_weakly_most_general(&q_specific, &e2).unwrap());
    }

    /// Example 3.10(3): over the schema {R}, E⁻ = {K2} has fitting CQs but no
    /// weakly most-general one; the bounded search must not claim `Yes`.
    #[test]
    fn paper_example_3_10_3_no_most_general() {
        let schema = Schema::digraph();
        let e = labeled(&schema, &[], &["R(a,b)\nR(b,a)"]);
        assert!(fitting_exists(&e).unwrap());
        let verdict = weakly_most_general_exists(&e, &SearchBudget::default()).unwrap();
        assert_ne!(verdict, Certainty::Yes);
        // An odd cycle fits but is not weakly most-general (its frontier
        // contains a longer odd cycle that still fits).
        let c3 = parse_cq(&schema, "q() :- R(x,y), R(y,z), R(z,x)").unwrap();
        assert!(verify_fitting(&c3, &e).unwrap());
        assert!(!verify_weakly_most_general(&c3, &e).unwrap());
    }

    /// Example 3.10(4): adding K2 to the negatives of (2) keeps P(x)∧Q(y)
    /// weakly most-general.
    #[test]
    fn paper_example_3_10_4() {
        let schema = Schema::binary_schema(["P", "Q"], ["R"]);
        let e = labeled(&schema, &[], &["R(a,b)\nR(b,a)", "P(a)", "Q(a)"]);
        let q_pq = parse_cq(&schema, "q() :- P(x), Q(y)").unwrap();
        assert!(verify_weakly_most_general(&q_pq, &e).unwrap());
        let q_edge = parse_cq(&schema, "q() :- R(x,y)").unwrap();
        assert!(!verify_weakly_most_general(&q_edge, &e).unwrap());
    }

    /// Example 3.33: a unique fitting CQ.
    #[test]
    fn paper_example_3_33_unique() {
        let schema = Schema::digraph();
        let e = labeled(
            &schema,
            &["R(a,b)\nR(b,a)\nR(b,b)\n* b"],
            &["R(a,b)\nR(b,a)\nR(b,b)\n* a"],
        );
        let q = parse_cq(&schema, "q(x) :- R(x,x)").unwrap();
        assert!(verify_unique_fitting(&q, &e).unwrap());
        assert!(unique_fitting_exists(&e).unwrap());
        let constructed = construct_unique_fitting(&e).unwrap().unwrap();
        assert!(constructed.equivalent_to(&q).unwrap());
        // Weakly most-general construction also converges to it.
        let wmg = construct_weakly_most_general(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(wmg.equivalent_to(&q).unwrap());
    }

    /// No fitting exists when a positive example maps into a negative one in
    /// the Boolean case (here: positives force too little).
    #[test]
    fn fitting_nonexistence() {
        let schema = Schema::digraph();
        // Positive: a single edge; negative: a path of length 2.  The product
        // of positives (the edge) maps into the path, so nothing fits.
        let e = labeled(&schema, &["R(a,b)"], &["R(a,b)\nR(b,c)"]);
        assert!(!fitting_exists(&e).unwrap());
        assert!(construct_fitting(&e).unwrap().is_none());
        assert!(!unique_fitting_exists(&e).unwrap());
        assert_eq!(
            weakly_most_general_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::No
        );
        // The empty basis is the only basis.
        assert_eq!(
            verify_basis(&[], &e, &SearchBudget::default()).unwrap(),
            Certainty::Yes
        );
        assert_eq!(
            basis_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::Yes
        );
    }

    /// Fitting with two positive examples requires the direct product
    /// (odd-girth style): C3 and C5 as positives, K2-ish negative.
    #[test]
    fn product_fitting_two_cycles() {
        let schema = Schema::digraph();
        let c3 = "R(a,b)\nR(b,c)\nR(c,a)";
        let c5 = "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,a)";
        let neg = "R(a,b)\nR(b,a)";
        let e = labeled(&schema, &[c3, c5], &[neg]);
        assert!(fitting_exists(&e).unwrap());
        let q = construct_fitting(&e).unwrap().unwrap();
        assert!(verify_fitting(&q, &e).unwrap());
        // The fitting is a directed cycle of length 15 (up to equivalence):
        // its core has 15 variables.
        assert_eq!(q.core().num_variables(), 15);
    }

    /// The minimized construction returns the core of the product directly:
    /// equivalent to the plain construction, already a core, and still a
    /// (most-specific) fitting.
    #[test]
    fn minimized_fitting_is_cored_and_equivalent() {
        let schema = Schema::digraph();
        // Positives whose product (C3 × C9) properly folds: gcd(3,9) = 3
        // disjoint copies of C9, which core to a single C9.
        let c3 = "R(a,b)\nR(b,c)\nR(c,a)";
        let c9 = "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)\nR(e,f)\nR(f,g)\nR(g,h)\nR(h,i)\nR(i,a)";
        let e = labeled(&schema, &[c3, c9], &["R(a,b)\nR(b,a)"]);
        let plain = construct_fitting(&e).unwrap().unwrap();
        let minimized = construct_fitting_minimized(&e).unwrap().unwrap();
        assert!(minimized.equivalent_to(&plain).unwrap());
        assert!(verify_fitting(&minimized, &e).unwrap());
        assert!(verify_most_specific_fitting(&minimized, &e).unwrap());
        assert!(cqfit_hom::is_core(&minimized.canonical_example()));
        assert!(minimized.num_variables() < plain.num_variables());
        assert_eq!(minimized.num_variables(), 9);
        // Same answers when no fitting exists.
        let none = labeled(&schema, &["R(a,b)"], &["R(a,b)\nR(b,c)"]);
        assert!(construct_fitting_minimized(&none).unwrap().is_none());
        assert!(most_specific_fitting_minimized(&none).unwrap().is_none());
    }

    #[test]
    fn verify_fitting_rejects_incompatible_query() {
        let schema = Schema::digraph();
        let e = labeled(&schema, &["R(a,b)"], &[]);
        let unary = parse_cq(&schema, "q(x) :- R(x,y)").unwrap();
        assert_eq!(
            verify_fitting(&unary, &e).unwrap_err(),
            FitError::Incompatible
        );
    }

    #[test]
    fn empty_positive_set_uses_top_product() {
        let schema = Schema::digraph();
        // Negative: the one-element loop.  Every CQ maps into it, so no CQ
        // fits.
        let e = labeled(&schema, &[], &["R(a,a)"]);
        assert!(!fitting_exists(&e).unwrap());
        // Negative: a loop-free edge.  The loop query fits.
        let e2 = labeled(&schema, &[], &["R(a,b)"]);
        assert!(fitting_exists(&e2).unwrap());
        let q = construct_fitting(&e2).unwrap().unwrap();
        assert!(verify_fitting(&q, &e2).unwrap());
    }

    #[test]
    fn basis_construction_on_unary_schema() {
        // Over a unary-only schema the duality check is exhaustive, so the
        // bounded basis construction can return a certified basis.
        let schema = Schema::binary_schema(["P", "Q"], []);
        let mut i = Instance::new(schema.clone());
        i.add_fact_labels("P", &["a"]).unwrap();
        i.add_fact_labels("Q", &["a"]).unwrap();
        let pos = Example::boolean(i);
        let mut j = Instance::new(schema.clone());
        j.add_fact_labels("P", &["a"]).unwrap();
        let neg = Example::boolean(j);
        let e = LabeledExamples::new(vec![pos], vec![neg]).unwrap();
        // Fitting CQs must mention Q; the most general one is q() :- Q(x).
        let basis = construct_basis(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert_eq!(basis.len(), 1);
        let expected = parse_cq(&schema, "q() :- Q(x)").unwrap();
        assert!(basis[0].equivalent_to(&expected).unwrap());
        assert_eq!(
            basis_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::Yes
        );
    }
}
