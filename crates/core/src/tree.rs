//! Fitting problems for tree CQs over binary schemas (Section 5 of the
//! paper).
//!
//! Tree CQs correspond to ELI concept expressions; simulations take over the
//! role of homomorphisms (Lemma 5.3).  The characterizations used here:
//!
//! * **Fitting existence** (Section 5.1): a fitting tree CQ exists iff the
//!   direct product `Π E⁺` of the positive examples is a data example that
//!   does not *simulate* into any negative example; fitting tree CQs are then
//!   obtained as sufficiently deep unravelings of the product.
//! * **Most-specific fittings** (Propositions 5.14 and 5.17): a most-specific
//!   fitting exists iff the unraveling of `Π E⁺` has a *complete initial
//!   piece*, computed here by a least-fixpoint over the product.
//! * **Weakly most-general fittings** (Proposition 5.22): characterized by
//!   frontiers w.r.t. tree CQs.
//! * **Bases of most-general fittings** (Proposition 5.27): characterized by
//!   simulation dualities relative to `Π E⁺`.
//! * **Unique fittings**: most-specific + weakly most-general.

use crate::{Certainty, FitError, Result, SearchBudget};
use cqfit_data::{Example, LabeledExamples, Value};
use cqfit_duality::{check_simulation_duality, frontier_examples};
use cqfit_hom::{product_of, simulates, simulation_preorder, SimulationRelation};
use cqfit_query::{Role, RootedTree, TreeCq};
use std::collections::HashMap;

/// Checks that the examples are unary and over a binary schema.
fn require_tree_setting(examples: &LabeledExamples) -> Result<()> {
    match (examples.schema(), examples.arity()) {
        (Some(schema), Some(arity)) => {
            if !schema.is_binary() || arity != 1 {
                Err(FitError::RequiresBinaryUnary)
            } else {
                Ok(())
            }
        }
        _ => Err(FitError::Incompatible),
    }
}

/// The direct product `Π E⁺` of the positive examples (the product of the
/// empty family is the one-element example carrying all facts).
pub fn product_of_positives(examples: &LabeledExamples) -> Result<Example> {
    require_tree_setting(examples)?;
    let schema = examples.schema().expect("non-empty").clone();
    Ok(product_of(&schema, 1, examples.positives())?)
}

/// Does the tree CQ fit the examples?  Decidable in polynomial time via
/// simulations (Theorem 5.9).
pub fn verify_fitting(q: &TreeCq, examples: &LabeledExamples) -> Result<bool> {
    require_tree_setting(examples)?;
    if q.as_cq().schema().as_ref() != examples.schema().expect("non-empty").as_ref() {
        return Err(FitError::Incompatible);
    }
    Ok(examples.positives().iter().all(|e| q.is_satisfied_in(e))
        && !examples.negatives().iter().any(|e| q.is_satisfied_in(e)))
}

/// Does some fitting tree CQ exist?  (ExpTime-complete, Theorem 5.10.)
///
/// Holds iff `Π E⁺` is a data example and `Π E⁺ ⪯̸ e⁻` for every negative
/// example (the product simulation problem of Section 5.5).
pub fn fitting_exists(examples: &LabeledExamples) -> Result<bool> {
    let product = product_of_positives(examples)?;
    if !product.is_data_example() {
        return Ok(false);
    }
    for neg in examples.negatives() {
        if simulates(&product, neg)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Constructs a fitting tree CQ if one exists: the shallowest unraveling of
/// `Π E⁺` that avoids a simulation into every negative example
/// (Theorem 5.11).  Returns `None` if no fitting exists or the budget
/// (unraveling depth / node count) is exhausted — fitting tree CQs can be
/// doubly exponentially large in the worst case (Theorem 5.37).
pub fn construct_fitting(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<TreeCq>> {
    if !fitting_exists(examples)? {
        return Ok(None);
    }
    let product = product_of_positives(examples)?;
    for depth in 0..=budget.max_unraveling_depth {
        let Some(tree) = unravel(&product, depth, budget.max_tree_nodes) else {
            return Ok(None);
        };
        let Ok(q) = TreeCq::from_rooted(tree) else {
            continue; // unsafe at depth 0 (unlabeled root); go deeper
        };
        if !examples
            .negatives()
            .iter()
            .any(|neg| q.is_satisfied_in(neg))
        {
            debug_assert!(examples.positives().iter().all(|e| q.is_satisfied_in(e)));
            return Ok(Some(q));
        }
    }
    Ok(None)
}

/// The `depth`-unraveling of a unary pointed instance as a rooted tree, or
/// `None` if it would exceed `max_nodes` nodes.
pub fn unravel(example: &Example, depth: usize, max_nodes: usize) -> Option<RootedTree> {
    let inst = example.instance();
    let schema = inst.schema().clone();
    let root_val = example.distinguished()[0];
    let mut tree = RootedTree::new(schema.clone());
    set_labels(&mut tree, 0, example, root_val);
    let mut frontier: Vec<(usize, Value)> = vec![(tree.root(), root_val)];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &(node, val) in &frontier {
            for (role, succ) in successors(example, val) {
                if tree.num_nodes() >= max_nodes {
                    return None;
                }
                let child = tree.add_child(node, role).expect("binary schema");
                set_labels(&mut tree, child, example, succ);
                next.push((child, succ));
            }
        }
        frontier = next;
    }
    Some(tree)
}

/// The unary relations holding at a value.
fn set_labels(tree: &mut RootedTree, node: usize, example: &Example, val: Value) {
    let inst = example.instance();
    for rel in inst.schema().unary_rels().collect::<Vec<_>>() {
        if inst.contains_fact(rel, &[val]) {
            tree.add_label(node, rel).expect("unary label");
        }
    }
}

/// The role-successors of a value: `(R, w)` for facts `R(v, w)` and
/// `(R⁻, w)` for facts `R(w, v)`.
fn successors(example: &Example, val: Value) -> Vec<(Role, Value)> {
    let inst = example.instance();
    let mut out = Vec::new();
    for &fid in inst.facts_containing(val) {
        let fact = inst.fact(fid);
        if fact.args.len() != 2 {
            continue;
        }
        if fact.args[0] == val {
            out.push((Role::forward(fact.rel), fact.args[1]));
        }
        if fact.args[1] == val {
            out.push((Role::converse(fact.rel), fact.args[0]));
        }
    }
    out
}

/// Verifies that `q` is a (strongly = weakly) most-specific fitting tree CQ
/// (Proposition 5.14): `q` fits and `Π E⁺ ⪯ q`.
pub fn verify_most_specific(q: &TreeCq, examples: &LabeledExamples) -> Result<bool> {
    if !verify_fitting(q, examples)? {
        return Ok(false);
    }
    let product = product_of_positives(examples)?;
    Ok(simulates(&product, &q.canonical_example())?)
}

/// The least fixpoint of "complete initial pieces": for which pairs
/// (incoming edge, product value) does a finite complete subtree exist?
struct PieceAnalysis {
    product: Example,
    sim: SimulationRelation,
    roles: Vec<Role>,
    /// `good[(incoming, value)] = rank` at which the state was derived.
    good: HashMap<(Option<(Value, Role)>, Value), usize>,
}

impl PieceAnalysis {
    fn new(product: Example) -> Result<Self> {
        let sim = simulation_preorder(product.instance())?;
        let schema = product.instance().schema().clone();
        let mut roles = Vec::new();
        for rel in schema.binary_rels() {
            roles.push(Role::forward(rel));
            roles.push(Role::converse(rel));
        }
        let mut analysis = PieceAnalysis {
            product,
            sim,
            roles,
            good: HashMap::new(),
        };
        analysis.fixpoint();
        Ok(analysis)
    }

    fn succ(&self, v: Value, role: Role) -> Vec<Value> {
        successors(&self.product, v)
            .into_iter()
            .filter_map(|(r, w)| (r == role).then_some(w))
            .collect()
    }

    /// One state is derivable if, taking *all* already-good children as
    /// available, every successor of `v` is covered either by such a child or
    /// by the parent.
    fn derivable(&self, incoming: Option<(Value, Role)>, v: Value, rank: usize) -> bool {
        for &role in &self.roles {
            for z in self.succ(v, role) {
                let by_parent = match incoming {
                    Some((a, r)) => role == r.flipped() && self.sim.contains(z, a),
                    None => false,
                };
                if by_parent {
                    continue;
                }
                let by_child = self.succ(v, role).into_iter().any(|y| {
                    self.good
                        .get(&(Some((v, role)), y))
                        .is_some_and(|&r| r < rank)
                        && self.sim.contains(z, y)
                });
                if !by_child {
                    return false;
                }
            }
        }
        true
    }

    fn fixpoint(&mut self) {
        let values: Vec<Value> = self.product.instance().values().collect();
        let mut states: Vec<(Option<(Value, Role)>, Value)> = Vec::new();
        for &v in &values {
            states.push((None, v));
            for &a in &values {
                for &r in &self.roles {
                    states.push((Some((a, r)), v));
                }
            }
        }
        let mut rank = 1usize;
        loop {
            let mut changed = false;
            for state in &states {
                if self.good.contains_key(state) {
                    continue;
                }
                if self.derivable(state.0, state.1, rank) {
                    self.good.insert(*state, rank);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rank += 1;
        }
    }

    /// Builds a complete initial piece below the given state; `None` if the
    /// node budget is exceeded.
    fn build(
        &self,
        tree: &mut RootedTree,
        node: usize,
        incoming: Option<(Value, Role)>,
        v: Value,
        max_nodes: usize,
    ) -> Option<()> {
        let my_rank = *self.good.get(&(incoming, v))?;
        set_labels(tree, node, &self.product, v);
        for &role in &self.roles {
            // Chosen children for this role, with the product value they carry.
            let mut chosen: Vec<(Value, usize)> = Vec::new();
            for z in self.succ(v, role) {
                let by_parent = match incoming {
                    Some((a, r)) => role == r.flipped() && self.sim.contains(z, a),
                    None => false,
                };
                if by_parent || chosen.iter().any(|&(y, _)| self.sim.contains(z, y)) {
                    continue;
                }
                // Pick a good child value covering z, preferring z itself.
                let candidates: Vec<Value> = self
                    .succ(v, role)
                    .into_iter()
                    .filter(|&y| {
                        self.good
                            .get(&(Some((v, role)), y))
                            .is_some_and(|&r| r < my_rank)
                            && self.sim.contains(z, y)
                    })
                    .collect();
                let pick = if candidates.contains(&z) {
                    z
                } else {
                    *candidates.first()?
                };
                if tree.num_nodes() >= max_nodes {
                    return None;
                }
                let child = tree.add_child(node, role).expect("binary schema");
                self.build(tree, child, Some((v, role)), pick, max_nodes)?;
                chosen.push((pick, child));
            }
        }
        Some(())
    }
}

/// Does a most-specific fitting tree CQ exist?  (ExpTime-complete,
/// Theorem 5.15.)
///
/// Holds iff a fitting tree CQ exists and the unraveling of `Π E⁺` has a
/// complete initial piece (Proposition 5.17), decided here by a least
/// fixpoint over the product.
pub fn most_specific_exists(examples: &LabeledExamples) -> Result<bool> {
    if !fitting_exists(examples)? {
        return Ok(false);
    }
    let product = product_of_positives(examples)?;
    let root = product.distinguished()[0];
    let analysis = PieceAnalysis::new(product)?;
    Ok(analysis.good.contains_key(&(None, root)))
}

/// Rebuilds the rooted-tree view of a tree-shaped unary pointed example:
/// a depth-first traversal from the distinguished root, turning each binary
/// fact into the edge of a unique child (forward role when the visited value
/// is the first argument, converse role otherwise) and each unary fact into
/// a label.  (Traversal order only affects sibling order, not the rebuilt
/// query.)  Returns `None` if the example is not tree-shaped (self-loop,
/// re-entered value, unreached active value).
fn rooted_tree_of_example(e: &Example) -> Option<RootedTree> {
    let inst = e.instance();
    if e.arity() != 1 || !inst.schema().is_binary() {
        return None;
    }
    let root = e.distinguished()[0];
    let mut tree = RootedTree::new(inst.schema().clone());
    let mut node_of = vec![usize::MAX; inst.num_values()];
    node_of[root.index()] = tree.root();
    let mut queue = vec![root];
    while let Some(v) = queue.pop() {
        let node = node_of[v.index()];
        for &fid in inst.facts_containing(v) {
            let fact = inst.fact(fid);
            if fact.args.len() == 1 {
                tree.add_label(node, fact.rel).ok()?;
                continue;
            }
            let (role, w) = if fact.args[0] == v {
                (Role::forward(fact.rel), fact.args[1])
            } else {
                (Role::converse(fact.rel), fact.args[0])
            };
            if w == v {
                return None; // self-loop: not a tree
            }
            if node_of[w.index()] != usize::MAX {
                // Already reached: either this is the (already traversed)
                // edge back to the parent, or a genuine cycle.
                if tree
                    .parent(node)
                    .is_some_and(|(r, p)| p == node_of[w.index()] && r == role.flipped())
                {
                    continue;
                }
                return None;
            }
            let child = tree.add_child(node, role).ok()?;
            node_of[w.index()] = child;
            queue.push(w);
        }
    }
    // Connectivity: every active value must have been reached.
    if inst
        .values()
        .any(|v| inst.is_active(v) && node_of[v.index()] == usize::MAX)
    {
        return None;
    }
    Some(tree)
}

/// Minimizes a tree CQ through the mask-based core engine: cores the
/// canonical example (retracts of trees are trees, so the core is
/// tree-shaped) and rebuilds the rooted-tree view.  Falls back to the
/// simulation-based [`TreeCq::reduce`] in the defensive case that the core
/// cannot be rebuilt as a rooted tree.
fn minimize_tree_cq(q: &TreeCq) -> TreeCq {
    let core = cqfit_hom::core_of(&q.canonical_example());
    match rooted_tree_of_example(&core).and_then(|t| TreeCq::from_rooted(t).ok()) {
        Some(minimized) => minimized,
        None => q.reduce(),
    }
}

/// [`construct_most_specific`] with the output minimized: the complete
/// initial piece is cored with the mask-based core engine
/// (`cqfit_hom::core_of`) and rebuilt as a tree CQ.  The result is
/// equivalent to the unminimized piece (cores are homomorphically
/// equivalent, and homomorphic equivalence of tree-shaped examples implies
/// simulation equivalence), hence still a most-specific fitting.
pub fn construct_most_specific_minimized(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<TreeCq>> {
    let Some(piece) = construct_most_specific(examples, budget)? else {
        return Ok(None);
    };
    let minimized = minimize_tree_cq(&piece);
    debug_assert!(verify_most_specific(&minimized, examples)?);
    Ok(Some(minimized))
}

/// Constructs a most-specific fitting tree CQ (a complete initial piece of
/// the unraveling of `Π E⁺`, Theorem 5.18) if one exists within the node
/// budget.
pub fn construct_most_specific(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<TreeCq>> {
    if !fitting_exists(examples)? {
        return Ok(None);
    }
    let product = product_of_positives(examples)?;
    let root = product.distinguished()[0];
    let analysis = PieceAnalysis::new(product)?;
    if !analysis.good.contains_key(&(None, root)) {
        return Ok(None);
    }
    let mut tree = RootedTree::new(examples.schema().expect("non-empty").clone());
    if analysis
        .build(&mut tree, 0, None, root, budget.max_tree_nodes)
        .is_none()
    {
        return Ok(None);
    }
    let q = TreeCq::from_rooted(tree)?;
    debug_assert!(verify_most_specific(&q, examples)?);
    Ok(Some(q))
}

/// Verifies that `q` is a weakly most-general fitting tree CQ
/// (Proposition 5.22, Theorem 5.23).
///
/// The implementation uses the frontier of `q` *as a CQ* (tree CQs are
/// c-acyclic with the UNP): `q` fails to be weakly most-general among tree
/// CQs iff some frontier member `m` has an active root and `m ⪯̸ e⁻` for
/// every negative example — in that case a sufficiently deep unraveling of
/// `m` is a tree CQ that fits and is strictly more general than `q`
/// (Lemma 5.5), and conversely every such tree CQ maps into a frontier
/// member.
pub fn verify_weakly_most_general(q: &TreeCq, examples: &LabeledExamples) -> Result<bool> {
    if !verify_fitting(q, examples)? {
        return Ok(false);
    }
    Ok(weakly_most_general_witness(q, examples)?.is_none())
}

/// A frontier member of `q` witnessing that `q` is not weakly most-general
/// among tree CQs (see [`verify_weakly_most_general`]), if any.
fn weakly_most_general_witness(q: &TreeCq, examples: &LabeledExamples) -> Result<Option<Example>> {
    for m in frontier_examples(q.as_cq())? {
        let root = m.distinguished()[0];
        if !m.instance().is_active(root) {
            continue;
        }
        let mut simulated = false;
        for neg in examples.negatives() {
            if simulates(&m, neg)? {
                simulated = true;
                break;
            }
        }
        if !simulated {
            return Ok(Some(m));
        }
    }
    Ok(None)
}

/// Bounded-complete construction of a weakly most-general fitting tree CQ:
/// start from a fitting tree CQ and, while a frontier member witnesses that
/// the current query is not weakly most-general, replace the query by the
/// shallowest unraveling of that member that still avoids every negative
/// example (such a depth exists by Lemma 5.5; the budget caps it).
pub fn construct_weakly_most_general(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<TreeCq>> {
    let Some(mut current) = construct_fitting(examples, budget)? else {
        return Ok(None);
    };
    for _ in 0..budget.max_generalization_steps {
        current = current.reduce();
        let Some(witness) = weakly_most_general_witness(&current, examples)? else {
            return Ok(Some(current));
        };
        let mut replaced = None;
        for depth in 1..=budget.max_unraveling_depth {
            let Some(tree) = unravel(&witness, depth, budget.max_tree_nodes) else {
                return Ok(None);
            };
            let Ok(candidate) = TreeCq::from_rooted(tree) else {
                continue;
            };
            if !examples
                .negatives()
                .iter()
                .any(|neg| candidate.is_satisfied_in(neg))
            {
                replaced = Some(candidate);
                break;
            }
        }
        match replaced {
            Some(candidate) if candidate.size() <= budget.max_query_size => current = candidate,
            _ => return Ok(None),
        }
    }
    Ok(None)
}

/// Bounded-complete existence check for weakly most-general fitting tree CQs
/// (ExpTime-complete, Theorem 5.24).
pub fn weakly_most_general_exists(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    if !fitting_exists(examples)? {
        return Ok(Certainty::No);
    }
    Ok(match construct_weakly_most_general(examples, budget)? {
        Some(_) => Certainty::Yes,
        None => Certainty::Unknown,
    })
}

/// Verifies that `q` is the unique fitting tree CQ: it is a most-specific and
/// a weakly most-general fitting (the tree analogue of Proposition 3.34).
pub fn verify_unique(q: &TreeCq, examples: &LabeledExamples) -> Result<bool> {
    Ok(verify_most_specific(q, examples)? && verify_weakly_most_general(q, examples)?)
}

/// Decides whether a unique fitting tree CQ exists (ExpTime-complete,
/// Theorem 5.25).  `Unknown` is only returned when the most-specific fitting
/// exceeds the node budget before it can be checked for weak most-generality.
pub fn unique_exists(examples: &LabeledExamples, budget: &SearchBudget) -> Result<Certainty> {
    if !most_specific_exists(examples)? {
        return Ok(Certainty::No);
    }
    match construct_most_specific(examples, budget)? {
        Some(piece) => Ok(if verify_weakly_most_general(&piece, examples)? {
            Certainty::Yes
        } else {
            Certainty::No
        }),
        None => Ok(Certainty::Unknown),
    }
}

/// Constructs the unique fitting tree CQ when its existence can be certified.
pub fn construct_unique(
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Option<TreeCq>> {
    match unique_exists(examples, budget)? {
        Certainty::Yes => construct_most_specific(examples, budget),
        _ => Ok(None),
    }
}

/// Verifies (three-valued) that `basis` is a basis of most-general fitting
/// tree CQs (Proposition 5.27): each member fits and
/// `({q1,…,qn}, E⁻)` is a simulation duality relative to `Π E⁺`.
pub fn verify_basis(
    basis: &[TreeCq],
    examples: &LabeledExamples,
    budget: &SearchBudget,
) -> Result<Certainty> {
    for q in basis {
        if !verify_fitting(q, examples)? {
            return Ok(Certainty::No);
        }
    }
    let product = product_of_positives(examples)?;
    if basis.is_empty() {
        return Ok(if fitting_exists(examples)? {
            Certainty::No
        } else {
            Certainty::Yes
        });
    }
    let f: Vec<Example> = basis.iter().map(TreeCq::canonical_example).collect();
    let outcome = check_simulation_duality(&f, examples.negatives(), &product, &budget.duality);
    Ok(outcome.certainty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::{parse_example, Schema};
    use cqfit_query::parse_cq;
    use std::sync::Arc;

    fn labeled(schema: &Arc<Schema>, pos: &[&str], neg: &[&str]) -> LabeledExamples {
        LabeledExamples::new(
            pos.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
            neg.iter()
                .map(|t| parse_example(schema, t).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn tcq(schema: &Arc<Schema>, text: &str) -> TreeCq {
        TreeCq::try_new(parse_cq(schema, text).unwrap()).unwrap()
    }

    /// Example 5.1: positives {R(a,a)} at a, negatives the 2-cycle at a —
    /// no tree CQ fits because the product simulates into the negative.
    #[test]
    fn paper_example_5_1_no_fitting() {
        let schema = Schema::binary_schema([], ["R"]);
        let e = labeled(&schema, &["R(a,a)\n* a"], &["R(a,b)\nR(b,a)\n* a"]);
        assert!(!fitting_exists(&e).unwrap());
        assert!(construct_fitting(&e, &SearchBudget::default())
            .unwrap()
            .is_none());
        // An unrestricted CQ does fit (Example 5.1).
        assert!(crate::cq::fitting_exists(&e).unwrap());
    }

    /// Example 5.13: positives {R(a,a)} at a, no negatives — fitting tree CQs
    /// exist but no most-specific one.
    #[test]
    fn paper_example_5_13_no_most_specific() {
        let schema = Schema::binary_schema([], ["R"]);
        let e = labeled(&schema, &["R(a,a)\n* a"], &[]);
        assert!(fitting_exists(&e).unwrap());
        let q = construct_fitting(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(!most_specific_exists(&e).unwrap());
        assert!(construct_most_specific(&e, &SearchBudget::default())
            .unwrap()
            .is_none());
        // The fitting R(x,y) is not most-specific (the loop does not simulate
        // into it).
        let edge = tcq(&schema, "q(x) :- R(x,y)");
        assert!(verify_fitting(&edge, &e).unwrap());
        assert!(!verify_most_specific(&edge, &e).unwrap());
    }

    /// Example 5.20: a weakly most-general fitting tree CQ exists, but the
    /// most-specific fitting is not weakly most-general (so no unique fitting
    /// exists).
    #[test]
    fn paper_example_5_20() {
        let schema = Schema::binary_schema(["P", "Q"], ["R"]);
        let e = labeled(
            &schema,
            &["P(a)\nR(a,b)\nQ(b)\n* a"],
            &["P(a)\nR(a,b)\n* a", "R(a,b)\nR(c,b)\nR(c,d)\nQ(d)\n* a"],
        );
        assert!(fitting_exists(&e).unwrap());
        let q = tcq(&schema, "q(x) :- R(x,y), Q(y)");
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(verify_weakly_most_general(&q, &e).unwrap());
        // The most-specific fitting exists (the positive example itself is
        // tree-shaped) but is not weakly most-general.
        assert!(most_specific_exists(&e).unwrap());
        let ms = construct_most_specific(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(verify_most_specific(&ms, &e).unwrap());
        assert!(!verify_weakly_most_general(&ms, &e).unwrap());
        assert_eq!(
            unique_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::No
        );
        // The weakly most-general search should find a witness.
        assert_eq!(
            weakly_most_general_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::Yes
        );
    }

    /// Example 5.21: no weakly most-general fitting tree CQ exists (the
    /// bounded search must not claim Yes).
    #[test]
    fn paper_example_5_21_no_weakly_most_general() {
        let schema = Schema::binary_schema(["P"], ["R"]);
        let e = labeled(&schema, &[], &["P(a)\n* a", "R(a,a)\n* a"]);
        assert!(fitting_exists(&e).unwrap());
        let small_budget = SearchBudget {
            max_generalization_steps: 6,
            ..SearchBudget::default()
        };
        assert_ne!(
            weakly_most_general_exists(&e, &small_budget).unwrap(),
            Certainty::Yes
        );
        // A concrete fitting tree CQ that is not weakly most-general:
        let q = tcq(&schema, "q(x) :- R(x,y), P(x)");
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(!verify_weakly_most_general(&q, &e).unwrap());
    }

    /// A unique fitting tree CQ: positive = R-edge into a Q-labelled point;
    /// the negatives are chosen (following Example 5.20) so that zig-zag
    /// generalizations are excluded and the most-specific fitting is also
    /// weakly most-general.
    #[test]
    fn unique_tree_fitting() {
        let schema = Schema::binary_schema(["Q"], ["R"]);
        let e = labeled(
            &schema,
            &["R(a,b)\nQ(b)\n* a"],
            &["R(a,b)\n* a", "R(a,b)\nR(c,b)\nR(c,d)\nQ(d)\n* a"],
        );
        let q = tcq(&schema, "q(x) :- R(x,y), Q(y)");
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(verify_most_specific(&q, &e).unwrap());
        assert!(verify_weakly_most_general(&q, &e).unwrap());
        assert!(verify_unique(&q, &e).unwrap());
        assert_eq!(
            unique_exists(&e, &SearchBudget::default()).unwrap(),
            Certainty::Yes
        );
        let constructed = construct_unique(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(constructed.equivalent_to(&q).unwrap());
        // And {q} is a singleton basis; the check must not refute it.
        assert_ne!(
            verify_basis(&[q], &e, &SearchBudget::default()).unwrap(),
            Certainty::No
        );
    }

    /// The minimized most-specific construction cores the complete initial
    /// piece and rebuilds it as a tree CQ: equivalent, core-shaped, still a
    /// most-specific fitting.
    #[test]
    fn minimized_most_specific_piece() {
        let schema = Schema::binary_schema(["Q"], ["R"]);
        let e = labeled(
            &schema,
            &["R(a,b)\nQ(b)\nR(a,c)\nQ(c)\n* a"],
            &["R(a,b)\n* a"],
        );
        assert!(most_specific_exists(&e).unwrap());
        let piece = construct_most_specific(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        let minimized = construct_most_specific_minimized(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(minimized.equivalent_to(&piece).unwrap());
        assert!(verify_most_specific(&minimized, &e).unwrap());
        assert!(cqfit_hom::is_core(&minimized.canonical_example()));
        assert!(minimized.num_variables() <= piece.num_variables());
        assert_eq!(minimized.num_variables(), 2, "the twin Q-children fold");
    }

    #[test]
    fn product_fitting_needs_unraveling() {
        // Positives: a 2-cycle and a 3-cycle (each with distinguished a);
        // negative: a single vertex with a loop-free edge.  The product is a
        // 6-cycle-like structure; unravelings of depth ≥ 1 fit.
        let schema = Schema::binary_schema([], ["R"]);
        let e = labeled(
            &schema,
            &["R(a,b)\nR(b,a)\n* a", "R(a,b)\nR(b,c)\nR(c,a)\n* a"],
            &["R(a,b)\n* a"],
        );
        assert!(fitting_exists(&e).unwrap());
        let q = construct_fitting(&e, &SearchBudget::default())
            .unwrap()
            .unwrap();
        assert!(verify_fitting(&q, &e).unwrap());
        assert!(q.depth() >= 1);
    }

    #[test]
    fn non_binary_or_non_unary_rejected() {
        let schema = Schema::digraph();
        let boolean = labeled(&schema, &["R(a,b)"], &[]);
        assert_eq!(
            fitting_exists(&boolean).unwrap_err(),
            FitError::RequiresBinaryUnary
        );
        let ternary = Arc::new(Schema::new([("T", 3)]).unwrap());
        let mut inst = cqfit_data::Instance::new(ternary);
        inst.add_fact_labels("T", &["a", "b", "c"]).unwrap();
        let a = inst.value_by_label("a").unwrap();
        let ex = Example::new(inst, vec![a]);
        let e = LabeledExamples::new(vec![ex], vec![]).unwrap();
        assert_eq!(
            fitting_exists(&e).unwrap_err(),
            FitError::RequiresBinaryUnary
        );
    }

    #[test]
    fn unravel_depth_and_caps() {
        let schema = Schema::binary_schema(["P"], ["R"]);
        let p = parse_example(&schema, "R(a,a)\nP(a)\n* a").unwrap();
        let t1 = unravel(&p, 1, 1000).unwrap();
        assert_eq!(t1.depth(), 1);
        assert_eq!(t1.num_nodes(), 3, "self-loop unravels to two children");
        assert!(unravel(&p, 10, 16).is_none(), "node cap respected");
    }
}
