//! Error type of the fitting layer.

use cqfit_data::DataError;
use cqfit_duality::FrontierError;
use cqfit_hom::HomError;
use cqfit_query::QueryError;
use std::fmt;

/// Errors raised by the fitting algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The query and the examples disagree on schema or arity.
    Incompatible,
    /// The operation requires queries with the Unique Names Property (no
    /// repeated answer variables); see the documentation of the calling
    /// function.
    RequiresUnp,
    /// The operation is only defined for collections of unary examples over a
    /// binary schema (tree CQ fitting, Section 5).
    RequiresBinaryUnary,
    /// A configured resource limit was exceeded; the result would be
    /// `Certainty::Unknown` but the caller asked for a definite object.
    BudgetExhausted(String),
    /// Data-layer error.
    Data(DataError),
    /// Homomorphism-layer error.
    Hom(HomError),
    /// Query-layer error.
    Query(QueryError),
    /// Frontier-construction error.
    Frontier(FrontierError),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Incompatible => {
                write!(f, "query and examples have different schemas or arities")
            }
            FitError::RequiresUnp => write!(
                f,
                "this operation requires the Unique Names Property (no repeated answer variables)"
            ),
            FitError::RequiresBinaryUnary => write!(
                f,
                "tree CQ fitting requires unary examples over a binary schema"
            ),
            FitError::BudgetExhausted(what) => write!(f, "search budget exhausted: {what}"),
            FitError::Data(e) => write!(f, "{e}"),
            FitError::Hom(e) => write!(f, "{e}"),
            FitError::Query(e) => write!(f, "{e}"),
            FitError::Frontier(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<DataError> for FitError {
    fn from(e: DataError) -> Self {
        FitError::Data(e)
    }
}
impl From<HomError> for FitError {
    fn from(e: HomError) -> Self {
        FitError::Hom(e)
    }
}
impl From<QueryError> for FitError {
    fn from(e: QueryError) -> Self {
        FitError::Query(e)
    }
}
impl From<FrontierError> for FitError {
    fn from(e: FrontierError) -> Self {
        FitError::Frontier(e)
    }
}
