//! # cqfit-env
//!
//! The injectable **environment** behind every effectful operation in the
//! cqfit stack: filesystem access, networking, time, randomness, and
//! scheduler yield points.  Production code holds an [`Env`] trait object
//! and never calls `std::fs` / `std::net` / `Instant::now` directly; the
//! default [`RealEnv`] forwards straight to the OS, while `cqfit-sim`
//! substitutes a simulated filesystem, a simulated network, and a
//! deterministic scheduler to explore crash, fault, and interleaving
//! state spaces (madsim / FoundationDB style).
//!
//! The filesystem surface is deliberately the *store's* footprint, not a
//! general VFS: append-mode opens, `sync_data`/`sync_all`, `set_len`
//! truncation, rename, unlink, and directory sync — exactly the
//! operations whose durability semantics the write-ahead log depends on.
//! The network surface ([`Net`], [`NetListener`], [`NetConn`]) is likewise
//! the *server's* footprint: bind/accept/connect plus byte-stream reads
//! with an optional timeout (the shutdown-poll and per-request-deadline
//! primitives), not a general sockets API.
//!
//! ## Yield points
//!
//! [`Env::yield_point`] is a no-op in production.  Under simulation it is
//! where the deterministic scheduler may switch between registered tasks.
//! Call discipline: a yield point must only be placed where the calling
//! thread holds **no lock** that another registered task can block on —
//! the simulated scheduler runs one registered task at a time, so
//! yielding while holding such a lock would deadlock the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// How a file is opened by [`Fs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Create if missing, truncate if present, writable cursor at 0.
    CreateTruncate,
    /// Open existing for appending: every write lands at EOF *by mode*
    /// (`O_APPEND`), regardless of any earlier truncation.
    Append,
    /// Open existing for writing without truncation (used to `set_len`).
    Write,
}

/// An open file handle.
///
/// Handles follow POSIX inode semantics: a handle obtained before a
/// rename or unlink keeps addressing the original inode — which is
/// exactly the hazard the store's compaction reopen path guards against,
/// and which simulated filesystems must model faithfully.
pub trait FsFile: Send + fmt::Debug {
    /// Writes the whole buffer (at EOF for [`OpenMode::Append`] handles).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes userspace buffers (no durability guarantee).
    fn flush(&mut self) -> io::Result<()>;
    /// Makes the file's *data* durable (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Makes data and metadata durable (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations the durability layer is built from.
pub trait Fs: Send + Sync + fmt::Debug {
    /// Opens `path` in the given mode.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn FsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Renames `from` onto `to` (atomic replacement within a directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the files in a directory, sorted by path (deterministic
    /// order regardless of the backing filesystem).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Syncs the directory *containing* `path`, making a create, rename,
    /// or unlink of that entry durable.  Best-effort on platforms where
    /// directories cannot be opened.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// Time sources.  Both readings are [`Duration`]s rather than `Instant`/
/// `SystemTime` so simulated clocks can fabricate values freely.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic time since an arbitrary fixed origin (process start for
    /// the real clock).  Never goes backwards.
    fn monotonic(&self) -> Duration;
    /// Wall-clock time since the UNIX epoch.
    fn wall_unix(&self) -> Duration;
    /// Blocks the caller for `d` of this clock's time.  The real clock
    /// parks the thread; [`ManualClock`] just advances itself, which is
    /// what lets retry backoff run instantly (and deterministically)
    /// under simulation.
    fn sleep(&self, d: Duration);
}

/// One endpoint of an established byte-stream connection.
///
/// Reads take an optional *timeout* instead of relying on socket-level
/// configuration: both the server's shutdown-flag poll and the client's
/// per-request deadline are expressed as bounded reads, measured against
/// the environment's [`Clock`] by simulated implementations.
pub trait NetConn: Send + fmt::Debug {
    /// Reads into `buf`, blocking until at least one byte is available
    /// (returning how many were read), the peer closes (`Ok(0)`), or
    /// `timeout` passes (`ErrorKind::TimedOut` / `WouldBlock`).
    /// `timeout: None` blocks indefinitely.
    fn read(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize>;
    /// Writes the whole buffer.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Closes the connection; the peer observes EOF after draining any
    /// bytes already in flight.
    fn shutdown(&mut self) -> io::Result<()>;
    /// The peer's address, for diagnostics.
    fn peer_addr(&self) -> String;
}

/// A bound, listening endpoint.
pub trait NetListener: Send + Sync + fmt::Debug {
    /// Blocks until the next incoming connection.
    fn accept(&self) -> io::Result<Box<dyn NetConn>>;
    /// The bound address (resolves ephemeral ports).
    fn local_addr(&self) -> io::Result<String>;
}

/// The network operations the serving layer is built from.
///
/// Addresses are plain strings: `HOST:PORT` for the real network,
/// arbitrary names (e.g. `sim:engine`) for simulated ones.
pub trait Net: Send + Sync + fmt::Debug {
    /// Binds a listener on `addr` (port `0` picks an ephemeral port on
    /// the real network).
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>>;
    /// Connects to a listener at `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>>;
}

/// The full environment: filesystem + network + clock + rng + yields.
pub trait Env: Send + Sync + fmt::Debug {
    /// The filesystem.
    fn fs(&self) -> &dyn Fs;
    /// The clock.
    fn clock(&self) -> &dyn Clock;
    /// The network.  Defaults to the real one so environments assembled
    /// for filesystem or clock injection need not mention it.
    fn net(&self) -> &dyn Net {
        real_net()
    }
    /// A scheduler yield point (no-op outside simulation).  `label`
    /// identifies the call site for trace output.  See the crate docs for
    /// the no-held-locks call discipline.
    fn yield_point(&self, label: &str) {
        let _ = label;
    }
    /// One draw from the environment's random source.
    fn rng_u64(&self) -> u64;
}

/// One step of the splitmix64 sequence held in `state`.
fn splitmix64(state: &AtomicU64) -> u64 {
    let mut z = state
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A real `std::fs::File` behind the [`FsFile`] trait.
#[derive(Debug)]
struct RealFile(File);

impl FsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

/// The production environment: straight pass-through to `std::fs` and the
/// OS clocks, no-op yield points.  The only cost over direct calls is one
/// vtable dispatch per operation — invisible next to a syscall, and
/// bounded by the `--pr6` benchmark at <2% on the WAL append/replay
/// paths.
#[derive(Debug, Default)]
pub struct RealEnv {
    rng: AtomicU64,
}

impl RealEnv {
    /// A fresh real environment (rng seeded from the wall clock).
    pub fn new() -> RealEnv {
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
            .unwrap_or(0x5EED)
            ^ u64::from(std::process::id());
        RealEnv {
            rng: AtomicU64::new(seed),
        }
    }

    /// A fresh real environment as an `Arc<dyn Env>` — the form every
    /// constructor taking an environment wants.
    pub fn arc() -> Arc<dyn Env> {
        Arc::new(RealEnv::new())
    }
}

impl Fs for RealEnv {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn FsFile>> {
        let mut opts = OpenOptions::new();
        match mode {
            OpenMode::CreateTruncate => opts.create(true).write(true).truncate(true),
            OpenMode::Append => opts.append(true),
            OpenMode::Write => opts.write(true),
        };
        Ok(Box::new(RealFile(opts.open(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(path)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                dir.sync_all()?;
            }
        }
        Ok(())
    }
}

/// Monotonic origin shared by every [`RealEnv`], so durations from
/// different instances compare meaningfully.
fn monotonic_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

impl Clock for RealEnv {
    fn monotonic(&self) -> Duration {
        monotonic_origin().elapsed()
    }

    fn wall_unix(&self) -> Duration {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

impl Env for RealEnv {
    fn fs(&self) -> &dyn Fs {
        self
    }
    fn clock(&self) -> &dyn Clock {
        self
    }
    fn rng_u64(&self) -> u64 {
        splitmix64(&self.rng)
    }
}

/// The production network: straight pass-through to `std::net`.  Read
/// timeouts map onto `set_read_timeout`, cached so repeated reads with
/// the same timeout cost no extra syscall.
#[derive(Debug, Default)]
pub struct RealNet;

/// The shared production network instance — what [`Env::net`] returns by
/// default.
pub fn real_net() -> &'static dyn Net {
    static NET: RealNet = RealNet;
    &NET
}

#[derive(Debug)]
struct RealConn {
    stream: std::net::TcpStream,
    /// The read timeout currently applied to the socket.
    applied: Option<Duration>,
    applied_set: bool,
}

impl RealConn {
    fn new(stream: std::net::TcpStream) -> RealConn {
        RealConn {
            stream,
            applied: None,
            applied_set: false,
        }
    }
}

impl NetConn for RealConn {
    fn read(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        // A zero timeout is invalid at the socket level; it means the
        // deadline already passed.
        if timeout == Some(Duration::ZERO) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "read deadline passed",
            ));
        }
        if !self.applied_set || self.applied != timeout {
            self.stream.set_read_timeout(timeout)?;
            self.applied = timeout;
            self.applied_set = true;
        }
        io::Read::read(&mut self.stream, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.stream, buf)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    fn peer_addr(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}

#[derive(Debug)]
struct RealListener(std::net::TcpListener);

impl NetListener for RealListener {
    fn accept(&self) -> io::Result<Box<dyn NetConn>> {
        let (stream, _) = self.0.accept()?;
        Ok(Box::new(RealConn::new(stream)))
    }

    fn local_addr(&self) -> io::Result<String> {
        self.0.local_addr().map(|a| a.to_string())
    }
}

impl Net for RealNet {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        Ok(Box::new(RealListener(std::net::TcpListener::bind(addr)?)))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>> {
        Ok(Box::new(RealConn::new(std::net::TcpStream::connect(addr)?)))
    }
}

/// A hand-cranked clock for tests: time moves only when told to (plus an
/// optional fixed auto-tick per reading, for code that polls until a
/// deadline).  Wall time is monotonic time plus a fixed epoch offset.
#[derive(Debug)]
pub struct ManualClock {
    nanos: AtomicU64,
    auto_tick_nanos: u64,
    epoch_offset: Duration,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> ManualClock {
        ManualClock {
            nanos: AtomicU64::new(0),
            auto_tick_nanos: 0,
            epoch_offset: Duration::from_secs(1_700_000_000),
        }
    }

    /// A clock that advances itself by `tick` on every reading — lets
    /// poll-until-deadline loops terminate without anyone calling
    /// [`ManualClock::advance`].
    pub fn with_auto_tick(tick: Duration) -> ManualClock {
        ManualClock {
            auto_tick_nanos: tick.as_nanos() as u64,
            ..ManualClock::new()
        }
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn monotonic(&self) -> Duration {
        let nanos = self
            .nanos
            .fetch_add(self.auto_tick_nanos, Ordering::SeqCst)
            .wrapping_add(self.auto_tick_nanos);
        Duration::from_nanos(nanos)
    }

    fn wall_unix(&self) -> Duration {
        self.epoch_offset + self.monotonic()
    }

    fn sleep(&self, d: Duration) {
        // Sleeping *is* advancing: backoff and retry delays complete
        // instantly in simulated time.
        self.advance(d);
    }
}

/// An environment assembled from independently chosen parts — e.g. the
/// real filesystem with a [`ManualClock`] for shutdown-timeout tests, or
/// a simulated filesystem with the real clock.  Yield points are no-ops;
/// environments that schedule (like `cqfit-sim`'s) implement [`Env`]
/// themselves.
#[derive(Debug)]
pub struct PartsEnv {
    fs: Arc<dyn Fs>,
    clock: Arc<dyn Clock>,
    rng: AtomicU64,
}

impl PartsEnv {
    /// Assembles an environment from a filesystem, a clock, and an rng
    /// seed.
    pub fn new(fs: Arc<dyn Fs>, clock: Arc<dyn Clock>, rng_seed: u64) -> PartsEnv {
        PartsEnv {
            fs,
            clock,
            rng: AtomicU64::new(rng_seed),
        }
    }
}

impl Env for PartsEnv {
    fn fs(&self) -> &dyn Fs {
        self.fs.as_ref()
    }
    fn clock(&self) -> &dyn Clock {
        self.clock.as_ref()
    }
    fn rng_u64(&self) -> u64 {
        splitmix64(&self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqfit_env_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_env_round_trips_files() {
        let env = RealEnv::new();
        let dir = tmp_dir("roundtrip");
        env.create_dir_all(&dir).unwrap();
        let path = dir.join("a.txt");
        let mut f = env.open(&path, OpenMode::CreateTruncate).unwrap();
        f.write_all(b"hello ").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let mut f = env.open(&path, OpenMode::Append).unwrap();
        f.write_all(b"world").unwrap();
        f.flush().unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(env.read(&path).unwrap(), b"hello world");
        let renamed = dir.join("b.txt");
        env.rename(&path, &renamed).unwrap();
        env.sync_parent_dir(&renamed).unwrap();
        assert_eq!(env.read_dir(&dir).unwrap(), vec![renamed.clone()]);
        let mut f = env.open(&renamed, OpenMode::Write).unwrap();
        f.set_len(5).unwrap();
        drop(f);
        assert_eq!(env.read(&renamed).unwrap(), b"hello");
        env.remove_file(&renamed).unwrap();
        assert!(env.read_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_clock_is_monotonic_and_rng_varies() {
        let env = RealEnv::new();
        let a = env.clock().monotonic();
        let b = env.clock().monotonic();
        assert!(b >= a);
        assert!(env.clock().wall_unix().as_secs() > 1_600_000_000);
        let x = env.rng_u64();
        let y = env.rng_u64();
        assert_ne!(x, y, "consecutive splitmix64 draws collide");
        env.yield_point("test"); // the default no-op
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.monotonic(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.monotonic(), Duration::from_millis(250));
        assert_eq!(
            clock.wall_unix(),
            Duration::from_secs(1_700_000_000) + Duration::from_millis(250)
        );

        let ticking = ManualClock::with_auto_tick(Duration::from_millis(10));
        assert_eq!(ticking.monotonic(), Duration::from_millis(10));
        assert_eq!(ticking.monotonic(), Duration::from_millis(20));
    }

    #[test]
    fn real_net_round_trips_bytes_with_timeouts() {
        let net = real_net();
        let listener = net.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 16];
            let n = conn.read(&mut buf, None).unwrap();
            conn.write_all(&buf[..n]).unwrap();
        });
        let mut client = net.connect(&addr).unwrap();
        // Nothing sent yet: a bounded read must time out, not hang.
        let mut buf = [0u8; 16];
        let err = client
            .read(&mut buf, Some(Duration::from_millis(20)))
            .unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "got {err:?}"
        );
        // A zero timeout reports expiry without a syscall.
        let err = client.read(&mut buf, Some(Duration::ZERO)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        client.write_all(b"echo").unwrap();
        let n = client.read(&mut buf, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(&buf[..n], b"echo");
        assert!(!client.peer_addr().is_empty());
        client.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn manual_clock_sleep_advances_instantly() {
        let clock = ManualClock::new();
        let before = std::time::Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(before.elapsed() < Duration::from_secs(1), "no real sleep");
        assert_eq!(clock.monotonic(), Duration::from_secs(3600));
    }

    #[test]
    fn parts_env_composes() {
        let env = PartsEnv::new(Arc::new(RealEnv::new()), Arc::new(ManualClock::new()), 42);
        assert_eq!(env.clock().monotonic(), Duration::ZERO);
        let a = env.rng_u64();
        let env2 = PartsEnv::new(Arc::new(RealEnv::new()), Arc::new(ManualClock::new()), 42);
        assert_eq!(a, env2.rng_u64(), "same seed, same stream");
    }
}
