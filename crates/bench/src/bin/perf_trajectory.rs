//! Perf-trajectory capture: measures the trail-based homomorphism engine
//! against the preserved pre-rewrite reference engine **in the same run**,
//! and writes the result to `BENCH_pr2.json`.
//!
//! Both engines execute identical workloads drawn from the hom-heavy parts
//! of the `table1_cq` and `size_families` criterion benches (exact
//! k-colorability verification of Thm. 3.1, prime-cycle existence of
//! Thm. 3.40), so the recorded speedups are relative to a baseline compiled
//! with the same toolchain and flags on the same machine — not to a stale
//! number from another environment.
//!
//! Usage:
//! ```text
//! perf_trajectory [--quick] [--out PATH]   # run and write the JSON capture
//! perf_trajectory --check PATH             # validate an existing capture
//! ```
//! `--check` exits non-zero if the file is missing or malformed; CI uses it
//! as the bench-smoke gate.

use cqfit_data::{Example, LabeledExamples};
use cqfit_gen::{exact_colorability, prime_cycles_family, symmetric_clique};
use cqfit_hom::{product_of, reference, HomConfig, HomSearchStats};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapping the system allocator, used to *measure*
/// (not estimate) the per-search allocation counts of the two engines: the
/// reference engine clones the candidate vector at every branch node, the
/// trail engine must stay allocation-free in steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations performed by one invocation of `f`.
fn count_allocs(f: &dyn Fn()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One measured case: a name plus the two engine closures.
struct Case {
    name: String,
    new_engine: Box<dyn Fn()>,
    baseline: Box<dyn Fn()>,
}

/// Result of one measured case.
struct CaseResult {
    name: String,
    baseline_median_ns: u128,
    new_median_ns: u128,
    speedup: f64,
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn sample_ns(f: &dyn Fn()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos()
}

fn run_cases(cases: Vec<Case>, repeats: usize) -> Vec<CaseResult> {
    cases
        .into_iter()
        .map(|c| {
            // Warm both engines, then interleave the samples so slow drift of
            // the machine (other processes, frequency scaling) biases neither
            // side.
            c.baseline.as_ref()();
            c.new_engine.as_ref()();
            let mut base_samples = Vec::with_capacity(repeats);
            let mut new_samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                base_samples.push(sample_ns(c.baseline.as_ref()));
                new_samples.push(sample_ns(c.new_engine.as_ref()));
            }
            let baseline_median_ns = median(base_samples);
            let new_median_ns = median(new_samples);
            let speedup = baseline_median_ns as f64 / new_median_ns.max(1) as f64;
            eprintln!(
                "  {:<28} baseline {:>12} ns   new {:>12} ns   speedup {:.2}x",
                c.name, baseline_median_ns, new_median_ns, speedup
            );
            CaseResult {
                name: c.name,
                baseline_median_ns,
                new_median_ns,
                speedup,
            }
        })
        .collect()
}

/// A `hom_exists`-style check on both engines (arc consistency on).
fn hom_case(name: &str, src: Example, dst: Example) -> Case {
    let (s1, d1) = (src.clone(), dst.clone());
    let (s2, d2) = (src, dst);
    let config = HomConfig::default();
    let config2 = config.clone();
    Case {
        name: name.to_string(),
        new_engine: Box::new(move || {
            let mut stats = HomSearchStats::default();
            black_box(cqfit_hom::find_homomorphism_with(&s1, &d1, &config, &mut stats).unwrap());
        }),
        baseline: Box::new(move || {
            let mut stats = HomSearchStats::default();
            black_box(reference::find_homomorphism_with(&s2, &d2, &config2, &mut stats).unwrap());
        }),
    }
}

/// End-to-end CQ fitting existence (Prop. 3.3): the new path goes through
/// `cqfit::cq::fitting_exists` (batched + trail engine); the baseline builds
/// the same product and runs the reference engine sequentially.
fn fitting_existence_case(name: &str, examples: LabeledExamples) -> Case {
    let e1 = examples.clone();
    let e2 = examples;
    Case {
        name: name.to_string(),
        new_engine: Box::new(move || {
            black_box(cqfit::cq::fitting_exists(&e1).unwrap());
        }),
        baseline: Box::new(move || {
            let schema = e2.schema().expect("non-empty examples").clone();
            let arity = e2.arity().expect("non-empty examples");
            let product = product_of(&schema, arity, e2.positives()).unwrap();
            let fits = product.is_data_example()
                && !e2
                    .negatives()
                    .iter()
                    .any(|n| reference::hom_exists(&product, n));
            black_box(fits);
        }),
    }
}

/// The hom-heavy kernels of the `table1_cq` bench: exact-k-colorability
/// verification (clique-to-clique searches) and prime-cycle existence.
fn table1_cases(quick: bool) -> Vec<Case> {
    let schema = cqfit_data::Schema::digraph();
    let mut cases = Vec::new();
    let ks: &[usize] = if quick { &[4] } else { &[4, 5] };
    for &k in ks {
        // Verification kernel of exact_colorability(k): does K_{k+1} map
        // into K_k?  (No: the hardest, most backtracking-heavy direction.)
        cases.push(hom_case(
            &format!("verify/k{}_to_k{}", k + 1, k),
            symmetric_clique(&schema, k + 1),
            symmetric_clique(&schema, k),
        ));
        // And the satisfiable direction against the positive example.
        let examples = exact_colorability(k);
        cases.push(hom_case(
            &format!("verify/k{}_to_pos", k + 1),
            symmetric_clique(&schema, k + 1),
            examples.positives()[0].clone(),
        ));
    }
    let ns: &[usize] = if quick { &[3] } else { &[3, 4] };
    for &n in ns {
        cases.push(fitting_existence_case(
            &format!("exists/prime_cycles_{n}"),
            prime_cycles_family(n),
        ));
    }
    cases
}

/// The hom-heavy kernels of the `size_families` bench (Thm. 3.40): the
/// product of the first n prime cycles is one huge directed cycle; checking
/// it against the negative 2-cycle is the inner loop of the most-specific
/// fitting construction.
fn size_family_cases(quick: bool) -> Vec<Case> {
    let mut cases = Vec::new();
    let ns: &[usize] = if quick { &[4] } else { &[4, 5] };
    for &n in ns {
        let examples = prime_cycles_family(n);
        let schema = examples.schema().expect("non-empty").clone();
        let arity = examples.arity().expect("non-empty");
        let product = product_of(&schema, arity, examples.positives()).unwrap();
        let negative = examples.negatives()[0].clone();
        cases.push(hom_case(
            &format!("product_c{}_to_c2", product.instance().active_domain_size()),
            product,
            negative,
        ));
    }
    // The same shape with a satisfiable target: C_{3·5·7} → C_3.
    let schema = cqfit_data::Schema::digraph();
    let c105 = cqfit_gen::directed_cycle(&schema, 105);
    let c3 = cqfit_gen::directed_cycle(&schema, 3);
    cases.push(hom_case("c105_to_c3", c105, c3));
    cases
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn bench_json(name: &str, results: &[CaseResult]) -> String {
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.3}}}",
                json_escape(&r.name),
                r.baseline_median_ns,
                r.new_median_ns,
                r.speedup
            )
        })
        .collect();
    let mut speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }}",
        json_escape(name),
        median_speedup,
        cases.join(",\n")
    )
}

/// Minimal structural validation of a capture file: required keys present,
/// braces balanced, every speedup parses as a positive float.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let balanced = |open: char, close: char| {
        text.chars().filter(|&c| c == open).count() == text.chars().filter(|&c| c == close).count()
    };
    if !balanced('{', '}') || !balanced('[', ']') {
        return Err(format!("{path}: unbalanced braces"));
    }
    for key in [
        "\"pr\"",
        "\"table1_cq\"",
        "\"size_families\"",
        "\"median_speedup\"",
        "\"cases\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing key {key}"));
        }
    }
    let mut speedups = 0usize;
    for chunk in text.split("\"speedup\":").skip(1) {
        let value: String = chunk
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("{path}: non-numeric speedup {value:?}"))?;
        if parsed <= 0.0 {
            return Err(format!("{path}: non-positive speedup {parsed}"));
        }
        speedups += 1;
    }
    if speedups == 0 {
        return Err(format!("{path}: no speedup entries"));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_pr2.json");
        match check(path) {
            Ok(()) => {
                eprintln!("{path}: ok");
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_pr2.json")
        .to_string();
    let repeats = if quick { 5 } else { 15 };

    eprintln!("table1_cq hom kernels ({repeats} samples/case):");
    let t1 = run_cases(table1_cases(quick), repeats);
    eprintln!("size_families hom kernels ({repeats} samples/case):");
    let sf = run_cases(size_family_cases(quick), repeats);

    // Allocation check (satellite of the trail rewrite): one representative
    // backtracking-heavy search, measured with the counting allocator.  The
    // reference engine clones the candidate vector at every branch node; the
    // trail engine must allocate only its setup structures.
    let schema = cqfit_data::Schema::digraph();
    let alloc_case = hom_case(
        "alloc/k6_to_k5",
        symmetric_clique(&schema, 6),
        symmetric_clique(&schema, 5),
    );
    let baseline_allocs = count_allocs(alloc_case.baseline.as_ref());
    let new_allocs = count_allocs(alloc_case.new_engine.as_ref());
    eprintln!(
        "alloc check (K6 → K5 search): baseline {baseline_allocs} heap allocations, new {new_allocs}"
    );

    let json = format!(
        "{{\n  \"pr\": 2,\n  \"description\": \"trail-based, index-accelerated hom engine vs pre-rewrite reference engine (same run, same build)\",\n  \"mode\": \"{}\",\n  \"alloc_check\": {{\"case\": \"k6_to_k5\", \"baseline_allocs\": {}, \"new_allocs\": {}}},\n  \"benches\": [\n{},\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        baseline_allocs,
        new_allocs,
        bench_json("table1_cq", &t1),
        bench_json("size_families", &sf)
    );
    std::fs::write(&out_path, &json).expect("write capture file");
    eprintln!("wrote {out_path}");
    check(&out_path).expect("self-check of the freshly written capture");
}
