//! Perf-trajectory capture: measures this repo's engine rewrites against
//! their preserved pre-rewrite reference implementations **in the same
//! run**, and writes the result to a `BENCH_pr*.json` capture file.
//!
//! Nine stages exist:
//!
//! * **pr10** (`--pr10`) — causal tracing (`cqfit-obs` spans + flight
//!   recorder): a serialized upper bound on the shipped tracing's cost
//!   on the group-committed append pass and the depth-32 pipelined
//!   burst — the full per-record tracing bundle (context derivations,
//!   clock reads, span annotations, ring pushes, slow-table checks)
//!   timed in a tight loop and charged with zero overlap against the
//!   measured hot-path cost (the acceptance target is < 2% on both);
//!   the flight recorder's per-span journal write cost (fsync-per-slot
//!   vs the shipped buffered default); and a live chrome-trace export
//!   check (pipelined burst → `TraceDump` over the wire → valid
//!   trace_event JSON with nested span pairs).  Writes
//!   `BENCH_pr10.json`.
//! * **pr9** (`--pr9`) — the observability layer (`cqfit-obs`): a
//!   serialized upper bound on the shipped instrumentation's cost on
//!   the two hot paths it rides — the path's full per-record accounting
//!   bundle (clock reads, histogram records, counter adds, gauge sets,
//!   span pushes) timed in a tight loop and charged with zero overlap
//!   against the measured per-record cost of the group-committed append
//!   pass and the depth-32 pipelined burst (the acceptance target is
//!   < 2% on both); plus the raw per-op cost of the atomic registry
//!   against a naive `Mutex<HashMap>` / store-every-sample metrics
//!   layer, with the registry side's heap allocations counted (must be
//!   zero).  Writes `BENCH_pr9.json`.
//! * **pr8** (`--pr8`) — group commit + pipelined server: durable
//!   append throughput (records/s, fsync'd) at increasing concurrent
//!   writer counts against an in-run single-writer fsync-per-record
//!   baseline (the pre-group-commit cost of the same records), and the
//!   per-request latency distribution (p50/p99) of the pipelined
//!   client at increasing pipeline depths against a live durable
//!   server, depth 1 as the in-run baseline.  Writes `BENCH_pr8.json`.
//! * **pr7** (`--pr7`) — the network seam (`cqfit_env::Net` +
//!   `cqfit-sim`'s phase N): coverage of the deterministic network-fault
//!   sweep (sessions, frame-boundary and mid-frame wire cuts), and the
//!   dispatch cost of routing the wire protocol's ping round-trip and
//!   pipelined append loop through `RealNet`'s `dyn NetConn` instead of
//!   `std::net::TcpStream` directly (identical loops against the same
//!   loopback line server; the acceptance target is < 2% overhead).
//!   Writes `BENCH_pr7.json`.
//! * **pr6** (`--pr6`) — the environment abstraction
//!   (`cqfit_env::Env` + `cqfit-sim`): coverage and throughput of a
//!   deterministic-simulation sweep (seeded executions/s, crash points
//!   explored), and the dispatch cost of routing the store's append and
//!   replay hot paths through `RealEnv`'s `dyn Fs` instead of calling
//!   `std::fs` directly (identical loops, same flush/fsync schedule; the
//!   acceptance target is < 2% overhead).  Writes `BENCH_pr6.json`.
//! * **pr5** (`--pr5`) — the durable-workspace store
//!   (`cqfit_store::Store` behind `cqfit_engine::Engine::with_store`):
//!   fixed-seed churn sessions (`cqfit_gen::churn_workload`) against a
//!   fsync'd write-ahead log, measuring **append** throughput
//!   (records/s, including the fsync), **cold-restore** latency and
//!   log-replay throughput (records/s) at several workspace sizes, the
//!   **compaction ratio** of a forced persist, with an in-run baseline
//!   that rebuilds the same state by re-running the session against a
//!   fresh storeless engine (what a crash without a WAL would cost in
//!   recomputation, ignoring the network).  Writes `BENCH_pr5.json`.
//! * **pr4** (default) — the session-based fitting engine
//!   (`cqfit_engine::Engine`): repeated query-by-example sessions against
//!   one cached engine, measuring requests/sec and cache hit rate **cold**
//!   (first run, empty hom-cache) vs **warm** (the same sessions repeated),
//!   with an in-run **uncached** engine as baseline.  The recorded speedup
//!   is warm-vs-cold.  Writes `BENCH_pr4.json`.
//! * **pr3** (`--pr3`) — the mask-based core engine (`cqfit_hom::core_of`)
//!   against the preserved greedy oracle (`cqfit_hom::core::reference`), on
//!   the Thm. 3.40 prime-cycle products (core-of-product speedups) and the
//!   Thm. 3.41 bitstring products plus padded/foldable instances (output
//!   size reductions).  Writes `BENCH_pr3.json`.
//! * **pr2** (`--pr2`) — the trail-based hom engine against the pre-rewrite
//!   clone-based engine (`cqfit_hom::reference`), reproducing
//!   `BENCH_pr2.json`.
//!
//! All sides of a stage execute identical workloads in the same run, so the
//! recorded speedups are relative to a baseline compiled with the same
//! toolchain and flags on the same machine — not to a stale number from
//! another environment.
//!
//! Usage:
//! ```text
//! perf_trajectory [--pr2|--pr3|--pr5|--pr6|--pr7|--pr8|--pr9|--pr10] [--quick] [--out PATH]  # run and write the capture
//! perf_trajectory --check PATH                                # validate a capture
//! ```
//! `--check` exits non-zero if the file is missing or malformed; CI uses it
//! as the bench-smoke gate for all committed captures.

use cqfit_data::{Example, LabeledExamples};
use cqfit_gen::{bitstring_family, directed_cycle, exact_colorability, primes, symmetric_clique};
use cqfit_hom::{product_of, reference, HomConfig, HomSearchStats};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapping the system allocator, used to *measure*
/// (not estimate) the per-search allocation counts of the two engines: the
/// reference engine clones the candidate vector at every branch node, the
/// trail engine must stay allocation-free in steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations performed by one invocation of `f`.
fn count_allocs(f: &dyn Fn()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One measured case: a name plus the two engine closures, and (for the
/// core stage) the input/output sizes of the minimization.
struct Case {
    name: String,
    new_engine: Box<dyn Fn()>,
    baseline: Box<dyn Fn()>,
    /// `(values_before, facts_before, values_after, facts_after)` of a core
    /// computation; `None` for plain hom cases.
    sizes: Option<(usize, usize, usize, usize)>,
}

/// Result of one measured case.
struct CaseResult {
    name: String,
    baseline_median_ns: u128,
    new_median_ns: u128,
    speedup: f64,
    sizes: Option<(usize, usize, usize, usize)>,
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn sample_ns(f: &dyn Fn()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos()
}

fn run_cases(cases: Vec<Case>, repeats: usize) -> Vec<CaseResult> {
    cases
        .into_iter()
        .map(|c| {
            // Warm both engines, then interleave the samples so slow drift of
            // the machine (other processes, frequency scaling) biases neither
            // side.
            c.baseline.as_ref()();
            c.new_engine.as_ref()();
            let mut base_samples = Vec::with_capacity(repeats);
            let mut new_samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                base_samples.push(sample_ns(c.baseline.as_ref()));
                new_samples.push(sample_ns(c.new_engine.as_ref()));
            }
            let baseline_median_ns = median(base_samples);
            let new_median_ns = median(new_samples);
            let speedup = baseline_median_ns as f64 / new_median_ns.max(1) as f64;
            eprintln!(
                "  {:<28} baseline {:>12} ns   new {:>12} ns   speedup {:.2}x",
                c.name, baseline_median_ns, new_median_ns, speedup
            );
            CaseResult {
                name: c.name,
                baseline_median_ns,
                new_median_ns,
                speedup,
                sizes: c.sizes,
            }
        })
        .collect()
}

/// A `hom_exists`-style check on both engines (arc consistency on).
fn hom_case(name: &str, src: Example, dst: Example) -> Case {
    let (s1, d1) = (src.clone(), dst.clone());
    let (s2, d2) = (src, dst);
    let config = HomConfig::default();
    let config2 = config.clone();
    Case {
        name: name.to_string(),
        new_engine: Box::new(move || {
            let mut stats = HomSearchStats::default();
            black_box(cqfit_hom::find_homomorphism_with(&s1, &d1, &config, &mut stats).unwrap());
        }),
        baseline: Box::new(move || {
            let mut stats = HomSearchStats::default();
            black_box(reference::find_homomorphism_with(&s2, &d2, &config2, &mut stats).unwrap());
        }),
        sizes: None,
    }
}

/// A core computation on both engines: the mask-based engine
/// (`cqfit_hom::core_of`) against the preserved greedy oracle
/// (`cqfit_hom::core::reference::core_of`), with the size reduction checked
/// for agreement and recorded.
fn core_case(name: &str, example: Example) -> Case {
    let new_core = cqfit_hom::core_of(&example);
    let ref_core = cqfit_hom::core::reference::core_of(&example);
    assert_eq!(
        (new_core.instance().num_values(), new_core.size()),
        (ref_core.instance().num_values(), ref_core.size()),
        "{name}: engines disagree on the core size"
    );
    assert!(
        cqfit_hom::hom_equivalent(&new_core, &ref_core),
        "{name}: engines disagree up to homomorphic equivalence"
    );
    let sizes = Some((
        example.instance().num_values(),
        example.size(),
        new_core.instance().num_values(),
        new_core.size(),
    ));
    let e1 = example.clone();
    let e2 = example;
    Case {
        name: name.to_string(),
        new_engine: Box::new(move || {
            black_box(cqfit_hom::core_of(&e1));
        }),
        baseline: Box::new(move || {
            black_box(cqfit_hom::core::reference::core_of(&e2));
        }),
        sizes,
    }
}

/// End-to-end CQ fitting existence (Prop. 3.3): the new path goes through
/// `cqfit::cq::fitting_exists` (batched + trail engine); the baseline builds
/// the same product and runs the reference engine sequentially.
fn fitting_existence_case(name: &str, examples: LabeledExamples) -> Case {
    let e1 = examples.clone();
    let e2 = examples;
    Case {
        name: name.to_string(),
        new_engine: Box::new(move || {
            black_box(cqfit::cq::fitting_exists(&e1).unwrap());
        }),
        baseline: Box::new(move || {
            let schema = e2.schema().expect("non-empty examples").clone();
            let arity = e2.arity().expect("non-empty examples");
            let product = product_of(&schema, arity, e2.positives()).unwrap();
            let fits = product.is_data_example()
                && !e2
                    .negatives()
                    .iter()
                    .any(|n| reference::hom_exists(&product, n));
            black_box(fits);
        }),
        sizes: None,
    }
}

/// The direct product of the directed cycles with the given lengths.
fn cycle_product(lengths: &[usize]) -> Example {
    let schema = cqfit_data::Schema::digraph();
    let cycles: Vec<Example> = lengths
        .iter()
        .map(|&len| directed_cycle(&schema, len))
        .collect();
    product_of(&schema, 0, &cycles).expect("same schema and arity")
}

/// The Thm. 3.40 core-of-product cases: the direct product of prime-length
/// directed cycles is one huge directed cycle, and the size claim of the
/// theorem is a claim about its core.  Verifying that the product *is* a
/// core is the hardest regime for a core engine (every retraction candidate
/// must be refuted).
fn core_product_cases(quick: bool) -> Vec<Case> {
    let ps = primes(4);
    let mut lens: Vec<Vec<usize>> = vec![vec![ps[1], ps[2]], vec![ps[2], ps[3]]];
    if !quick {
        lens.push(vec![ps[1], ps[2], ps[3]]);
    }
    lens.into_iter()
        .map(|lengths| {
            let product = cycle_product(&lengths);
            let total: usize = lengths.iter().product();
            core_case(&format!("core_product_c{total}"), product)
        })
        .collect()
}

/// The Thm. 3.41 / reduction cases: products of the bitstring positives, a
/// padded prime-cycle product (pendant path + isolated declared values, the
/// regression shape for the up-front isolated-value masking), and a
/// symmetric path that folds to a single edge (orbit folding).
fn core_reduction_cases(quick: bool) -> Vec<Case> {
    let mut cases = Vec::new();
    let ns: &[usize] = if quick { &[2] } else { &[2, 3] };
    for &n in ns {
        let fam = bitstring_family(n);
        let schema = fam.schema().expect("non-empty").clone();
        let product = product_of(&schema, 0, fam.positives()).unwrap();
        cases.push(core_case(&format!("bitstring_product_n{n}"), product));
    }
    // Padded prime-cycle product: C15 with a pendant directed path (folds
    // into the cycle) and isolated declared values (masked out up front).
    let product = cycle_product(&[3, 5]);
    let (mut inst, dist) = product.into_parts();
    let rel = inst.schema().rel("R").expect("digraph");
    let attach = cqfit_data::Value(0);
    let mut prev = attach;
    for k in 0..8 {
        let next = inst.add_value(format!("pad{k}"));
        inst.add_fact(rel, &[prev, next]).expect("path fact");
        prev = next;
    }
    for k in 0..6 {
        inst.add_value(format!("iso{k}"));
    }
    cases.push(core_case("padded_prime_product", Example::new(inst, dist)));
    // Symmetric path: folds to a single symmetric edge through repeated
    // orbit folding.
    let schema = cqfit_data::Schema::digraph();
    let mut inst = cqfit_data::Instance::new(schema);
    let sym_rel = inst.schema().rel("R").expect("digraph");
    let vs = inst.add_values("s", 14);
    for k in 0..13 {
        inst.add_fact(sym_rel, &[vs[k], vs[k + 1]]).expect("edge");
        inst.add_fact(sym_rel, &[vs[k + 1], vs[k]]).expect("edge");
    }
    cases.push(core_case("symmetric_path_fold", Example::boolean(inst)));
    cases
}

/// The hom-heavy kernels of the `table1_cq` bench: exact-k-colorability
/// verification (clique-to-clique searches) and prime-cycle existence.
fn table1_cases(quick: bool) -> Vec<Case> {
    let schema = cqfit_data::Schema::digraph();
    let mut cases = Vec::new();
    let ks: &[usize] = if quick { &[4] } else { &[4, 5] };
    for &k in ks {
        // Verification kernel of exact_colorability(k): does K_{k+1} map
        // into K_k?  (No: the hardest, most backtracking-heavy direction.)
        cases.push(hom_case(
            &format!("verify/k{}_to_k{}", k + 1, k),
            symmetric_clique(&schema, k + 1),
            symmetric_clique(&schema, k),
        ));
        // And the satisfiable direction against the positive example.
        let examples = exact_colorability(k);
        cases.push(hom_case(
            &format!("verify/k{}_to_pos", k + 1),
            symmetric_clique(&schema, k + 1),
            examples.positives()[0].clone(),
        ));
    }
    let ns: &[usize] = if quick { &[3] } else { &[3, 4] };
    for &n in ns {
        cases.push(fitting_existence_case(
            &format!("exists/prime_cycles_{n}"),
            cqfit_gen::prime_cycles_family(n),
        ));
    }
    cases
}

/// The hom-heavy kernels of the `size_families` bench (Thm. 3.40): the
/// product of the first n prime cycles is one huge directed cycle; checking
/// it against the negative 2-cycle is the inner loop of the most-specific
/// fitting construction.
fn size_family_cases(quick: bool) -> Vec<Case> {
    let mut cases = Vec::new();
    let ns: &[usize] = if quick { &[4] } else { &[4, 5] };
    for &n in ns {
        let examples = cqfit_gen::prime_cycles_family(n);
        let schema = examples.schema().expect("non-empty").clone();
        let arity = examples.arity().expect("non-empty");
        let product = product_of(&schema, arity, examples.positives()).unwrap();
        let negative = examples.negatives()[0].clone();
        cases.push(hom_case(
            &format!("product_c{}_to_c2", product.instance().active_domain_size()),
            product,
            negative,
        ));
    }
    // The same shape with a satisfiable target: C_{3·5·7} → C_3.
    let schema = cqfit_data::Schema::digraph();
    let c105 = directed_cycle(&schema, 105);
    let c3 = directed_cycle(&schema, 3);
    cases.push(hom_case("c105_to_c3", c105, c3));
    cases
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn bench_json(name: &str, results: &[CaseResult]) -> String {
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            let sizes = match r.sizes {
                Some((vb, fb, va, fa)) => format!(
                    ", \"values_before\": {vb}, \"facts_before\": {fb}, \"values_after\": {va}, \"facts_after\": {fa}"
                ),
                None => String::new(),
            };
            format!(
                "      {{\"case\": \"{}\", \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.3}{}}}",
                json_escape(&r.name),
                r.baseline_median_ns,
                r.new_median_ns,
                r.speedup,
                sizes
            )
        })
        .collect();
    let mut speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }}",
        json_escape(name),
        median_speedup,
        cases.join(",\n")
    )
}

/// Minimal structural validation of a capture file: required keys present,
/// braces balanced, every speedup parses as a positive float.  Works for
/// both the pr2 and pr3 capture shapes.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let balanced = |open: char, close: char| {
        text.chars().filter(|&c| c == open).count() == text.chars().filter(|&c| c == close).count()
    };
    if !balanced('{', '}') || !balanced('[', ']') {
        return Err(format!("{path}: unbalanced braces"));
    }
    for key in ["\"pr\"", "\"benches\"", "\"median_speedup\"", "\"cases\""] {
        if !text.contains(key) {
            return Err(format!("{path}: missing key {key}"));
        }
    }
    let mut speedups = 0usize;
    for chunk in text.split("\"speedup\":").skip(1) {
        let value: String = chunk
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("{path}: non-numeric speedup {value:?}"))?;
        if parsed <= 0.0 {
            return Err(format!("{path}: non-positive speedup {parsed}"));
        }
        speedups += 1;
    }
    if speedups == 0 {
        return Err(format!("{path}: no speedup entries"));
    }
    Ok(())
}

/// The pr2 stage: trail-based hom engine vs pre-rewrite reference engine.
fn run_pr2(quick: bool, repeats: usize) -> String {
    eprintln!("table1_cq hom kernels ({repeats} samples/case):");
    let t1 = run_cases(table1_cases(quick), repeats);
    eprintln!("size_families hom kernels ({repeats} samples/case):");
    let sf = run_cases(size_family_cases(quick), repeats);

    // Allocation check (satellite of the trail rewrite): one representative
    // backtracking-heavy search, measured with the counting allocator.  The
    // reference engine clones the candidate vector at every branch node; the
    // trail engine must allocate only its setup structures.
    let schema = cqfit_data::Schema::digraph();
    let alloc_case = hom_case(
        "alloc/k6_to_k5",
        symmetric_clique(&schema, 6),
        symmetric_clique(&schema, 5),
    );
    let baseline_allocs = count_allocs(alloc_case.baseline.as_ref());
    let new_allocs = count_allocs(alloc_case.new_engine.as_ref());
    eprintln!(
        "alloc check (K6 → K5 search): baseline {baseline_allocs} heap allocations, new {new_allocs}"
    );

    format!(
        "{{\n  \"pr\": 2,\n  \"description\": \"trail-based, index-accelerated hom engine vs pre-rewrite reference engine (same run, same build)\",\n  \"mode\": \"{}\",\n  \"alloc_check\": {{\"case\": \"k6_to_k5\", \"baseline_allocs\": {}, \"new_allocs\": {}}},\n  \"benches\": [\n{},\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        baseline_allocs,
        new_allocs,
        bench_json("table1_cq", &t1),
        bench_json("size_families", &sf)
    )
}

// ---------------------------------------------------------------------
// pr4: the session-based fitting engine, cold vs warm vs uncached.
// ---------------------------------------------------------------------

mod pr4 {
    use cqfit_data::{Example, LabeledExamples, Schema};
    use cqfit_engine::{
        Engine, EngineConfig, ExamplePayload, FitMode, Polarity, QueryClass, Request, Response,
    };
    use std::time::Instant;

    /// A request-stream template, instantiated per workspace-name prefix.
    type StreamFn = Box<dyn Fn(&str) -> Vec<Request>>;

    /// One engine-session workload template: a closure producing the
    /// request stream for a given workspace-name prefix.  The prefix
    /// varies between passes (workspaces are recreated per pass), while
    /// the *examples* are identical — exactly the repeated-session shape
    /// the hom-cache exists for.
    pub struct SessionCase {
        pub name: String,
        stream: StreamFn,
    }

    /// Result of one measured session case.
    pub struct SessionResult {
        pub name: String,
        pub requests: usize,
        pub cold_median_ns: u128,
        pub warm_median_ns: u128,
        pub uncached_median_ns: u128,
        pub speedup: f64,
        pub warm_hit_rate: f64,
    }

    fn create(ws: &str, schema: &Schema, arity: usize) -> Request {
        Request::CreateWorkspace {
            workspace: ws.to_string(),
            schema: schema.clone(),
            arity,
        }
    }

    fn add(ws: &str, polarity: Polarity, e: &Example) -> Request {
        Request::AddExample {
            workspace: ws.to_string(),
            polarity,
            example: ExamplePayload::Structured(e.clone()),
        }
    }

    fn fit(ws: &str, class: QueryClass, mode: FitMode) -> Request {
        Request::Fit {
            workspace: ws.to_string(),
            class,
            mode,
        }
    }

    fn exists(ws: &str, class: QueryClass) -> Request {
        Request::FittingExists {
            workspace: ws.to_string(),
            class,
        }
    }

    fn drop_ws(ws: &str) -> Request {
        Request::DropWorkspace {
            workspace: ws.to_string(),
        }
    }

    /// An interactive query-by-example session over directed cycles: the
    /// user adds prime cycles one at a time, re-fitting after each step;
    /// the minimized fitting is the core of the growing product.
    pub fn cycles_case(name: &str, lengths: Vec<usize>) -> SessionCase {
        let schema = Schema::digraph();
        let cycles: Vec<Example> = lengths
            .iter()
            .map(|&len| cqfit_gen::directed_cycle(&schema, len))
            .collect();
        let negative = cqfit_gen::directed_cycle(&schema, 2);
        SessionCase {
            name: name.to_string(),
            stream: Box::new(move |prefix| {
                let ws = format!("{prefix}_cycles");
                let mut reqs = vec![create(&ws, &schema, 0)];
                for cycle in &cycles {
                    reqs.push(add(&ws, Polarity::Positive, cycle));
                    reqs.push(fit(&ws, QueryClass::Cq, FitMode::Minimized));
                }
                reqs.push(add(&ws, Polarity::Negative, &negative));
                reqs.push(fit(&ws, QueryClass::Cq, FitMode::Minimized));
                reqs.push(exists(&ws, QueryClass::Ucq));
                reqs.push(fit(&ws, QueryClass::Ucq, FitMode::Minimized));
                reqs.push(drop_ws(&ws));
                reqs
            }),
        }
    }

    /// A session replaying a labeled-example family (colorability,
    /// bitstrings): add everything, then ask the full battery.
    pub fn family_case(name: &str, examples: LabeledExamples) -> SessionCase {
        let schema = examples.schema().expect("non-empty family").clone();
        let arity = examples.arity().expect("non-empty family");
        SessionCase {
            name: name.to_string(),
            stream: Box::new(move |prefix| {
                let ws = format!("{prefix}_family");
                let mut reqs = vec![create(&ws, &schema, arity)];
                for e in examples.positives() {
                    reqs.push(add(&ws, Polarity::Positive, e));
                }
                for e in examples.negatives() {
                    reqs.push(add(&ws, Polarity::Negative, e));
                }
                reqs.push(exists(&ws, QueryClass::Cq));
                reqs.push(fit(&ws, QueryClass::Cq, FitMode::Minimized));
                reqs.push(exists(&ws, QueryClass::Ucq));
                reqs.push(fit(&ws, QueryClass::Ucq, FitMode::Minimized));
                reqs.push(drop_ws(&ws));
                reqs
            }),
        }
    }

    /// Runs one stream, panicking on any error response (silent failures
    /// would turn the capture into a lie).
    fn run_stream(engine: &Engine, requests: &[Request]) {
        for request in requests {
            let response = engine.handle(request);
            if let Response::Error { message, .. } = response {
                panic!("engine workload request failed: {message}");
            }
        }
    }

    fn timed(engine: &Engine, requests: &[Request]) -> u128 {
        let t = Instant::now();
        run_stream(engine, requests);
        t.elapsed().as_nanos()
    }

    /// Measures one case: per repeat, a fresh cached engine runs the
    /// session cold (empty cache) and then warm (same session again,
    /// fresh workspace names, hot cache), and a fresh uncached engine
    /// runs it as the in-run baseline.
    pub fn run_case(case: &SessionCase, repeats: usize) -> SessionResult {
        let mut cold = Vec::with_capacity(repeats);
        let mut warm = Vec::with_capacity(repeats);
        let mut uncached = Vec::with_capacity(repeats);
        let mut requests = 0usize;
        // Hit/miss totals accumulate over all repeats, so the reported
        // rate aggregates the same runs the timing medians come from.
        let mut warm_hits = 0u64;
        let mut warm_misses = 0u64;
        for r in 0..repeats {
            let baseline = Engine::new(EngineConfig { caching: false });
            uncached.push(timed(&baseline, &(case.stream)(&format!("u{r}"))));
            let engine = Engine::new(EngineConfig { caching: true });
            let cold_stream = (case.stream)(&format!("c{r}"));
            requests = cold_stream.len();
            cold.push(timed(&engine, &cold_stream));
            let before = engine.cache().expect("caching enabled").stats();
            warm.push(timed(&engine, &(case.stream)(&format!("w{r}"))));
            let after = engine.cache().expect("caching enabled").stats();
            warm_hits += (after.hom_hits - before.hom_hits) + (after.core_hits - before.core_hits);
            warm_misses +=
                (after.hom_misses - before.hom_misses) + (after.core_misses - before.core_misses);
        }
        let warm_hit_rate = if warm_hits + warm_misses == 0 {
            0.0
        } else {
            warm_hits as f64 / (warm_hits + warm_misses) as f64
        };
        let cold_median_ns = super::median(cold);
        let warm_median_ns = super::median(warm);
        let uncached_median_ns = super::median(uncached);
        let speedup = cold_median_ns as f64 / warm_median_ns.max(1) as f64;
        let result = SessionResult {
            name: case.name.clone(),
            requests,
            cold_median_ns,
            warm_median_ns,
            uncached_median_ns,
            speedup,
            warm_hit_rate,
        };
        eprintln!(
            "  {:<24} cold {:>12} ns   warm {:>12} ns   uncached {:>12} ns   warm/cold {:.2}x   warm hit-rate {:.2}",
            result.name,
            result.cold_median_ns,
            result.warm_median_ns,
            result.uncached_median_ns,
            result.speedup,
            result.warm_hit_rate
        );
        result
    }

    /// Requests per second at a given per-stream median.
    pub fn rps(requests: usize, median_ns: u128) -> f64 {
        requests as f64 / (median_ns.max(1) as f64 / 1e9)
    }
}

/// The pr4 stage: repeated engine sessions, cold vs warm vs uncached.
fn run_pr4(quick: bool, repeats: usize) -> String {
    let mut cases = vec![
        pr4::cycles_case("qbe_cycles_c3_c5", vec![3, 5]),
        pr4::family_case("colorability_k3", cqfit_gen::exact_colorability(3)),
        pr4::family_case("bitstring_n2", cqfit_gen::bitstring_family(2)),
    ];
    if !quick {
        cases.push(pr4::cycles_case("qbe_cycles_c3_c5_c7", vec![3, 5, 7]));
        cases.push(pr4::family_case(
            "colorability_k4",
            cqfit_gen::exact_colorability(4),
        ));
        cases.push(pr4::family_case(
            "prime_cycles_4",
            cqfit_gen::prime_cycles_family(4),
        ));
    }
    eprintln!("engine session workloads ({repeats} repeats/case):");
    let results: Vec<pr4::SessionResult> = cases
        .iter()
        .map(|case| pr4::run_case(case, repeats))
        .collect();
    let case_jsons: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"requests\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"uncached_median_ns\": {}, \"speedup\": {:.3}, \"cold_requests_per_sec\": {:.1}, \"warm_requests_per_sec\": {:.1}, \"uncached_requests_per_sec\": {:.1}, \"warm_hit_rate\": {:.3}}}",
                json_escape(&r.name),
                r.requests,
                r.cold_median_ns,
                r.warm_median_ns,
                r.uncached_median_ns,
                r.speedup,
                pr4::rps(r.requests, r.cold_median_ns),
                pr4::rps(r.requests, r.warm_median_ns),
                pr4::rps(r.requests, r.uncached_median_ns),
                r.warm_hit_rate
            )
        })
        .collect();
    let mut speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];
    eprintln!("median warm-vs-cold speedup: {median_speedup:.2}x");
    format!(
        "{{\n  \"pr\": 4,\n  \"description\": \"session-based fitting engine: repeated QBE sessions, warm (hot hom-cache) vs cold (empty cache) on one engine, uncached engine as in-run baseline; baseline_median_ns = cold, new_median_ns = warm\",\n  \"mode\": \"{}\",\n  \"benches\": [\n    {{\n      \"name\": \"engine_sessions\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        median_speedup,
        case_jsons.join(",\n")
    )
}

// ---------------------------------------------------------------------
// pr5: the durable-workspace store — WAL append, replay, compaction.
// ---------------------------------------------------------------------

mod pr5 {
    use cqfit_engine::{Engine, EngineConfig, ExamplePayload, Polarity, Request, Response};
    use cqfit_gen::{churn_workload, resolve_churn, ChurnOp, RandomConfig, ResolvedChurnOp};
    use cqfit_store::{Store, StoreConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// A unique scratch directory per measurement (removed afterwards).
    fn scratch_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqfit_bench_pr5_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &std::path::Path, fsync: bool) -> Store {
        Store::open(StoreConfig {
            dir: dir.to_path_buf(),
            // No auto-compaction during the measured run: replay length
            // must equal the appended record count.
            compact_after: usize::MAX >> 1,
            fsync,
        })
        .expect("open bench store")
    }

    /// Drives one churn session against an engine, with ids resolved by
    /// the shared `cqfit_gen::resolve_churn` (the same resolver the
    /// recovery differential suite uses, so the bench measures exactly
    /// the workload the suite certifies).  Panics on any error response
    /// (a silent failure would fake the capture).
    fn run_churn(engine: &Engine, ws: &str, ops: &[ChurnOp]) {
        let polarity = |positive| {
            if positive {
                Polarity::Positive
            } else {
                Polarity::Negative
            }
        };
        for op in resolve_churn(ops, 0) {
            let request = match op {
                ResolvedChurnOp::Add { positive, example } => Request::AddExample {
                    workspace: ws.to_string(),
                    polarity: polarity(positive),
                    example: ExamplePayload::Structured(*example),
                },
                ResolvedChurnOp::Remove { positive, id } => Request::RemoveExample {
                    workspace: ws.to_string(),
                    polarity: polarity(positive),
                    id,
                },
            };
            let response = engine.handle(&request);
            match &response {
                Response::ExampleAdded { .. } | Response::ExampleRemoved { removed: true, .. } => {}
                other => panic!("churn request failed: {other:?}"),
            }
        }
    }

    fn create_request(ws: &str) -> Request {
        Request::CreateWorkspace {
            workspace: ws.to_string(),
            schema: cqfit_data::Schema::digraph().as_ref().clone(),
            arity: 0,
        }
    }

    /// Result of one measured churn-store case.
    pub struct StoreResult {
        pub name: String,
        pub records: u64,
        pub append_median_ns: u128,
        /// Cold restore replaying the full, uncompacted log.
        pub restore_median_ns: u128,
        /// Cold restore from the snapshot-compacted log of the same state.
        pub restore_compacted_ns: u128,
        /// Rebuilding the same state by re-running the session against a
        /// fresh storeless engine (context: what recomputation costs when
        /// the client is still around to resend everything).
        pub rerun_median_ns: u128,
        /// Full-log restore over compacted restore: what compaction buys
        /// on restart latency.
        pub speedup: f64,
        pub compaction_ratio: f64,
        pub live_examples: usize,
    }

    /// Measures one workload size: append (engine + WAL, fsync'd),
    /// cold-restore from the full log and from the compacted log, the
    /// forced-compaction ratio, and an in-run storeless-rerun context
    /// number.
    pub fn run_case(steps: usize, repeats: usize) -> StoreResult {
        let schema = cqfit_data::Schema::digraph();
        let cfg = RandomConfig {
            num_values: 4,
            density: 0.3,
            arity: 0,
            num_positive: 5,
            num_negative: 4,
            seed: 1105,
        };
        let ops = churn_workload(&schema, &cfg, steps);
        let mut append = Vec::with_capacity(repeats);
        let mut restore = Vec::with_capacity(repeats);
        let mut restore_compacted = Vec::with_capacity(repeats);
        let mut rerun = Vec::with_capacity(repeats);
        let mut records = 0u64;
        let mut compaction_ratio = 1.0f64;
        let mut live_examples = 0usize;
        for _ in 0..repeats {
            let dir = scratch_dir();
            // Append pass: durable engine, fsync on — what a live server
            // pays per acknowledged mutation.
            let (engine, _) = Engine::with_store(EngineConfig::default(), store_at(&dir, true))
                .expect("fresh durable engine");
            let t = Instant::now();
            assert!(engine.handle(&create_request("churn")).is_ok());
            run_churn(&engine, "churn", &ops);
            append.push(t.elapsed().as_nanos());
            records = match engine.handle(&Request::StoreInfo) {
                Response::StoreInfo { records, .. } => records,
                other => panic!("store_info failed: {other:?}"),
            };
            drop(engine); // simulated crash: no clean shutdown

            // Cold-restore pass: replay the log back into a workspace.
            let t = Instant::now();
            let (revived, report) =
                Engine::with_store(EngineConfig::default(), store_at(&dir, true))
                    .expect("recovery");
            restore.push(t.elapsed().as_nanos());
            assert_eq!(report.workspaces, 1, "workspace must survive");
            assert_eq!(report.records_replayed, records, "full log replayed");

            // In-run baseline: rebuild the same state by re-running the
            // session against a fresh storeless engine.
            let baseline = Engine::new(EngineConfig::default());
            let t = Instant::now();
            assert!(baseline.handle(&create_request("churn")).is_ok());
            run_churn(&baseline, "churn", &ops);
            rerun.push(t.elapsed().as_nanos());

            // The two engines agree on the surviving state.
            let info = |e: &Engine| match e.handle(&Request::WorkspaceInfo {
                workspace: "churn".into(),
            }) {
                Response::Info {
                    positives,
                    negatives,
                    revision,
                    ..
                } => (positives, negatives, revision),
                other => panic!("info failed: {other:?}"),
            };
            assert_eq!(info(&revived), info(&baseline), "restored state differs");
            live_examples = info(&revived).0 + info(&revived).1;

            // Forced compaction on the revived engine, then a second cold
            // restore from the compacted log of the *same* state — the
            // restart-latency win compaction exists for.
            match revived.handle(&Request::Persist) {
                Response::Persisted {
                    bytes_before,
                    bytes_after,
                    ..
                } => {
                    if bytes_after > 0 {
                        compaction_ratio = bytes_before as f64 / bytes_after as f64;
                    }
                }
                other => panic!("persist failed: {other:?}"),
            }
            drop(revived);
            let t = Instant::now();
            let (compacted, report) =
                Engine::with_store(EngineConfig::default(), store_at(&dir, true))
                    .expect("recovery from compacted log");
            restore_compacted.push(t.elapsed().as_nanos());
            assert_eq!(report.workspaces, 1);
            assert!(
                report.records_replayed < records,
                "compacted log must be shorter than the full log"
            );
            assert_eq!(info(&compacted), info(&baseline), "compacted state differs");
            drop(compacted);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let append_median_ns = super::median(append);
        let restore_median_ns = super::median(restore);
        let restore_compacted_ns = super::median(restore_compacted);
        let rerun_median_ns = super::median(rerun);
        let result = StoreResult {
            name: format!("churn_s{steps}"),
            records,
            append_median_ns,
            restore_median_ns,
            restore_compacted_ns,
            rerun_median_ns,
            speedup: restore_median_ns as f64 / restore_compacted_ns.max(1) as f64,
            compaction_ratio,
            live_examples,
        };
        eprintln!(
            "  {:<16} {:>5} records   append {:>11} ns ({:>8.0} rec/s)   restore {:>10} ns ({:>8.0} rec/s)   compacted-restore {:>10} ns   full/compacted {:.2}x   compaction {:.1}x",
            result.name,
            result.records,
            result.append_median_ns,
            rate(result.records, result.append_median_ns),
            result.restore_median_ns,
            rate(result.records, result.restore_median_ns),
            result.restore_compacted_ns,
            result.speedup,
            result.compaction_ratio
        );
        result
    }

    /// Records per second at a given total duration.
    pub fn rate(records: u64, total_ns: u128) -> f64 {
        records as f64 / (total_ns.max(1) as f64 / 1e9)
    }
}

/// The pr5 stage: WAL append / replay / compaction on churn workloads.
fn run_pr5(quick: bool) -> String {
    let (sizes, repeats): (&[usize], usize) = if quick {
        (&[50, 150], 3)
    } else {
        (&[100, 300, 800], 5)
    };
    eprintln!("store churn workloads ({repeats} repeats/case, fsync on):");
    let results: Vec<pr5::StoreResult> = sizes
        .iter()
        .map(|&steps| pr5::run_case(steps, repeats))
        .collect();
    let case_jsons: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"records\": {}, \"live_examples\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"append_median_ns\": {}, \"storeless_rerun_ns\": {}, \"speedup\": {:.3}, \"append_records_per_sec\": {:.1}, \"replay_records_per_sec\": {:.1}, \"cold_restore_ms\": {:.3}, \"compacted_restore_ms\": {:.3}, \"compaction_ratio\": {:.3}}}",
                json_escape(&r.name),
                r.records,
                r.live_examples,
                r.restore_median_ns,
                r.restore_compacted_ns,
                r.append_median_ns,
                r.rerun_median_ns,
                r.speedup,
                pr5::rate(r.records, r.append_median_ns),
                pr5::rate(r.records, r.restore_median_ns),
                r.restore_median_ns as f64 / 1e6,
                r.restore_compacted_ns as f64 / 1e6,
                r.compaction_ratio
            )
        })
        .collect();
    let mut speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];
    eprintln!("median full-log-vs-compacted cold-restore speedup: {median_speedup:.2}x");
    format!(
        "{{\n  \"pr\": 5,\n  \"description\": \"durable-workspace store: fsync'd WAL append throughput, cold-restore latency / log-replay throughput at several workspace sizes, and the snapshot-compaction ratio on fixed-seed churn workloads; baseline_median_ns = cold restore replaying the full log, new_median_ns = cold restore from the compacted log of the same state (the restart-latency win of compaction); storeless_rerun_ns is context\",\n  \"mode\": \"{}\",\n  \"benches\": [\n    {{\n      \"name\": \"store_churn\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        median_speedup,
        case_jsons.join(",\n")
    )
}

// ---------------------------------------------------------------------
// pr6: the environment abstraction — simulator throughput and the
// dispatch cost of routing the store's I/O through `dyn Fs`.
// ---------------------------------------------------------------------

mod pr6 {
    use cqfit_env::{Env, OpenMode, RealEnv};
    use cqfit_sim::{sweep, SimConfig};
    use std::io::Write as _;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    fn scratch_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqfit_bench_pr6_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench scratch dir");
        dir
    }

    /// Coverage and throughput of one simulation sweep.
    pub struct SimSummary {
        pub seeds: u64,
        pub executions: u64,
        pub crash_points: u64,
        pub boundary_cuts: u64,
        pub mid_record_cuts: u64,
        pub net_executions: u64,
        pub net_boundary_cuts: u64,
        pub net_mid_frame_cuts: u64,
        pub elapsed_ns: u128,
    }

    /// Runs the release-mode simulation sweep the capture records.
    /// Panics on an invariant failure — a capture must never be written
    /// over a failing simulator.
    pub fn run_sim(seeds: u64, cfg: &SimConfig) -> SimSummary {
        let started = Instant::now();
        let outcome = sweep(1, seeds, cfg);
        let elapsed_ns = started.elapsed().as_nanos();
        for (seed, message) in &outcome.failures {
            eprintln!("FAIL seed {seed}: {message}");
        }
        assert!(
            outcome.failures.is_empty(),
            "simulation sweep failed; not writing a capture"
        );
        SimSummary {
            seeds,
            executions: outcome.stats.executions,
            crash_points: outcome.stats.crash_points,
            boundary_cuts: outcome.stats.boundary_cuts,
            mid_record_cuts: outcome.stats.mid_record_cuts,
            net_executions: outcome.stats.net_executions,
            net_boundary_cuts: outcome.stats.net_boundary_cuts,
            net_mid_frame_cuts: outcome.stats.net_mid_frame_cuts,
            elapsed_ns,
        }
    }

    /// One dispatch-overhead measurement: the identical loop through
    /// `RealEnv`'s `dyn Fs` (`env_ns`) and through `std::fs` directly
    /// (`direct_ns`).
    pub struct DispatchResult {
        pub name: &'static str,
        pub direct_ns: u128,
        pub env_ns: u128,
        pub records: usize,
    }

    impl DispatchResult {
        /// Relative cost of trait dispatch, in percent (negative when
        /// the env path happened to measure faster).
        pub fn overhead_pct(&self) -> f64 {
            (self.env_ns as f64 - self.direct_ns as f64) / self.direct_ns.max(1) as f64 * 100.0
        }
    }

    // The two sides of each measurement are kept literally parallel:
    // same open flags, same write/flush/sync sequence per record, same
    // decode work per replay — the only difference is whether the calls
    // go through the `dyn Fs`/`dyn FsFile` vtables or straight into
    // `std::fs`.

    /// One append through the `dyn FsFile` vtable: the store's per-record
    /// sequence (write, flush, fsync).
    fn append_one_env(file: &mut Box<dyn cqfit_env::FsFile>, record: &[u8]) -> u128 {
        let started = Instant::now();
        file.write_all(record).expect("env write");
        file.flush().expect("env flush");
        file.sync_data().expect("env sync");
        started.elapsed().as_nanos()
    }

    /// The identical append straight into `std::fs::File`.
    fn append_one_direct(file: &mut std::fs::File, record: &[u8]) -> u128 {
        let started = Instant::now();
        file.write_all(record).expect("direct write");
        file.flush().expect("direct flush");
        file.sync_data().expect("direct sync");
        started.elapsed().as_nanos()
    }

    /// Appends `records` records on each side, alternating sides per
    /// record (and alternating who goes first), so fsync-latency drift —
    /// which wanders on a far coarser timescale than one record — hits
    /// both sides equally.  Returns `(direct_ns, env_ns)` totals.
    fn append_paired(env: &dyn Env, dir: &Path, record: &[u8], records: usize) -> (u128, u128) {
        let direct_path = dir.join("direct.wal");
        let env_path = dir.join("env.wal");
        let mut direct_file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&direct_path)
            .expect("direct open");
        let mut env_file = env
            .fs()
            .open(&env_path, OpenMode::CreateTruncate)
            .expect("env open");
        let (mut direct_ns, mut env_ns) = (0u128, 0u128);
        for i in 0..records {
            if i % 2 == 0 {
                direct_ns += append_one_direct(&mut direct_file, record);
                env_ns += append_one_env(&mut env_file, record);
            } else {
                env_ns += append_one_env(&mut env_file, record);
                direct_ns += append_one_direct(&mut direct_file, record);
            }
        }
        (direct_ns, env_ns)
    }

    // `inline(never)`: both replay loops must execute the *same* machine
    // code for the decode — inlined copies can optimize differently per
    // call site, which would fake a dispatch-overhead difference.
    #[inline(never)]
    fn decode(bytes: &[u8]) -> u64 {
        // Line-framing plus a byte fold stands in for record decoding:
        // identical work on both sides, cheap enough that the read call
        // itself stays visible in the measurement.
        bytes
            .split(|&b| b == b'\n')
            .map(|line| line.iter().map(|&b| b as u64).sum::<u64>())
            .sum()
    }

    /// Reads and decodes the log `rounds` times on each side, alternating
    /// per round like [`append_paired`].  Returns `(direct_ns, env_ns)`.
    fn replay_paired(env: &dyn Env, path: &Path, rounds: usize) -> (u128, u128) {
        let one_direct = |acc: &mut u64| {
            let started = Instant::now();
            *acc = acc.wrapping_add(decode(&std::fs::read(path).expect("direct read")));
            started.elapsed().as_nanos()
        };
        let one_env = |acc: &mut u64| {
            let started = Instant::now();
            *acc = acc.wrapping_add(decode(&env.fs().read(path).expect("env read")));
            started.elapsed().as_nanos()
        };
        let (mut direct_ns, mut env_ns) = (0u128, 0u128);
        let mut acc = 0u64;
        for i in 0..rounds {
            if i % 2 == 0 {
                direct_ns += one_direct(&mut acc);
                env_ns += one_env(&mut acc);
            } else {
                env_ns += one_env(&mut acc);
                direct_ns += one_direct(&mut acc);
            }
        }
        std::hint::black_box(acc);
        (direct_ns, env_ns)
    }

    /// Measures append and replay dispatch overhead.  Each repeat runs
    /// both sides back to back; the per-side median is compared.
    pub fn dispatch_overhead(records: usize, repeats: usize) -> Vec<DispatchResult> {
        let env = RealEnv::arc();
        let dir = scratch_dir();
        let record = b"{\"crc\":123456789,\"rec\":{\"kind\":\"add\",\"id\":42,\"positive\":true,\"example\":\"R(a,b) R(b,c) R(c,a)\"}}\n";

        // Per-chunk ratios of record-level-paired measurements; the
        // reported pair is the chunk with the median ratio (fsync
        // latency drifts over seconds — pairing cancels it, the median
        // drops the chunks where it didn't).
        let median_pair = |pairs: &mut Vec<(u128, u128)>| {
            pairs.sort_by(|a, b| {
                let ra = a.1 as f64 / a.0.max(1) as f64;
                let rb = b.1 as f64 / b.0.max(1) as f64;
                ra.partial_cmp(&rb).expect("finite ratios")
            });
            pairs[pairs.len() / 2]
        };

        let mut append_pairs: Vec<(u128, u128)> = (0..repeats)
            .map(|_| append_paired(env.as_ref(), &dir, record, records))
            .collect();

        let replay_path = dir.join("replay.wal");
        append_paired(env.as_ref(), &dir, record, records);
        std::fs::copy(dir.join("direct.wal"), &replay_path).expect("seed replay log");
        let rounds = 50;
        // One untimed warm-up read so neither side pays the cold cache.
        replay_paired(env.as_ref(), &replay_path, 1);
        let mut replay_pairs: Vec<(u128, u128)> = (0..repeats)
            .map(|_| replay_paired(env.as_ref(), &replay_path, rounds))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);

        let (append_direct_med, append_env_med) = median_pair(&mut append_pairs);
        let (replay_direct_med, replay_env_med) = median_pair(&mut replay_pairs);
        vec![
            DispatchResult {
                name: "append_fsync",
                direct_ns: append_direct_med,
                env_ns: append_env_med,
                records,
            },
            DispatchResult {
                name: "replay_decode",
                direct_ns: replay_direct_med,
                env_ns: replay_env_med,
                records: records * rounds,
            },
        ]
    }
}

/// The pr6 stage: simulation-sweep throughput plus the `RealEnv`
/// dispatch overhead on the store's hot paths.
fn run_pr6(quick: bool) -> String {
    // Many small paired chunks rather than a few large ones: fsync
    // latency drifts over seconds, and the median of per-chunk ratios is
    // what filters that drift out.
    let (seeds, sim_cfg, records, repeats) = if quick {
        (4u64, cqfit_sim::SimConfig::smoke(), 300usize, 5usize)
    } else {
        (16u64, cqfit_sim::SimConfig::default(), 800, 15)
    };
    eprintln!("simulation sweep ({seeds} seeds):");
    let sim = pr6::run_sim(seeds, &sim_cfg);
    let executions_per_sec = sim.executions as f64 / (sim.elapsed_ns.max(1) as f64 / 1e9);
    eprintln!(
        "  {} executions, {} crash/fault points, {:.0} executions/s",
        sim.executions, sim.crash_points, executions_per_sec
    );

    eprintln!("env dispatch overhead ({records} records, {repeats} repeats):");
    let dispatch = pr6::dispatch_overhead(records, repeats);
    for r in &dispatch {
        eprintln!(
            "  {}: direct {} ns, via env {} ns ({:+.3}%)",
            r.name,
            r.direct_ns,
            r.env_ns,
            r.overhead_pct()
        );
    }

    let case_jsons: Vec<String> = dispatch
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"records\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}, \"overhead_pct\": {:.4}}}",
                r.name,
                r.records,
                r.direct_ns,
                r.env_ns,
                r.direct_ns as f64 / r.env_ns.max(1) as f64,
                r.overhead_pct()
            )
        })
        .collect();
    let mut speedups: Vec<f64> = dispatch
        .iter()
        .map(|r| r.direct_ns as f64 / r.env_ns.max(1) as f64)
        .collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];

    format!(
        "{{\n  \"pr\": 6,\n  \"description\": \"environment abstraction: deterministic-simulation sweep coverage/throughput, and the cost of routing the store's append/replay hot paths through RealEnv's dyn Fs instead of std::fs directly (baseline_median_ns = direct std::fs, new_median_ns = via dyn Fs; speedup ~1.0 and overhead_pct < 2 are the acceptance targets)\",\n  \"mode\": \"{}\",\n  \"simulation\": {{\"seeds\": {}, \"executions\": {}, \"crash_points\": {}, \"boundary_cuts\": {}, \"mid_record_cuts\": {}, \"executions_per_sec\": {:.1}}},\n  \"benches\": [\n    {{\n      \"name\": \"env_dispatch\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        sim.seeds,
        sim.executions,
        sim.crash_points,
        sim.boundary_cuts,
        sim.mid_record_cuts,
        executions_per_sec,
        median_speedup,
        case_jsons.join(",\n")
    )
}

mod pr7 {
    use cqfit_env::{NetConn, RealEnv};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    // The two sides of each measurement are kept literally parallel: the
    // same bytes, the same write/read sequence against the same line
    // server — the only difference is whether the client calls go through
    // the `dyn Net`/`dyn NetConn` vtables (`RealNet`) or straight into
    // `std::net::TcpStream`.

    /// A tiny loopback line server: `ping` → `pong`; any other line
    /// increments a counter; `done` → the count (reset afterwards).
    /// Serves exactly two connections — the direct and the env client.
    fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bench server bind");
        let addr = listener
            .local_addr()
            .expect("bench server addr")
            .to_string();
        let handle = std::thread::spawn(move || {
            let mut conns = Vec::new();
            for _ in 0..2 {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                conns.push(std::thread::spawn(move || serve(stream)));
            }
            for conn in conns {
                let _ = conn.join();
            }
        });
        (addr, handle)
    }

    fn serve(stream: TcpStream) {
        let mut reader = BufReader::new(stream.try_clone().expect("bench server clone"));
        let mut writer = stream;
        let mut count: u64 = 0;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            match line.trim_end() {
                "ping" => {
                    if writer.write_all(b"pong\n").is_err() {
                        return;
                    }
                }
                "done" => {
                    let reply = format!("{count}\n");
                    count = 0;
                    if writer.write_all(reply.as_bytes()).is_err() {
                        return;
                    }
                }
                _ => count += 1,
            }
        }
    }

    fn read_reply_env(conn: &mut Box<dyn NetConn>, scratch: &mut [u8]) {
        let mut seen = 0usize;
        loop {
            let n = conn.read(&mut scratch[seen..], None).expect("env read");
            assert!(n > 0, "bench server closed the connection");
            seen += n;
            if scratch[..seen].contains(&b'\n') {
                return;
            }
        }
    }

    fn read_reply_direct(stream: &mut TcpStream, scratch: &mut [u8]) {
        let mut seen = 0usize;
        loop {
            let n = stream.read(&mut scratch[seen..]).expect("direct read");
            assert!(n > 0, "bench server closed the connection");
            seen += n;
            if scratch[..seen].contains(&b'\n') {
                return;
            }
        }
    }

    /// One request/response round trip through the `dyn NetConn` vtable.
    fn ping_once_env(conn: &mut Box<dyn NetConn>, scratch: &mut [u8]) -> u128 {
        let started = Instant::now();
        conn.write_all(b"ping\n").expect("env ping write");
        read_reply_env(conn, scratch);
        started.elapsed().as_nanos()
    }

    /// The identical round trip straight on `std::net::TcpStream`.
    fn ping_once_direct(stream: &mut TcpStream, scratch: &mut [u8]) -> u128 {
        let started = Instant::now();
        stream.write_all(b"ping\n").expect("direct ping write");
        read_reply_direct(stream, scratch);
        started.elapsed().as_nanos()
    }

    /// A pipelined append burst: `records` line frames written
    /// back-to-back with no intervening reads (the wire shape of a bulk
    /// `add_example` load), then one `done` round trip to bound the
    /// measurement by full delivery.
    fn burst_once_env(
        conn: &mut Box<dyn NetConn>,
        record: &[u8],
        records: usize,
        scratch: &mut [u8],
    ) -> u128 {
        let started = Instant::now();
        for _ in 0..records {
            conn.write_all(record).expect("env append write");
        }
        conn.write_all(b"done\n").expect("env done write");
        read_reply_env(conn, scratch);
        started.elapsed().as_nanos()
    }

    fn burst_once_direct(
        stream: &mut TcpStream,
        record: &[u8],
        records: usize,
        scratch: &mut [u8],
    ) -> u128 {
        let started = Instant::now();
        for _ in 0..records {
            stream.write_all(record).expect("direct append write");
        }
        stream.write_all(b"done\n").expect("direct done write");
        read_reply_direct(stream, scratch);
        started.elapsed().as_nanos()
    }

    /// Measures ping-round-trip and pipelined-append dispatch overhead.
    /// Both sides alternate per iteration (and alternate who goes first)
    /// inside each repeat chunk, and the reported pair is the chunk with
    /// the median env/direct ratio — scheduler and loopback-stack drift
    /// moves on a far coarser timescale than one round trip, so pairing
    /// cancels it and the median drops the chunks where it didn't.
    pub fn net_dispatch_overhead(
        rounds: usize,
        records: usize,
        repeats: usize,
    ) -> Vec<super::pr6::DispatchResult> {
        let env = RealEnv::arc();
        let (addr, server) = spawn_server();
        let mut direct = TcpStream::connect(&addr).expect("direct connect");
        let mut env_conn = env.net().connect(&addr).expect("env connect");
        let mut scratch = [0u8; 4096];
        let record: &[u8] =
            b"{\"op\":\"add_example\",\"workspace\":\"w\",\"polarity\":\"positive\",\"example\":\"R(a,b) R(b,c) R(c,a)\",\"request_id\":123456789}\n";

        // Warm-up: TCP slow start, the env side's read-timeout caching,
        // and both code paths' icache.
        for _ in 0..16 {
            ping_once_direct(&mut direct, &mut scratch);
            ping_once_env(&mut env_conn, &mut scratch);
        }

        let median_pair = |pairs: &mut Vec<(u128, u128)>| {
            pairs.sort_by(|a, b| {
                let ra = a.1 as f64 / a.0.max(1) as f64;
                let rb = b.1 as f64 / b.0.max(1) as f64;
                ra.partial_cmp(&rb).expect("finite ratios")
            });
            pairs[pairs.len() / 2]
        };

        let mut ping_pairs: Vec<(u128, u128)> = (0..repeats)
            .map(|_| {
                let (mut direct_ns, mut env_ns) = (0u128, 0u128);
                for i in 0..rounds {
                    if i % 2 == 0 {
                        direct_ns += ping_once_direct(&mut direct, &mut scratch);
                        env_ns += ping_once_env(&mut env_conn, &mut scratch);
                    } else {
                        env_ns += ping_once_env(&mut env_conn, &mut scratch);
                        direct_ns += ping_once_direct(&mut direct, &mut scratch);
                    }
                }
                (direct_ns, env_ns)
            })
            .collect();

        let mut burst_pairs: Vec<(u128, u128)> = (0..repeats)
            .map(|i| {
                if i % 2 == 0 {
                    let d = burst_once_direct(&mut direct, record, records, &mut scratch);
                    let e = burst_once_env(&mut env_conn, record, records, &mut scratch);
                    (d, e)
                } else {
                    let e = burst_once_env(&mut env_conn, record, records, &mut scratch);
                    let d = burst_once_direct(&mut direct, record, records, &mut scratch);
                    (d, e)
                }
            })
            .collect();

        drop(direct);
        let _ = env_conn.shutdown();
        drop(env_conn);
        let _ = server.join();

        let (ping_direct_med, ping_env_med) = median_pair(&mut ping_pairs);
        let (burst_direct_med, burst_env_med) = median_pair(&mut burst_pairs);
        vec![
            super::pr6::DispatchResult {
                name: "ping_round_trip",
                direct_ns: ping_direct_med,
                env_ns: ping_env_med,
                records: rounds,
            },
            super::pr6::DispatchResult {
                name: "pipelined_append",
                direct_ns: burst_direct_med,
                env_ns: burst_env_med,
                records,
            },
        ]
    }
}

/// The pr7 stage: network-phase simulation coverage plus the `RealNet`
/// dispatch overhead on the wire protocol's hot paths.
fn run_pr7(quick: bool) -> String {
    let (seeds, sim_cfg, rounds, records, repeats) = if quick {
        (
            4u64,
            cqfit_sim::SimConfig::smoke(),
            200usize,
            500usize,
            5usize,
        )
    } else {
        (16u64, cqfit_sim::SimConfig::default(), 1000, 4000, 15)
    };
    eprintln!("simulation sweep ({seeds} seeds), network phase:");
    let sim = pr6::run_sim(seeds, &sim_cfg);
    let sessions_per_sec = sim.net_executions as f64 / (sim.elapsed_ns.max(1) as f64 / 1e9);
    eprintln!(
        "  {} network sessions ({} boundary cuts, {} mid-frame cuts), {:.0} sessions/s \
         (sweep wall clock, all phases)",
        sim.net_executions, sim.net_boundary_cuts, sim.net_mid_frame_cuts, sessions_per_sec
    );

    eprintln!(
        "net dispatch overhead ({rounds} ping rounds, {records}-record bursts, {repeats} repeats):"
    );
    let dispatch = pr7::net_dispatch_overhead(rounds, records, repeats);
    for r in &dispatch {
        eprintln!(
            "  {}: direct {} ns, via env {} ns ({:+.3}%)",
            r.name,
            r.direct_ns,
            r.env_ns,
            r.overhead_pct()
        );
    }

    let case_jsons: Vec<String> = dispatch
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"records\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}, \"overhead_pct\": {:.4}}}",
                r.name,
                r.records,
                r.direct_ns,
                r.env_ns,
                r.direct_ns as f64 / r.env_ns.max(1) as f64,
                r.overhead_pct()
            )
        })
        .collect();
    let mut speedups: Vec<f64> = dispatch
        .iter()
        .map(|r| r.direct_ns as f64 / r.env_ns.max(1) as f64)
        .collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median_speedup = speedups[speedups.len() / 2];

    format!(
        "{{\n  \"pr\": 7,\n  \"description\": \"network seam: deterministic network-fault sweep coverage (frame-boundary and mid-frame wire cuts with an exactly-once resilient client), and the cost of routing the wire protocol's ping round-trip and pipelined append through RealNet's dyn NetConn instead of std::net directly (baseline_median_ns = direct TcpStream, new_median_ns = via dyn NetConn; speedup ~1.0 and overhead_pct < 2 are the acceptance targets)\",\n  \"mode\": \"{}\",\n  \"simulation\": {{\"seeds\": {}, \"net_executions\": {}, \"net_boundary_cuts\": {}, \"net_mid_frame_cuts\": {}, \"net_sessions_per_sec\": {:.1}}},\n  \"benches\": [\n    {{\n      \"name\": \"net_dispatch\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        sim.seeds,
        sim.net_executions,
        sim.net_boundary_cuts,
        sim.net_mid_frame_cuts,
        sessions_per_sec,
        median_speedup,
        case_jsons.join(",\n")
    )
}

// ---------------------------------------------------------------------
// pr8: group-committed durable appends and the pipelined server.
// ---------------------------------------------------------------------

mod pr8 {
    use cqfit_data::Schema;
    use cqfit_engine::{
        Client, Engine, EngineConfig, ExamplePayload, Polarity, Request, Response, Server,
    };
    use cqfit_store::{LogRecord, Store, StoreConfig};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Instant;

    fn scratch_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqfit_bench_pr8_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &Path) -> Store {
        Store::open(StoreConfig {
            dir: dir.to_path_buf(),
            // No auto-compaction: every measured append must hit the log.
            compact_after: usize::MAX >> 1,
            fsync: true,
        })
        .expect("open bench store")
    }

    fn record_for(id: u64, example: &cqfit_data::Example) -> LogRecord {
        LogRecord::AddExample {
            id,
            positive: !id.is_multiple_of(3),
            example: example.clone(),
            request_id: Some(id),
        }
    }

    /// Result of one writer-count case.
    pub struct GroupResult {
        pub writers: usize,
        pub records: u64,
        pub baseline_median_ns: u128,
        pub new_median_ns: u128,
        pub speedup: f64,
    }

    /// Measures one writer count: per repeat, a single-writer fsync-per-
    /// record pass (the pre-group-commit cost of the same records) and a
    /// `writers`-way concurrent pass, back to back; medians compared.
    pub fn run_group_case(writers: usize, total: usize, repeats: usize) -> GroupResult {
        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);
        let mut baseline = Vec::with_capacity(repeats);
        let mut new = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            baseline.push(timed_pass(1, total, &example));
            new.push(timed_pass(writers, total, &example));
        }
        let baseline_median_ns = super::median(baseline);
        let new_median_ns = super::median(new);
        let result = GroupResult {
            writers,
            records: total as u64,
            baseline_median_ns,
            new_median_ns,
            speedup: baseline_median_ns as f64 / new_median_ns.max(1) as f64,
        };
        eprintln!(
            "  writers {:>2}   {:>4} records   1-writer {:>11} ns ({:>8.0} rec/s)   group {:>11} ns ({:>8.0} rec/s)   speedup {:.2}x",
            result.writers,
            result.records,
            result.baseline_median_ns,
            super::pr5::rate(result.records, result.baseline_median_ns),
            result.new_median_ns,
            super::pr5::rate(result.records, result.new_median_ns),
            result.speedup
        );
        result
    }

    /// One durable-append pass: `writers` threads split `total` records
    /// over one workspace log, every append acked (durability covered by
    /// a group-commit sync).  Returns wall-clock ns from barrier release
    /// to the last ack, joins included.
    fn timed_pass(writers: usize, total: usize, example: &cqfit_data::Example) -> u128 {
        let dir = scratch_dir();
        let store = Arc::new(store_at(&dir));
        let schema = Schema::digraph();
        store
            .create_workspace("w", &schema, 0)
            .expect("bench workspace");
        let per_writer = total / writers;
        // Records are built outside the timed region: the measurement is
        // the durable append path, not example cloning/formatting.
        let streams: Vec<Vec<LogRecord>> = (0..writers)
            .map(|w| {
                (0..per_writer)
                    .map(|i| record_for((w * per_writer + i) as u64, example))
                    .collect()
            })
            .collect();
        let barrier = Arc::new(Barrier::new(writers + 1));
        let mut started = None;
        std::thread::scope(|scope| {
            for records in &streams {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for record in records {
                        store
                            .append("w", record, || unreachable!("no compaction in bench"))
                            .expect("bench append acked");
                    }
                });
            }
            started = Some(Instant::now());
            barrier.wait();
        });
        let t = started.expect("set before release").elapsed().as_nanos();
        store.sync_all().expect("bench shutdown sync");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        t
    }

    /// Result of one pipeline-depth case against the live server.
    pub struct DepthResult {
        pub depth: usize,
        pub requests: usize,
        pub p50_ns: u128,
        pub p99_ns: u128,
        pub mean_ns: u128,
    }

    fn percentile(sorted: &[u128], p: f64) -> u128 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    }

    /// Measures per-request latency at each pipeline depth against one
    /// live durable server: `batches` bursts of `depth` `add_example`
    /// requests through `Client::call_pipelined`, per-request latency
    /// taken as burst wall clock over depth.
    pub fn run_depth_cases(depths: &[usize], batches: usize) -> Vec<DepthResult> {
        let dir = scratch_dir();
        let (engine, _) = Engine::with_store(EngineConfig::default(), store_at(&dir))
            .expect("fresh durable engine");
        let engine = Arc::new(engine);
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bench server bind");
        let addr = server.local_addr().expect("bench server addr");
        let server = std::thread::spawn(move || server.run().expect("bench server run"));
        let mut client = Client::connect(&addr).expect("bench client connect");
        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);

        let mut results = Vec::new();
        for &depth in depths {
            let ws = format!("lat{depth}");
            let created = client
                .call(&Request::CreateWorkspace {
                    workspace: ws.clone(),
                    schema: schema.as_ref().clone(),
                    arity: 0,
                })
                .expect("bench create");
            assert!(created.is_ok(), "bench create failed: {created:?}");
            // Negative examples: a durable WAL append per request, but no
            // product extension — adding the same positive repeatedly
            // would grow the maintained product `Π E⁺` exponentially and
            // measure the hom engine instead of the pipeline.
            let burst: Vec<Request> = (0..depth)
                .map(|_| Request::AddExample {
                    workspace: ws.clone(),
                    polarity: Polarity::Negative,
                    example: ExamplePayload::Structured(example.clone()),
                })
                .collect();
            // Warm-up burst (connection, caches) — not measured.
            for r in client.call_pipelined(&burst).expect("warm-up burst") {
                assert!(r.is_ok(), "warm-up burst failed: {r:?}");
            }
            let mut lat = Vec::with_capacity(batches);
            for _ in 0..batches {
                let t = Instant::now();
                let replies = client.call_pipelined(&burst).expect("bench burst");
                let ns = t.elapsed().as_nanos();
                for r in &replies {
                    assert!(
                        matches!(r, Response::ExampleAdded { .. }),
                        "bench burst failed: {r:?}"
                    );
                }
                lat.push(ns / depth as u128);
            }
            lat.sort_unstable();
            let mean_ns = lat.iter().sum::<u128>() / lat.len() as u128;
            let result = DepthResult {
                depth,
                requests: depth * batches,
                p50_ns: percentile(&lat, 0.50),
                p99_ns: percentile(&lat, 0.99),
                mean_ns,
            };
            eprintln!(
                "  depth {:>2}   {:>5} requests   p50 {:>10} ns/req   p99 {:>10} ns/req   mean {:>10} ns/req",
                result.depth, result.requests, result.p50_ns, result.p99_ns, result.mean_ns
            );
            results.push(result);
        }
        let stopped = client.call(&Request::Shutdown).expect("bench shutdown");
        assert!(stopped.is_ok(), "bench shutdown failed: {stopped:?}");
        drop(client);
        server.join().expect("bench server thread");
        let _ = std::fs::remove_dir_all(&dir);
        results
    }
}

/// The pr8 stage: group-committed durable appends vs concurrent writers,
/// and the pipelined client's latency curve against a live server.
fn run_pr8(quick: bool, repeats: usize) -> String {
    let (writer_counts, total, depths, batches): (&[usize], usize, &[usize], usize) = if quick {
        (&[1, 8, 32], 256, &[1, 8, 32], 40)
    } else {
        (&[1, 2, 4, 8, 16, 32], 768, &[1, 4, 8, 16, 32], 150)
    };
    eprintln!(
        "group-committed durable appends ({total} records/pass, fsync on, {repeats} repeats/case):"
    );
    let group: Vec<pr8::GroupResult> = writer_counts
        .iter()
        .map(|&w| pr8::run_group_case(w, total, repeats))
        .collect();
    eprintln!("pipelined client latency vs depth ({batches} bursts/depth, durable server):");
    let depth_results = pr8::run_depth_cases(depths, batches);

    let group_jsons: Vec<String> = group
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"writers_{}\", \"writers\": {}, \"records\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.3}, \"append_records_per_sec\": {:.1}, \"baseline_records_per_sec\": {:.1}}}",
                r.writers,
                r.writers,
                r.records,
                r.baseline_median_ns,
                r.new_median_ns,
                r.speedup,
                pr5::rate(r.records, r.new_median_ns),
                pr5::rate(r.records, r.baseline_median_ns)
            )
        })
        .collect();
    let mut group_speedups: Vec<f64> = group.iter().map(|r| r.speedup).collect();
    group_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let group_median = group_speedups[group_speedups.len() / 2];
    eprintln!("median concurrent-vs-single-writer speedup: {group_median:.2}x");

    let depth1_mean = depth_results
        .first()
        .map(|r| r.mean_ns)
        .expect("at least one depth");
    let depth_jsons: Vec<String> = depth_results
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"depth_{}\", \"depth\": {}, \"requests\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, \"requests_per_sec\": {:.1}}}",
                r.depth,
                r.depth,
                r.requests,
                depth1_mean,
                r.mean_ns,
                depth1_mean as f64 / r.mean_ns.max(1) as f64,
                r.p50_ns,
                r.p99_ns,
                1e9 / r.mean_ns.max(1) as f64
            )
        })
        .collect();
    let mut depth_speedups: Vec<f64> = depth_results
        .iter()
        .map(|r| depth1_mean as f64 / r.mean_ns.max(1) as f64)
        .collect();
    depth_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let depth_median = depth_speedups[depth_speedups.len() / 2];

    format!(
        "{{\n  \"pr\": 8,\n  \"description\": \"group commit + pipelined server: durable (fsync'd) append throughput at increasing concurrent writer counts, single-writer fsync-per-record pass over the same records as in-run baseline (baseline_median_ns = 1 writer, new_median_ns = N writers); and the pipelined client's per-request latency (p50/p99) at increasing pipeline depths against a live durable server, depth 1 as in-run baseline\",\n  \"mode\": \"{}\",\n  \"benches\": [\n    {{\n      \"name\": \"group_commit_appends\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }},\n    {{\n      \"name\": \"pipeline_latency\",\n      \"median_speedup\": {:.3},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        group_median,
        group_jsons.join(",\n"),
        depth_median,
        depth_jsons.join(",\n")
    )
}

// ---------------------------------------------------------------------
// pr9: the observability layer's cost on the paths it instruments.
// ---------------------------------------------------------------------

mod pr9 {
    use cqfit_data::Schema;
    use cqfit_engine::{
        Client, Engine, EngineConfig, ExamplePayload, Polarity, Request, Response, Server,
    };
    use cqfit_env::{Env, RealEnv};
    use cqfit_obs::{Histogram, Registry, SpanRecord};
    use cqfit_store::{LogRecord, Store, StoreConfig};
    use std::collections::HashMap;
    use std::hint::black_box;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier, Mutex};
    use std::time::Instant;

    // The instrumentation is compiled in unconditionally (a metrics layer
    // that can be configured away is a metrics layer nobody trusts), so
    // "instrumented vs uninstrumented" cannot be toggled by a flag, and
    // the wall-clock delta of doubling it is unmeasurable: on these
    // paths a durable record costs tens of microseconds while its
    // accounting costs hundreds of nanoseconds, and run-to-run fsync
    // noise is +/-6% — an order of magnitude above the signal.  So each
    // case reports a *serialized upper bound* instead: the path's full
    // per-record instrumentation bundle (every clock read, histogram
    // record, counter add, gauge set, and span push, with per-batch work
    // charged per record) is timed in a tight loop, and charged with
    // zero overlap against the measured per-record hot-path cost.  The
    // shipped overhead cannot exceed that ratio: in reality the bundle
    // partly hides under the group-commit wait, and per-batch work is
    // paid once per batch, not once per record.

    fn scratch_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqfit_bench_pr9_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(env: Arc<dyn Env>, dir: &Path) -> Store {
        Store::open_with(
            StoreConfig {
                dir: dir.to_path_buf(),
                // No auto-compaction: every measured append must hit the log.
                compact_after: usize::MAX >> 1,
                fsync: true,
            },
            env,
        )
        .expect("open bench store")
    }

    fn record_for(id: u64, example: &cqfit_data::Example) -> LogRecord {
        LogRecord::AddExample {
            id,
            positive: !id.is_multiple_of(3),
            example: example.clone(),
            request_id: Some(id),
        }
    }

    /// Re-performs the WAL append path's accounting once more: the three
    /// clock reads and two latency records every append pays, plus the
    /// leader's per-batch flush accounting — charged here per *record*
    /// rather than per batch, a strict upper bound on the shipped cost.
    fn duplicate_append_accounting(registry: &Registry, env: &dyn Env) {
        let begun = env.clock().monotonic().as_nanos() as u64;
        let staged = env.clock().monotonic().as_nanos() as u64;
        let resolved = env.clock().monotonic().as_nanos() as u64;
        registry
            .store_append_ns
            .record(resolved.saturating_sub(begun));
        registry
            .store_commit_wait_ns
            .record(resolved.saturating_sub(staged));
        let flush_begun = env.clock().monotonic().as_nanos() as u64;
        let flush_ended = env.clock().monotonic().as_nanos() as u64;
        registry
            .store_fsync_ns
            .record(flush_ended.saturating_sub(flush_begun));
        registry.store_batch_records.record(1);
        registry.store_appends_acked.add(1);
    }

    /// Times `iters` runs of an instrumentation bundle and returns the
    /// median per-iteration cost over `repeats` loops.
    pub fn bundle_cost(iters: u64, repeats: usize, bundle: &dyn Fn()) -> u128 {
        bundle();
        let samples: Vec<u128> = (0..repeats)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    bundle();
                }
                t.elapsed().as_nanos() / iters as u128
            })
            .collect();
        super::median(samples)
    }

    /// One shipped (as-is) group-committed append pass, the pr8 shape:
    /// `writers` threads split `total` acked appends over one fsync'd
    /// workspace log.  Returns wall-clock ns from barrier release to the
    /// last ack.
    fn group_pass(writers: usize, total: usize, example: &cqfit_data::Example) -> u128 {
        let env = RealEnv::arc();
        let dir = scratch_dir();
        let store = Arc::new(store_at(env, &dir));
        let schema = Schema::digraph();
        store
            .create_workspace("w", &schema, 0)
            .expect("bench workspace");
        let per_writer = total / writers;
        let streams: Vec<Vec<LogRecord>> = (0..writers)
            .map(|w| {
                (0..per_writer)
                    .map(|i| record_for((w * per_writer + i) as u64, example))
                    .collect()
            })
            .collect();
        let barrier = Arc::new(Barrier::new(writers + 1));
        let mut started = None;
        std::thread::scope(|scope| {
            for records in &streams {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for record in records {
                        store
                            .append("w", record, || unreachable!("no compaction in bench"))
                            .expect("bench append acked");
                    }
                });
            }
            started = Some(Instant::now());
            barrier.wait();
        });
        let t = started.expect("set before release").elapsed().as_nanos();
        store.sync_all().expect("bench shutdown sync");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        t
    }

    /// Group-commit append instrumentation overhead, serialized upper
    /// bound: direct_ns = measured per-record cost of the shipped pass
    /// (median of `repeats` fresh passes), env_ns = that plus the
    /// tight-loop cost of the full per-append accounting bundle.
    pub fn group_overhead(
        writers: usize,
        total: usize,
        repeats: usize,
    ) -> super::pr6::DispatchResult {
        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);
        group_pass(writers, total, &example); // warm-up
        let passes: Vec<u128> = (0..repeats)
            .map(|_| group_pass(writers, total, &example))
            .collect();
        let per_record = super::median(passes) / total as u128;

        let env = RealEnv::arc();
        let registry = Registry::new();
        let instr = bundle_cost(100_000, 5, &|| {
            duplicate_append_accounting(&registry, env.as_ref());
        });
        super::pr6::DispatchResult {
            name: "group_commit_append",
            direct_ns: per_record,
            env_ns: per_record + instr,
            records: total,
        }
    }

    /// Re-performs everything the stack accounts for one pipelined
    /// durable request: the server's whole per-batch work (clock reads,
    /// depth gauge/histogram — charged per *request* here, another upper
    /// bound), the engine's request counter and fit-latency record, the
    /// request's WAL append accounting, and the server's wire-to-wire
    /// latency record plus a span push (string construction included —
    /// the shipped span pays for its allocations too).
    fn duplicate_request_accounting(registry: &Registry, env: &dyn Env, ws: &str, depth: usize) {
        let begun = env.clock().monotonic().as_nanos() as u64;
        let decoded = env.clock().monotonic().as_nanos() as u64;
        registry.server_batch_depth.record(depth as u64);
        registry.server_pipeline_depth.set(depth as i64);
        registry.server_pipeline_depth.set(0);
        let dispatched = env.clock().monotonic().as_nanos() as u64;
        registry.engine_requests.inc();
        let fit_begun = env.clock().monotonic().as_nanos() as u64;
        let fit_ended = env.clock().monotonic().as_nanos() as u64;
        registry
            .engine_fit_ns
            .record(fit_ended.saturating_sub(fit_begun));
        duplicate_append_accounting(registry, env);
        let replied = env.clock().monotonic().as_nanos() as u64;
        registry
            .server_request_ns
            .record(replied.saturating_sub(begun));
        registry.span(SpanRecord {
            op: "add_example".to_string(),
            workspace: Some(ws.to_string()),
            request_id: None,
            start_ns: begun,
            decoded_ns: decoded,
            dispatched_ns: dispatched,
            replied_ns: replied,
        });
    }

    /// Pipelined-request instrumentation overhead against a live durable
    /// server, serialized upper bound: direct_ns = measured per-request
    /// cost of a shipped depth-`depth` burst (median of `bursts`),
    /// env_ns = that plus the tight-loop cost of the full per-request
    /// accounting bundle.
    pub fn pipeline_overhead(depth: usize, bursts: usize) -> super::pr6::DispatchResult {
        let env = RealEnv::arc();
        let dir = scratch_dir();
        let store = store_at(Arc::clone(&env), &dir);
        let (engine, _) =
            Engine::with_store(EngineConfig::default(), store).expect("fresh durable engine");
        let engine = Arc::new(engine);
        let registry = Arc::clone(engine.registry());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bench server bind");
        let addr = server.local_addr().expect("bench server addr");
        let server = std::thread::spawn(move || server.run().expect("bench server run"));
        let mut client = Client::connect(&addr).expect("bench client connect");
        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);
        let ws = "obs";
        let created = client
            .call(&Request::CreateWorkspace {
                workspace: ws.to_string(),
                schema: schema.as_ref().clone(),
                arity: 0,
            })
            .expect("bench create");
        assert!(created.is_ok(), "bench create failed: {created:?}");
        // Negative examples, as in the pr8 latency bench: a durable WAL
        // append per request without growing the maintained product.
        let burst: Vec<Request> = (0..depth)
            .map(|_| Request::AddExample {
                workspace: ws.to_string(),
                polarity: Polarity::Negative,
                example: ExamplePayload::Structured(example.clone()),
            })
            .collect();
        for r in client.call_pipelined(&burst).expect("warm-up burst") {
            assert!(r.is_ok(), "warm-up burst failed: {r:?}");
        }

        let samples: Vec<u128> = (0..bursts)
            .map(|_| {
                let t = Instant::now();
                let replies = client.call_pipelined(&burst).expect("bench burst");
                let ns = t.elapsed().as_nanos();
                for r in &replies {
                    assert!(
                        matches!(r, Response::ExampleAdded { .. }),
                        "bench burst failed: {r:?}"
                    );
                }
                ns / depth as u128
            })
            .collect();
        let per_request = super::median(samples);

        let stopped = client.call(&Request::Shutdown).expect("bench shutdown");
        assert!(stopped.is_ok(), "bench shutdown failed: {stopped:?}");
        drop(client);
        server.join().expect("bench server thread");
        let _ = std::fs::remove_dir_all(&dir);

        let instr = bundle_cost(100_000, 5, &|| {
            duplicate_request_accounting(&registry, env.as_ref(), ws, depth);
        });
        super::pr6::DispatchResult {
            name: "pipelined_requests",
            direct_ns: per_request,
            env_ns: per_request + instr,
            records: depth * bursts,
        }
    }

    /// Result of one registry-op microbench: the atomic registry op
    /// against the naive locked alternative it displaces.
    pub struct OpResult {
        pub name: &'static str,
        pub ops: u64,
        pub naive_ns: u128,
        pub registry_ns: u128,
        /// Heap allocations performed by the whole registry-side loop
        /// (the hot path must stay allocation-free: this must be 0).
        pub registry_allocs: u64,
    }

    /// Per-op cost of a counter increment: atomic [`cqfit_obs::Counter`]
    /// vs the naive `Mutex<HashMap<name, u64>>` a quick metrics layer
    /// would reach for.
    pub fn counter_op_cost(ops: u64, repeats: usize) -> OpResult {
        let registry = Registry::new();
        let naive: Mutex<HashMap<&'static str, u64>> = Mutex::new(HashMap::new());
        naive
            .lock()
            .expect("naive map")
            .insert("engine_requests", 0);
        let registry_loop = || {
            for _ in 0..ops {
                black_box(&registry.engine_requests).inc();
            }
        };
        let naive_loop = || {
            for _ in 0..ops {
                *black_box(&naive)
                    .lock()
                    .expect("naive map")
                    .entry("engine_requests")
                    .or_insert(0) += 1;
            }
        };
        let (naive_ns, registry_ns) = paired_medians(repeats, &naive_loop, &registry_loop);
        let registry_allocs = super::count_allocs(&registry_loop);
        OpResult {
            name: "counter_inc",
            ops,
            naive_ns,
            registry_ns,
            registry_allocs,
        }
    }

    /// Per-op cost of a latency sample: fixed-bucket log₂
    /// [`cqfit_obs::Histogram`] vs the naive store-every-sample
    /// `Mutex<Vec<u64>>` (sort at scrape time) alternative.
    pub fn histogram_op_cost(ops: u64, repeats: usize) -> OpResult {
        let histogram = Histogram::default();
        let naive: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let registry_loop = || {
            for i in 0..ops {
                black_box(&histogram).record(i.wrapping_mul(0x9E37_79B9) & 0xFFFF);
            }
        };
        let naive_loop = || {
            let mut samples = black_box(&naive).lock().expect("naive samples");
            samples.clear();
            samples.shrink_to_fit();
            drop(samples);
            for i in 0..ops {
                black_box(&naive)
                    .lock()
                    .expect("naive samples")
                    .push(i.wrapping_mul(0x9E37_79B9) & 0xFFFF);
            }
        };
        let (naive_ns, registry_ns) = paired_medians(repeats, &naive_loop, &registry_loop);
        let registry_allocs = super::count_allocs(&registry_loop);
        OpResult {
            name: "histogram_record",
            ops,
            naive_ns,
            registry_ns,
            registry_allocs,
        }
    }

    /// Times `repeats` alternating (naive, registry) loop pairs and
    /// returns the per-side medians.
    fn paired_medians(repeats: usize, naive: &dyn Fn(), registry: &dyn Fn()) -> (u128, u128) {
        naive();
        registry();
        let mut naive_ns = Vec::with_capacity(repeats);
        let mut registry_ns = Vec::with_capacity(repeats);
        for i in 0..repeats {
            if i % 2 == 0 {
                naive_ns.push(timed(naive));
                registry_ns.push(timed(registry));
            } else {
                registry_ns.push(timed(registry));
                naive_ns.push(timed(naive));
            }
        }
        (super::median(naive_ns), super::median(registry_ns))
    }

    fn timed(f: &dyn Fn()) -> u128 {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos()
    }
}

mod pr10 {
    use cqfit_data::Schema;
    use cqfit_engine::{
        Client, Engine, EngineConfig, ExamplePayload, Polarity, Request, Response, Server,
    };
    use cqfit_env::RealEnv;
    use cqfit_obs::{
        render_chrome_trace, FlightRecorder, Registry, TraceContext, TraceSpan, Tracer,
    };
    use cqfit_store::{LogRecord, Store, StoreConfig};
    use std::hint::black_box;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Instant;

    // Same stance as pr9: tracing is compiled in unconditionally, its
    // real marginal cost hides under the group-commit wait and is an
    // order of magnitude below fsync noise, so each hot-path case
    // reports a serialized upper bound — the full per-record tracing
    // bundle (context derivations, clock reads, annotation allocations,
    // ring pushes, slow-table checks, per-batch spans charged per
    // record) timed in a tight loop and charged with zero overlap
    // against the measured hot-path cost, which itself already carries
    // the shipped tracing.

    fn scratch_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqfit_bench_pr10_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &Path) -> Store {
        Store::open_with(
            StoreConfig {
                dir: dir.to_path_buf(),
                // No auto-compaction: every measured append must hit the log.
                compact_after: usize::MAX >> 1,
                fsync: true,
            },
            RealEnv::arc(),
        )
        .expect("open bench store")
    }

    /// Re-performs exactly the per-record span work a traced WAL append
    /// adds over the untraced path: the append's child context plus the
    /// `store.commit_wait` and `store.append` spans with their batch
    /// annotation.
    fn duplicate_record_tracing(tracer: &Tracer, parent: &TraceContext) {
        let append_ctx = tracer.child_context(parent);
        let wait = tracer.start_at(tracer.child_context(&append_ctx), "store.commit_wait", 1);
        black_box(wait.finish_at(tracer, 2));
        let mut append = tracer.start_at(append_ctx, "store.append", 1);
        append.annotate("batch", 7u64.to_string());
        black_box(append.finish_at(tracer, 2));
    }

    /// Re-performs the batch leader's span work: one `store.fsync` span
    /// per group-commit flush.
    fn duplicate_batch_tracing(tracer: &Tracer, parent: &TraceContext) {
        let mut fsync = tracer.start_at(tracer.child_context(parent), "store.fsync", 1);
        fsync.annotate("batch", 7u64.to_string());
        fsync.annotate("records", 32u64.to_string());
        black_box(fsync.finish_at(tracer, 2));
    }

    /// Re-performs the wire path's whole per-request tracing once more:
    /// the client's request and attempt spans, the hex round-trip the
    /// frame carries (render on the client, parse on the server), the
    /// server request span with its annotations, the engine handle
    /// span, the full traced-append bundle, and the slow-table check on
    /// the finished server span.
    fn duplicate_request_tracing(tracer: &Tracer, registry: &Registry) {
        let root = tracer.root_context();
        let mut request = tracer.start(root, "client.request");
        request.annotate("op", "add_example");
        let attempt = tracer.start(tracer.child_context(&request.context()), "client.attempt");
        let request_ctx = attempt.context();
        black_box(
            TraceContext::parse_trace_id(&request_ctx.trace_id_hex())
                .expect("bench trace id round-trips"),
        );
        black_box(
            TraceContext::parse_span_id(&request_ctx.span_id_hex())
                .expect("bench span id round-trips"),
        );
        let mut server = tracer.start(tracer.child_context(&request_ctx), "server.request");
        server.annotate("op", "add_example");
        server.annotate("workspace", "obs".to_string());
        let mut handle = tracer.start(tracer.child_context(&server.context()), "engine.handle");
        handle.annotate("op", "add_example");
        // The whole traced-append bundle, the leader's per-batch fsync
        // span included — charged per request, an upper bound.
        duplicate_record_tracing(tracer, &handle.context());
        duplicate_batch_tracing(tracer, &handle.context());
        black_box(handle.finish(tracer));
        let finished = server.finish(tracer);
        registry.slow.record(&finished);
        black_box(attempt.finish(tracer));
        black_box(request.finish(tracer));
    }

    /// One shipped untraced group-committed append pass (the pr9
    /// shape: `writers` threads split `total` acked appends over one
    /// fsync'd workspace log), also reporting how many group-commit
    /// flushes the pass performed.  Returns (wall ns, flushes).
    fn group_pass(writers: usize, total: usize, example: &cqfit_data::Example) -> (u128, u64) {
        let dir = scratch_dir();
        let store = Arc::new(store_at(&dir));
        let schema = Schema::digraph();
        store
            .create_workspace("w", &schema, 0)
            .expect("bench workspace");
        let per_writer = total / writers;
        let streams: Vec<Vec<LogRecord>> = (0..writers)
            .map(|w| {
                (0..per_writer)
                    .map(|i| {
                        let id = (w * per_writer + i) as u64;
                        LogRecord::AddExample {
                            id,
                            positive: !id.is_multiple_of(3),
                            example: example.clone(),
                            request_id: Some(id),
                        }
                    })
                    .collect()
            })
            .collect();
        let barrier = Arc::new(Barrier::new(writers + 1));
        let mut started = None;
        std::thread::scope(|scope| {
            for records in &streams {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for record in records {
                        store
                            .append("w", record, || unreachable!("no compaction in bench"))
                            .expect("bench append acked");
                    }
                });
            }
            started = Some(Instant::now());
            barrier.wait();
        });
        let t = started.expect("set before release").elapsed().as_nanos();
        let flushes = store.registry().store_fsync_ns.snapshot().count;
        store.sync_all().expect("bench shutdown sync");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        (t, flushes)
    }

    /// Serialized upper bound on the tracing cost of the two durable
    /// hot paths.  direct_ns = measured per-record (per-request) cost
    /// of the shipped pass; env_ns adds the tight-loop cost of the full
    /// tracing bundle with zero overlap.  The group case charges the
    /// leader's per-flush span at the pass's *measured* flush rate (the
    /// rate the shipped code pays) — the worst observed rate across
    /// passes; the pipelined case, whose measured path already carries
    /// the shipped tracing, charges the whole bundle per request on
    /// top, flush span included.
    pub fn tracing_overhead(
        writers: usize,
        total: usize,
        pass_repeats: usize,
        depth: usize,
        bursts: usize,
    ) -> Vec<super::pr6::DispatchResult> {
        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);
        group_pass(writers, total, &example); // warm-up
        let passes: Vec<(u128, u64)> = (0..pass_repeats)
            .map(|_| group_pass(writers, total, &example))
            .collect();
        let group_base = super::median(passes.iter().map(|p| p.0).collect()) / total as u128;
        let max_flushes = passes.iter().map(|p| p.1).max().expect("at least one pass");

        let pipeline_base = super::pr9::pipeline_overhead(depth, bursts).direct_ns;

        let registry = Arc::new(Registry::new());
        let tracer = Tracer::new(RealEnv::arc(), Arc::clone(&registry));
        let parent = tracer.root_context();
        let record_bundle = super::pr9::bundle_cost(100_000, 5, &|| {
            duplicate_record_tracing(&tracer, &parent);
        });
        let batch_bundle = super::pr9::bundle_cost(100_000, 5, &|| {
            duplicate_batch_tracing(&tracer, &parent);
        });
        let request_bundle = super::pr9::bundle_cost(50_000, 5, &|| {
            duplicate_request_tracing(&tracer, &registry);
        });
        let batch_share = (batch_bundle * u128::from(max_flushes)).div_ceil(total as u128);

        vec![
            super::pr6::DispatchResult {
                name: "group_commit_append_traced",
                direct_ns: group_base,
                env_ns: group_base + record_bundle + batch_share,
                records: total,
            },
            super::pr6::DispatchResult {
                name: "pipelined_request_traced",
                direct_ns: pipeline_base,
                env_ns: pipeline_base + request_bundle,
                records: depth * bursts,
            },
        ]
    }

    /// Per-span write cost of the flight-recorder journal, buffered vs
    /// fsync-per-slot.
    pub struct FrResult {
        pub buffered_spans: u64,
        pub fsync_spans: u64,
        pub buffered_ns: u128,
        pub fsync_ns: u128,
    }

    fn fr_test_span(i: u64) -> TraceSpan {
        TraceSpan {
            trace_id: 0xA1B2_C3D4 + u128::from(i),
            span_id: i + 1,
            parent_span_id: i,
            name: "server.request".to_string(),
            start_ns: i * 10_000,
            end_ns: i * 10_000 + 5_000,
            annotations: vec![
                ("op".to_string(), "add_example".to_string()),
                ("workspace".to_string(), "bench".to_string()),
                ("request_id".to_string(), i.to_string()),
            ],
        }
    }

    /// Times per-span [`FlightRecorder::record`] cost in both modes on
    /// a real filesystem journal (fresh journal per repeat, median over
    /// `repeats`).
    pub fn flight_recorder_cost(buffered_spans: u64, fsync_spans: u64, repeats: usize) -> FrResult {
        let per_span = |fsync: bool, spans: u64| -> u128 {
            let samples: Vec<u128> = (0..repeats)
                .map(|_| {
                    let dir = scratch_dir();
                    let (recorder, recovered) =
                        FlightRecorder::open(RealEnv::arc(), &dir, 1024, fsync)
                            .expect("open bench journal");
                    assert!(recovered.is_empty(), "fresh journal must recover empty");
                    let t = Instant::now();
                    for i in 0..spans {
                        recorder
                            .record(&fr_test_span(i))
                            .expect("record bench span");
                    }
                    let ns = t.elapsed().as_nanos() / u128::from(spans.max(1));
                    assert_eq!(recorder.dropped(), 0, "bench spans must fit a slot");
                    let _ = std::fs::remove_dir_all(&dir);
                    ns
                })
                .collect();
            super::median(samples)
        };
        FrResult {
            buffered_spans,
            fsync_spans,
            buffered_ns: per_span(false, buffered_spans),
            fsync_ns: per_span(true, fsync_spans),
        }
    }

    /// What the live export check observed.
    pub struct ExportSummary {
        pub depth: usize,
        pub events: usize,
        pub nested_pairs: usize,
    }

    /// Runs a depth-`depth` pipelined burst against a live durable
    /// traced server, dumps the server's trace ring over the wire, and
    /// asserts the chrome-trace rendering parses as JSON and contains
    /// at least one fully nested parent/child span pair.
    pub fn chrome_export(depth: usize) -> ExportSummary {
        let dir = scratch_dir();
        let store = store_at(&dir);
        let (engine, _) =
            Engine::with_store(EngineConfig::default(), store).expect("fresh durable engine");
        let server = Server::bind("127.0.0.1:0", Arc::new(engine)).expect("export server bind");
        let addr = server.local_addr().expect("export server addr");
        let server = std::thread::spawn(move || server.run().expect("export server run"));
        let mut client = Client::connect(&addr).expect("export client connect");

        let schema = Schema::digraph();
        let example = cqfit_gen::directed_cycle(&schema, 3);
        let created = client
            .call(&Request::CreateWorkspace {
                workspace: "obs".to_string(),
                schema: schema.as_ref().clone(),
                arity: 0,
            })
            .expect("export create");
        assert!(created.is_ok(), "export create failed: {created:?}");
        let burst: Vec<Request> = (0..depth)
            .map(|_| Request::AddExample {
                workspace: "obs".to_string(),
                polarity: Polarity::Negative,
                example: ExamplePayload::Structured(example.clone()),
            })
            .collect();
        for r in client.call_pipelined(&burst).expect("export burst") {
            assert!(r.is_ok(), "export burst failed: {r:?}");
        }
        let spans = match client.call(&Request::TraceDump).expect("export dump") {
            Response::Traces { spans } => spans,
            other => panic!("export dump returned {other:?}"),
        };
        let stopped = client.call(&Request::Shutdown).expect("export shutdown");
        assert!(stopped.is_ok(), "export shutdown failed: {stopped:?}");
        drop(client);
        server.join().expect("export server thread");
        let _ = std::fs::remove_dir_all(&dir);

        let rendered = render_chrome_trace(&spans);
        serde::json::Value::parse(&rendered).expect("chrome trace export must parse as JSON");
        let nested_pairs = spans
            .iter()
            .filter(|span| {
                span.parent_span_id != 0
                    && spans.iter().any(|parent| {
                        parent.trace_id == span.trace_id
                            && parent.span_id == span.parent_span_id
                            && parent.start_ns <= span.start_ns
                            && span.end_ns <= parent.end_ns
                    })
            })
            .count();
        assert!(
            nested_pairs >= 1,
            "pipelined burst export must contain a nested span pair ({} spans dumped)",
            spans.len()
        );
        ExportSummary {
            depth,
            events: spans.len(),
            nested_pairs,
        }
    }
}

/// The pr10 stage: causal tracing — a serialized upper bound on the
/// tracing cost riding the two durable hot paths, the flight recorder's
/// per-span write cost, and a live chrome-trace export validity check.
fn run_pr10(quick: bool) -> String {
    let (writers, total, pass_repeats, depth, bursts) = if quick {
        (8usize, 384usize, 5usize, 32usize, 40usize)
    } else {
        (8, 768, 9, 32, 120)
    };
    let (buffered_spans, fsync_spans, fr_repeats) = if quick {
        (4096u64, 48u64, 3usize)
    } else {
        (16384, 192, 5)
    };

    eprintln!(
        "tracing overhead, serialized upper bound ({writers} writers x {total} records; \
         {bursts} depth-{depth} bursts):"
    );
    let hot_paths = pr10::tracing_overhead(writers, total, pass_repeats, depth, bursts);
    for r in &hot_paths {
        eprintln!(
            "  {}: path {} ns/record, tracing bundle {} ns/record ({:+.3}%)",
            r.name,
            r.direct_ns,
            r.env_ns - r.direct_ns,
            r.overhead_pct()
        );
    }

    eprintln!(
        "flight recorder write cost ({buffered_spans} buffered spans vs {fsync_spans} fsync'd, \
         {fr_repeats} repeats):"
    );
    let fr = pr10::flight_recorder_cost(buffered_spans, fsync_spans, fr_repeats);
    eprintln!(
        "  journal_write_per_span: buffered {} ns/span, fsync'd {} ns/span ({:.1}x)",
        fr.buffered_ns,
        fr.fsync_ns,
        fr.fsync_ns as f64 / fr.buffered_ns.max(1) as f64
    );

    eprintln!("chrome-trace export of a depth-{depth} pipelined burst:");
    let export = pr10::chrome_export(depth);
    eprintln!(
        "  {} trace events, {} nested parent/child pairs — parsed as valid JSON",
        export.events, export.nested_pairs
    );

    let hot_jsons: Vec<String> = hot_paths
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"records\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}, \"overhead_pct\": {:.4}}}",
                r.name,
                r.records,
                r.direct_ns,
                r.env_ns,
                r.direct_ns as f64 / r.env_ns.max(1) as f64,
                r.overhead_pct()
            )
        })
        .collect();
    let mut hot_speedups: Vec<f64> = hot_paths
        .iter()
        .map(|r| r.direct_ns as f64 / r.env_ns.max(1) as f64)
        .collect();
    hot_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let hot_median = hot_speedups[hot_speedups.len() / 2];

    let fr_json = format!(
        "      {{\"case\": \"journal_write_per_span\", \"buffered_spans\": {}, \"fsync_spans\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}}}",
        fr.buffered_spans,
        fr.fsync_spans,
        fr.fsync_ns,
        fr.buffered_ns,
        fr.fsync_ns as f64 / fr.buffered_ns.max(1) as f64
    );
    let fr_speedup = fr.fsync_ns as f64 / fr.buffered_ns.max(1) as f64;

    format!(
        "{{\n  \"pr\": 10,\n  \"description\": \"causal tracing: serialized upper bound on the shipped cqfit-obs tracing cost of the group-committed durable append pass and the depth-32 pipelined request burst — the path's full per-record tracing bundle (context derivations, clock reads, span annotations, ring pushes, slow-table checks, per-batch spans charged per record) timed in a tight loop and charged with zero overlap against the measured hot-path cost, which already carries the shipped tracing (baseline_median_ns = per-record path, new_median_ns = path + bundle; the shipped overhead cannot exceed overhead_pct, and the acceptance target is overhead_pct < 2); plus the flight recorder's per-span journal write cost (baseline_median_ns = fsync-per-slot, new_median_ns = the shipped buffered default); chrome_export records a live pipelined burst dumped over the wire and rendered as chrome trace_event JSON that parsed and contained nested parent/child span pairs\",\n  \"mode\": \"{}\",\n  \"chrome_export\": {{\"depth\": {}, \"events\": {}, \"nested_pairs\": {}, \"valid_json\": true}},\n  \"benches\": [\n    {{\n      \"name\": \"tracing_overhead\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }},\n    {{\n      \"name\": \"flight_recorder\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        export.depth,
        export.events,
        export.nested_pairs,
        hot_median,
        hot_jsons.join(",\n"),
        fr_speedup,
        fr_json
    )
}

/// The pr9 stage: the observability layer's marginal cost on the
/// group-commit append and pipelined-request hot paths (doubled vs
/// shipped instrumentation), plus the raw registry-op microbenches.
fn run_pr9(quick: bool) -> String {
    let (writers, total, pass_repeats, depth, bursts, ops, op_repeats) = if quick {
        (
            8usize, 384usize, 5usize, 32usize, 40usize, 200_000u64, 7usize,
        )
    } else {
        (8, 768, 9, 32, 120, 2_000_000, 15)
    };

    eprintln!(
        "instrumentation overhead, serialized upper bound ({writers} writers x {total} records; \
         {bursts} depth-{depth} bursts):"
    );
    let hot_paths = vec![
        pr9::group_overhead(writers, total, pass_repeats),
        pr9::pipeline_overhead(depth, bursts),
    ];
    for r in &hot_paths {
        eprintln!(
            "  {}: path {} ns/record, accounting bundle {} ns/record ({:+.3}%)",
            r.name,
            r.direct_ns,
            r.env_ns - r.direct_ns,
            r.overhead_pct()
        );
    }

    eprintln!("registry op cost ({ops} ops/loop, {op_repeats} repeats):");
    let op_cases = vec![
        pr9::counter_op_cost(ops, op_repeats),
        pr9::histogram_op_cost(ops, op_repeats),
    ];
    for r in &op_cases {
        eprintln!(
            "  {}: naive {:.1} ns/op, registry {:.1} ns/op ({:.2}x), {} allocations in {} registry ops",
            r.name,
            r.naive_ns as f64 / r.ops.max(1) as f64,
            r.registry_ns as f64 / r.ops.max(1) as f64,
            r.naive_ns as f64 / r.registry_ns.max(1) as f64,
            r.registry_allocs,
            r.ops
        );
        assert_eq!(
            r.registry_allocs, 0,
            "{}: the registry hot path allocated",
            r.name
        );
    }

    let hot_jsons: Vec<String> = hot_paths
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"records\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}, \"overhead_pct\": {:.4}}}",
                r.name,
                r.records,
                r.direct_ns,
                r.env_ns,
                r.direct_ns as f64 / r.env_ns.max(1) as f64,
                r.overhead_pct()
            )
        })
        .collect();
    let mut hot_speedups: Vec<f64> = hot_paths
        .iter()
        .map(|r| r.direct_ns as f64 / r.env_ns.max(1) as f64)
        .collect();
    hot_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let hot_median = hot_speedups[hot_speedups.len() / 2];

    let op_jsons: Vec<String> = op_cases
        .iter()
        .map(|r| {
            format!(
                "      {{\"case\": \"{}\", \"ops\": {}, \"baseline_median_ns\": {}, \"new_median_ns\": {}, \"speedup\": {:.4}, \"naive_ns_per_op\": {:.2}, \"registry_ns_per_op\": {:.2}, \"registry_allocations\": {}}}",
                r.name,
                r.ops,
                r.naive_ns,
                r.registry_ns,
                r.naive_ns as f64 / r.registry_ns.max(1) as f64,
                r.naive_ns as f64 / r.ops.max(1) as f64,
                r.registry_ns as f64 / r.ops.max(1) as f64,
                r.registry_allocs
            )
        })
        .collect();
    let mut op_speedups: Vec<f64> = op_cases
        .iter()
        .map(|r| r.naive_ns as f64 / r.registry_ns.max(1) as f64)
        .collect();
    op_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let op_median = op_speedups[op_speedups.len() / 2];

    format!(
        "{{\n  \"pr\": 9,\n  \"description\": \"observability layer: serialized upper bound on the shipped cqfit-obs instrumentation cost of the group-committed durable append pass and the depth-32 pipelined request burst — the path's full per-record accounting bundle (every clock read, histogram record, counter add, gauge set, and span push, per-batch work charged per record) timed in a tight loop and charged with zero overlap against the measured per-record hot-path cost (baseline_median_ns = per-record path, new_median_ns = path + bundle; the shipped overhead cannot exceed overhead_pct, and the acceptance target is overhead_pct < 2); plus the raw per-op cost of the atomic registry against a naive Mutex<HashMap> counter / store-every-sample Mutex<Vec> histogram (baseline_median_ns = naive, new_median_ns = registry; registry_allocations must be 0)\",\n  \"mode\": \"{}\",\n  \"benches\": [\n    {{\n      \"name\": \"instrumentation_overhead\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }},\n    {{\n      \"name\": \"registry_op_cost\",\n      \"median_speedup\": {:.4},\n      \"cases\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        hot_median,
        hot_jsons.join(",\n"),
        op_median,
        op_jsons.join(",\n")
    )
}

/// The pr3 stage: mask-based core engine vs preserved greedy core oracle.
fn run_pr3(quick: bool, repeats: usize) -> String {
    eprintln!("core-of-product (Thm. 3.40) cases ({repeats} samples/case):");
    let products = run_cases(core_product_cases(quick), repeats);
    eprintln!("core reduction (Thm. 3.41 + padded/foldable) cases ({repeats} samples/case):");
    let reductions = run_cases(core_reduction_cases(quick), repeats);
    format!(
        "{{\n  \"pr\": 3,\n  \"description\": \"mask-based core engine (endomorphism sweep + orbit folding + batched retraction checks) vs preserved greedy core oracle (same run, same build)\",\n  \"mode\": \"{}\",\n  \"benches\": [\n{},\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        bench_json("core_product_thm3_40", &products),
        bench_json("core_reduction_thm3_41", &reductions)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_pr4.json");
        match check(path) {
            Ok(()) => {
                eprintln!("{path}: ok");
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let pr2 = args.iter().any(|a| a == "--pr2");
    let pr3 = args.iter().any(|a| a == "--pr3");
    let pr5 = args.iter().any(|a| a == "--pr5");
    let pr6 = args.iter().any(|a| a == "--pr6");
    let pr7 = args.iter().any(|a| a == "--pr7");
    let pr8 = args.iter().any(|a| a == "--pr8");
    let pr9 = args.iter().any(|a| a == "--pr9");
    let pr10 = args.iter().any(|a| a == "--pr10");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if pr2 {
            "BENCH_pr2.json"
        } else if pr3 {
            "BENCH_pr3.json"
        } else if pr5 {
            "BENCH_pr5.json"
        } else if pr6 {
            "BENCH_pr6.json"
        } else if pr7 {
            "BENCH_pr7.json"
        } else if pr8 {
            "BENCH_pr8.json"
        } else if pr9 {
            "BENCH_pr9.json"
        } else if pr10 {
            "BENCH_pr10.json"
        } else {
            "BENCH_pr4.json"
        })
        .to_string();
    let repeats = if quick { 5 } else { 15 };
    let json = if pr2 {
        run_pr2(quick, repeats)
    } else if pr3 {
        run_pr3(quick, repeats)
    } else if pr5 {
        run_pr5(quick)
    } else if pr6 {
        run_pr6(quick)
    } else if pr7 {
        run_pr7(quick)
    } else if pr8 {
        run_pr8(quick, repeats)
    } else if pr9 {
        run_pr9(quick)
    } else if pr10 {
        run_pr10(quick)
    } else {
        run_pr4(quick, repeats)
    };
    std::fs::write(&out_path, &json).expect("write capture file");
    eprintln!("wrote {out_path}");
    check(&out_path).expect("self-check of the freshly written capture");
}
