//! # cqfit-bench
//!
//! The benchmark harness lives entirely in `benches/`; one Criterion target
//! per table / size-bound theorem of the paper:
//!
//! * `table1_cq`      — Table 1 (CQs): verification / existence / construction
//! * `table2_ucq`     — Table 2 (UCQs)
//! * `table3_treecq`  — Table 3 (tree CQs)
//! * `size_families`  — Theorems 3.40, 3.41, 3.42 and 5.37 (size lower bounds)
//! * `ablation_hom`   — ablation: arc-consistency propagation on/off
//!
//! Run with `cargo bench --workspace`; the measured series and the mapping to
//! the paper's claims are recorded in `EXPERIMENTS.md`.
