//! Table 2 (UCQs): existence, verification and construction of (extremal)
//! fitting UCQs.  As the paper shows, every problem drops by roughly one
//! exponential compared to CQs; the measured times should reflect that the
//! UCQ procedures scale polynomially on the same workloads.

use cqfit::{ucq, SearchBudget};
use cqfit_gen::{exact_colorability, prime_cycles_family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_ucq(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2/ucq");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [2usize, 3, 4, 5, 6] {
        let examples = prime_cycles_family(n);
        group.bench_with_input(BenchmarkId::new("fitting_exists", n), &n, |b, _| {
            b.iter(|| ucq::fitting_exists(&examples).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("construct_most_specific", n),
            &n,
            |b, _| b.iter(|| ucq::most_specific_fitting(&examples).unwrap()),
        );
        let ms = ucq::most_specific_fitting(&examples).unwrap().unwrap();
        group.bench_with_input(BenchmarkId::new("verify_fitting", n), &n, |b, _| {
            b.iter(|| ucq::verify_fitting(&ms, &examples).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify_most_specific", n), &n, |b, _| {
            b.iter(|| ucq::verify_most_specific_fitting(&ms, &examples).unwrap())
        });
    }
    let budget = SearchBudget::default();
    for k in [3usize, 4] {
        let examples = exact_colorability(k);
        group.bench_with_input(BenchmarkId::new("unique_exists", k), &k, |b, _| {
            b.iter(|| ucq::unique_fitting_exists(&examples, &budget).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ucq);
criterion_main!(benches);
