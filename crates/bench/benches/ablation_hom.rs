//! Ablation A-1: the effect of arc-consistency propagation in the
//! homomorphism search (the workhorse of every algorithm in the library).

use cqfit_gen::{directed_cycle, prime_cycles_family, symmetric_clique};
use cqfit_hom::{find_homomorphism_with, HomConfig, HomSearchStats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/arc_consistency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let schema = cqfit_data::Schema::digraph();
    // Hard negative instances: does C_{3n} map into K_3? (yes) and does
    // C_{2n+1} map into K_2 plus padding? (no).
    let cases = [
        (
            "c9_to_k3",
            directed_cycle(&schema, 9),
            symmetric_clique(&schema, 3),
        ),
        (
            "c15_to_k3",
            directed_cycle(&schema, 15),
            symmetric_clique(&schema, 3),
        ),
        (
            "c11_to_k4",
            directed_cycle(&schema, 11),
            symmetric_clique(&schema, 4),
        ),
    ];
    for (name, src, dst) in &cases {
        for ac in [true, false] {
            let cfg = HomConfig {
                use_arc_consistency: ac,
                max_nodes: None,
            };
            let id = format!("{name}/{}", if ac { "ac" } else { "no_ac" });
            group.bench_with_input(BenchmarkId::from_parameter(&id), &id, |b, _| {
                b.iter(|| {
                    let mut stats = HomSearchStats::default();
                    find_homomorphism_with(src, dst, &cfg, &mut stats).unwrap()
                })
            });
        }
    }
    // Product homomorphism workload (the inner loop of fitting existence).
    for n in [3usize, 4] {
        let examples = prime_cycles_family(n);
        group.bench_with_input(BenchmarkId::new("product_vs_negative", n), &n, |b, _| {
            b.iter(|| cqfit::cq::fitting_exists(&examples).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
