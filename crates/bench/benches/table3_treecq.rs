//! Table 3 (tree CQs): verification, existence and construction of (extremal)
//! fitting tree CQs, including the product-simulation core of the ExpTime
//! procedures and the DAG-vs-explicit ablation on unravelings.

use cqfit::{tree, SearchBudget};
use cqfit_data::{parse_example, LabeledExamples, Schema};
use cqfit_gen::lra_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Cycle-product workloads: positives are simple cycles of coprime lengths,
/// the negative is a single loop-free edge; the product grows multiplicatively.
fn cycle_workload(lengths: &[usize]) -> LabeledExamples {
    let schema = Schema::binary_schema([], ["R"]);
    let mut positives = Vec::new();
    for &len in lengths {
        let mut text = String::new();
        for i in 0..len {
            text.push_str(&format!("R(v{}, v{})\n", i, (i + 1) % len));
        }
        text.push_str("* v0");
        positives.push(parse_example(&schema, &text).unwrap());
    }
    let negative = parse_example(&schema, "R(a,b)\n* a").unwrap();
    LabeledExamples::new(positives, vec![negative]).unwrap()
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3/treecq");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let budget = SearchBudget::default();
    let workloads = [vec![2usize, 3], vec![3, 4], vec![3, 5], vec![4, 5]];
    for lengths in &workloads {
        let id = lengths
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let examples = cycle_workload(lengths);
        group.bench_with_input(BenchmarkId::new("fitting_exists", &id), &id, |b, _| {
            b.iter(|| tree::fitting_exists(&examples).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("construct_fitting", &id), &id, |b, _| {
            b.iter(|| tree::construct_fitting(&examples, &budget).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("most_specific_exists", &id),
            &id,
            |b, _| b.iter(|| tree::most_specific_exists(&examples).unwrap()),
        );
        if let Some(q) = tree::construct_fitting(&examples, &budget).unwrap() {
            group.bench_with_input(BenchmarkId::new("verify_fitting", &id), &id, |b, _| {
                b.iter(|| tree::verify_fitting(&q, &examples).unwrap())
            });
            group.bench_with_input(
                BenchmarkId::new("verify_weakly_most_general", &id),
                &id,
                |b, _| b.iter(|| tree::verify_weakly_most_general(&q, &examples).unwrap()),
            );
        }
    }
    // The L/R/A family of Theorem 5.37 (n = 1): doubly-exponential outputs.
    let examples = lra_family(1);
    group.bench_function("lra_construct_fitting_n1", |b| {
        b.iter(|| tree::construct_fitting(&examples, &budget).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
