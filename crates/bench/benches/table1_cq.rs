//! Table 1 (CQs): verification, existence and construction of (extremal)
//! fitting CQs.  The workloads are the paper's own families: exact
//! k-colorability examples (Theorem 3.1) for verification and the
//! prime-cycle family (Theorem 3.40) for existence/construction, whose
//! difficulty grows exponentially with n.

use cqfit::{cq, SearchBudget};
use cqfit_gen::{exact_colorability, prime_cycles_family, symmetric_clique};
use cqfit_query::Cq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1/verification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let schema = cqfit_data::Schema::digraph();
    for k in [3usize, 4, 5] {
        let examples = exact_colorability(k);
        let q = Cq::from_example(&symmetric_clique(&schema, k + 1)).unwrap();
        group.bench_with_input(BenchmarkId::new("any_fitting", k), &k, |b, _| {
            b.iter(|| cq::verify_fitting(&q, &examples).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("most_specific", k), &k, |b, _| {
            b.iter(|| cq::verify_most_specific_fitting(&q, &examples).unwrap())
        });
    }
    // Weakly most-general / unique verification on the unique-fitting example
    // of Example 3.33 scaled by padding with extra negative examples.
    let schema = cqfit_data::Schema::digraph();
    let base = "R(a,b)\nR(b,a)\nR(b,b)";
    for extra in [0usize, 2, 4] {
        let mut negs = vec![format!("{base}\n* a")];
        for i in 0..extra {
            negs.push(format!("R(x{i},y{i})\n* x{i}"));
        }
        let examples = cqfit_data::LabeledExamples::new(
            vec![cqfit_data::parse_example(&schema, &format!("{base}\n* b")).unwrap()],
            negs.iter()
                .map(|t| cqfit_data::parse_example(&schema, t).unwrap())
                .collect(),
        )
        .unwrap();
        let q = cqfit_query::parse_cq(&schema, "q(x) :- R(x,x)").unwrap();
        group.bench_with_input(
            BenchmarkId::new("weakly_most_general", extra),
            &extra,
            |b, _| b.iter(|| cq::verify_weakly_most_general(&q, &examples).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("unique", extra), &extra, |b, _| {
            b.iter(|| cq::verify_unique_fitting(&q, &examples).unwrap())
        });
        let budget = SearchBudget::default();
        group.bench_with_input(BenchmarkId::new("basis", extra), &extra, |b, _| {
            b.iter(|| cq::verify_basis(std::slice::from_ref(&q), &examples, &budget).unwrap())
        });
    }
    group.finish();
}

fn bench_existence_and_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1/existence_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [2usize, 3, 4, 5] {
        let examples = prime_cycles_family(n);
        group.bench_with_input(BenchmarkId::new("fitting_exists", n), &n, |b, _| {
            b.iter(|| cq::fitting_exists(&examples).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("construct_most_specific", n),
            &n,
            |b, _| b.iter(|| cq::most_specific_fitting(&examples).unwrap()),
        );
        if n <= 3 {
            group.bench_with_input(BenchmarkId::new("unique_exists", n), &n, |b, _| {
                b.iter(|| cq::unique_fitting_exists(&examples).unwrap())
            });
        }
    }
    let budget = SearchBudget::default();
    for n in [2usize, 3] {
        let examples = prime_cycles_family(n);
        group.bench_with_input(
            BenchmarkId::new("weakly_most_general_exists", n),
            &n,
            |b, _| b.iter(|| cq::weakly_most_general_exists(&examples, &budget).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_verification,
    bench_existence_and_construction
);
criterion_main!(benches);
