//! Size-bound families (Theorems 3.40, 3.41, 3.42, 5.37): we benchmark the
//! construction time and *print* the measured output sizes so the growth
//! curves (exponential / doubly exponential in n, from polynomial-size
//! inputs) can be compared against the paper's statements.  The measured
//! series are recorded in EXPERIMENTS.md.

use cqfit::{cq, tree, SearchBudget};
use cqfit_gen::{bitstring_family, bitstring_family_z, lra_family, prime_cycles_family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn thm_3_40(c: &mut Criterion) {
    let mut group = c.benchmark_group("size/thm3.40_prime_cycles");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [2usize, 3, 4, 5, 6] {
        let examples = prime_cycles_family(n);
        let fitting = cq::most_specific_fitting(&examples).unwrap().unwrap();
        eprintln!(
            "[thm3.40] n={n}: input size {} facts -> smallest fitting CQ ~ {} variables",
            examples.total_size(),
            fitting.num_variables()
        );
        group.bench_with_input(BenchmarkId::new("construct", n), &n, |b, _| {
            b.iter(|| cq::most_specific_fitting(&examples).unwrap())
        });
    }
    group.finish();
}

fn thm_3_41_42(c: &mut Criterion) {
    let mut group = c.benchmark_group("size/thm3.41_bitstrings");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [1usize, 2, 3] {
        let examples = bitstring_family(n);
        let fitting = cq::most_specific_fitting(&examples).unwrap().unwrap();
        eprintln!(
            "[thm3.41] n={n}: input size {} facts -> unique fitting CQ with {} variables (expected 2^n = {})",
            examples.total_size(),
            fitting.core().num_variables(),
            1usize << n
        );
        group.bench_with_input(BenchmarkId::new("construct", n), &n, |b, _| {
            b.iter(|| cq::most_specific_fitting(&examples).unwrap())
        });
    }
    for n in [1usize, 2] {
        let examples = bitstring_family_z(n);
        let fitting = cq::most_specific_fitting(&examples).unwrap().unwrap();
        eprintln!(
            "[thm3.42] n={n}: Z-variant fitting CQ with {} variables (basis cardinality grows as 2^(2^n))",
            fitting.core().num_variables()
        );
        group.bench_with_input(BenchmarkId::new("construct_z", n), &n, |b, _| {
            b.iter(|| cq::most_specific_fitting(&examples).unwrap())
        });
    }
    group.finish();
}

fn thm_5_37(c: &mut Criterion) {
    let mut group = c.benchmark_group("size/thm5.37_lra");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let budget = SearchBudget {
        max_tree_nodes: 2_000_000,
        ..SearchBudget::default()
    };
    for n in [1usize, 2] {
        let examples = lra_family(n);
        group.bench_with_input(BenchmarkId::new("fitting_exists", n), &n, |b, _| {
            b.iter(|| tree::fitting_exists(&examples).unwrap())
        });
        if n == 1 {
            let fitting = tree::construct_fitting(&examples, &budget).unwrap();
            eprintln!(
                "[thm5.37] n={n}: input size {} facts -> fitting tree CQ with {} variables",
                examples.total_size(),
                fitting.as_ref().map(|q| q.num_variables()).unwrap_or(0)
            );
            group.bench_with_input(BenchmarkId::new("construct", n), &n, |b, _| {
                b.iter(|| tree::construct_fitting(&examples, &budget).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, thm_3_40, thm_3_41_42, thm_5_37);
criterion_main!(benches);
