//! A one-step generalization operator for tree CQs (Section 5.3).
//!
//! Every member produced here is a tree CQ strictly more general than the
//! input, and on many queries the produced set is a frontier w.r.t. tree CQs
//! (this is validated on concrete cases in the tests).  It is however **not
//! guaranteed to be complete** as a frontier: generalizations that re-route a
//! requirement through a zig-zag path (Example 5.21 of the paper) may not be
//! covered.  The exact weak-most-generality test for tree CQs in
//! `cqfit::tree` therefore uses the c-acyclic frontier of the underlying CQ
//! instead; this operator is kept as a light-weight generalization step.
//!
//! The construction works on the *reduced* (irredundant) rooted-tree form and
//! applies one generalization step per member:
//!
//! * drop one unary label of the root, or
//! * pick one child subtree, remove it, and graft instead *all* members of
//!   the (recursively computed) frontier of that subtree.
//!
//! Members that are not safe CQs (the single unlabeled node) are dropped at
//! the top level — by the same argument as footnote 3 of the paper, the safe
//! members alone still form a frontier w.r.t. tree CQs.

use cqfit_query::{RootedTree, TreeCq};
use std::collections::HashSet;

/// Computes a set of tree CQs strictly more general than `q` (one
/// generalization step in each member); see the module documentation for the
/// completeness caveat.
pub fn tree_frontier(q: &TreeCq) -> Vec<TreeCq> {
    let reduced = q.reduce();
    let members = frontier_rec(reduced.rooted());
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for m in members {
        if let Ok(tcq) = TreeCq::from_rooted(m) {
            let code = tcq.rooted().canonical_code();
            if seen.insert(code) {
                out.push(tcq);
            }
        }
    }
    out
}

/// Recursive frontier construction on (reduced) rooted trees; members may be
/// trivial (a single unlabeled node), which is meaningful when grafted below
/// a parent even though it is not a standalone tree CQ.
pub(crate) fn frontier_rec(t: &RootedTree) -> Vec<RootedTree> {
    let root = t.root();
    let mut members = Vec::new();
    // Generalize by dropping one unary label of the root.
    for &rel in t.labels(root).clone().iter() {
        members.push(t.without_label(root, rel));
    }
    // Generalize at one child: remove its subtree and graft every member of
    // the subtree's frontier instead.
    let children: Vec<_> = t.children(root).to_vec();
    for &(role, child) in &children {
        let sub = t.subtree(child);
        let sub_frontier = frontier_rec(&sub);
        let mut member = t
            .without_subtree(child)
            .expect("children are never the root");
        for s in &sub_frontier {
            let grafted = member
                .add_child(member.root(), role)
                .expect("role comes from the same schema");
            member.graft(grafted, s);
        }
        members.push(member);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::Schema;
    use cqfit_query::{parse_cq, TreeCq};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::binary_schema(["A", "B"], ["R", "S"])
    }

    fn tcq(text: &str) -> TreeCq {
        TreeCq::try_new(parse_cq(&schema(), text).unwrap()).unwrap()
    }

    /// Checks the defining properties of a frontier w.r.t. tree CQs on given
    /// witnesses.
    fn check(q: &TreeCq, strictly_more_general: &[TreeCq], not_more_general: &[TreeCq]) {
        let frontier = tree_frontier(q);
        for m in &frontier {
            assert!(
                q.strictly_contained_in(m).unwrap(),
                "member {m} must be strictly more general than {q}"
            );
        }
        for p in strictly_more_general {
            assert!(q.strictly_contained_in(p).unwrap(), "test setup");
            assert!(
                frontier.iter().any(|m| m.is_contained_in(p).unwrap()),
                "frontier of {q} must cover {p}"
            );
        }
        for p in not_more_general {
            assert!(
                !frontier.iter().any(|m| m.is_contained_in(p).unwrap()),
                "{p} must not be covered by the frontier of {q}"
            );
        }
    }

    #[test]
    fn frontier_of_labeled_edge() {
        // q(x) :- R(x,y), A(y).
        let q = tcq("q(x) :- R(x,y), A(y)");
        let gen1 = tcq("q(x) :- R(x,y)");
        let itself = tcq("q(x) :- R(x,y), A(y)");
        check(&q, &[gen1], &[itself]);
    }

    #[test]
    fn frontier_of_two_step_path() {
        let q = tcq("q(x) :- R(x,y), R(y,z), A(z)");
        let drop_a = tcq("q(x) :- R(x,y), R(y,z)");
        let drop_tail = tcq("q(x) :- R(x,y)");
        let unrelated = tcq("q(x) :- S(x,y)");
        check(&q, &[drop_a, drop_tail], &[unrelated]);
    }

    #[test]
    fn frontier_of_branching_query() {
        let q = tcq("q(x) :- R(x,y), A(y), S(x,z), B(z)");
        let g1 = tcq("q(x) :- R(x,y), A(y), S(x,z)");
        let g2 = tcq("q(x) :- R(x,y), S(x,z), B(z)");
        let g3 = tcq("q(x) :- R(x,y), A(y)");
        check(&q, &[g1, g2, g3], &[]);
    }

    #[test]
    fn frontier_with_inverse_roles_covers_node_splitting() {
        // q(x) :- R(x,y), A(y), R(z,y), B(z): generalizations may "split" the
        // node y; the frontier must still cover them.
        let q = tcq("q(x) :- R(x,y), A(y), R(z,y), B(z)");
        let split = tcq("q(x) :- R(x,y1), A(y1), R(x,y2), R(z,y2), B(z)");
        assert!(q.strictly_contained_in(&split).unwrap());
        let frontier = tree_frontier(&q);
        assert!(
            frontier.iter().any(|m| m.is_contained_in(&split).unwrap()),
            "node-splitting generalization must be covered"
        );
    }

    #[test]
    fn frontier_of_root_label_only() {
        // q(x) :- A(x): no tree CQ is strictly more general, so the frontier
        // is empty (the only candidate member is the unsafe trivial tree).
        let q = tcq("q(x) :- A(x)");
        assert!(tree_frontier(&q).is_empty());
    }

    #[test]
    fn frontier_of_plain_edge_is_empty() {
        let q = tcq("q(x) :- R(x,y)");
        assert!(tree_frontier(&q).is_empty());
    }

    #[test]
    fn reduction_happens_first() {
        // Redundant sibling: frontier must equal that of the reduced query.
        let q = tcq("q(x) :- R(x,y), R(x,z), A(z)");
        let reduced = tcq("q(x) :- R(x,z), A(z)");
        let f1 = tree_frontier(&q);
        let f2 = tree_frontier(&reduced);
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert!(a.equivalent_to(b).unwrap());
        }
    }
}
