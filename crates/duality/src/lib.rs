//! # cqfit-duality
//!
//! Frontiers and homomorphism dualities in the homomorphism pre-order of
//! data examples, as used throughout *Extremal Fitting Problems for
//! Conjunctive Queries* (PODS 2023):
//!
//! * the polynomial-time frontier construction for c-acyclic CQs with the
//!   Unique Names Property (Definitions 3.21/3.22, Proposition 3.23),
//! * a one-step generalization operator for tree CQs (Section 5.3) — sound
//!   but not guaranteed to be a complete frontier,
//! * homomorphism dualities, relativized homomorphism dualities (Definition
//!   3.28) and simulation dualities (Definition 5.26), with three-valued
//!   bounded decision procedures.
//!
//! ## Exactness
//!
//! Frontier constructions are exact.  Duality *checking* is, as the paper
//! itself discusses (Proposition 4.7 leaves the complexity of `HomDual`
//! open between NP-hard and ExpTime), a hard problem; the checks in
//! [`check_hom_duality`] / [`check_simulation_duality`] are three-valued:
//! `No` answers are certified by an explicit
//! counterexample, `Yes` answers are produced only on fragments where the
//! check is provably complete (e.g. schemas with only unary relations), and
//! `Unknown` is returned when the configured search budget is exhausted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod frontier;
mod tree_frontier;

pub use check::{
    check_hom_duality, check_relativized_duality, check_simulation_duality, Certainty,
    DualityConfig, DualityOutcome,
};
pub use frontier::{frontier_examples, frontier_of, FrontierError};
pub use tree_frontier::tree_frontier;
