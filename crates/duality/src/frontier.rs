//! The polynomial-time frontier construction for c-acyclic CQs
//! (Definitions 3.21 and 3.22, Proposition 3.23).
//!
//! A *frontier* for a CQ `q` is a finite set of CQs strictly below `q` in the
//! homomorphism pre-order (strictly more general as queries) that separates
//! `q` from everything strictly below it.  A CQ has a frontier iff its core
//! is c-acyclic (Theorem 2.12); for c-acyclic CQs with the Unique Names
//! Property the construction below produces one in polynomial time.
//!
//! Members of the construction may be *unsafe* (an answer variable may not
//! occur in any fact).  We therefore return frontier members as pointed
//! instances ([`Example`]); by footnote 3 of the paper the safe members alone
//! also form a frontier, and [`frontier_of`] returns exactly those, as CQs.

use cqfit_data::{Example, FactId, Instance, Value};
use cqfit_hom::core_of;
use cqfit_query::{is_c_acyclic_example, Cq, QueryError};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors of the frontier construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontierError {
    /// The query has repeated answer variables; the construction implemented
    /// here requires the Unique Names Property.
    RequiresUnp,
    /// The core of the query is not c-acyclic, hence no frontier exists
    /// (Theorem 2.12).
    NoFrontierExists,
    /// A query-layer error.
    Query(QueryError),
}

impl fmt::Display for FrontierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontierError::RequiresUnp => write!(
                f,
                "frontier construction requires the Unique Names Property (no repeated answer variables)"
            ),
            FrontierError::NoFrontierExists => write!(
                f,
                "the query's core is not c-acyclic, so it has no frontier (Theorem 2.12)"
            ),
            FrontierError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontierError {}

impl From<QueryError> for FrontierError {
    fn from(e: QueryError) -> Self {
        FrontierError::Query(e)
    }
}

/// Computes a frontier for `q` as a set of pointed instances (possibly not
/// data examples).  The query is first replaced by its core; the core must be
/// c-acyclic and `q` must have the UNP.
///
/// # Errors
/// See [`FrontierError`].
pub fn frontier_examples(q: &Cq) -> Result<Vec<Example>, FrontierError> {
    if !q.has_unp() {
        return Err(FrontierError::RequiresUnp);
    }
    let core = core_of(&q.canonical_example());
    if !is_c_acyclic_example(&core) {
        return Err(FrontierError::NoFrontierExists);
    }
    let components = core.connected_components();
    let mut out = Vec::with_capacity(components.len());
    for i in 0..components.len() {
        out.push(replicate_component(&core, &components, i));
    }
    Ok(out)
}

/// Computes a frontier for `q` consisting of safe CQs only.
///
/// # Errors
/// See [`FrontierError`].
pub fn frontier_of(q: &Cq) -> Result<Vec<Cq>, FrontierError> {
    let examples = frontier_examples(q)?;
    let mut out = Vec::new();
    for e in examples {
        if e.is_data_example() {
            out.push(Cq::from_example(&e)?);
        }
    }
    Ok(out)
}

/// Builds `F_i(q)`: the example obtained from `core` by applying the replica
/// construction of Definition 3.21 to component `target` and copying every
/// other component unchanged.
fn replicate_component(core: &Example, components: &[Vec<FactId>], target: usize) -> Example {
    let inst = core.instance();
    let distinguished: Vec<Value> = core.distinguished().to_vec();
    let distinguished_set: HashSet<Value> = distinguished.iter().copied().collect();

    let mut out = Instance::new(inst.schema().clone());
    // The distinguished values keep their identity (and their labels).
    let mut dist_map: HashMap<Value, Value> = HashMap::new();
    for &d in &distinguished {
        dist_map
            .entry(d)
            .or_insert_with(|| out.add_value(inst.label(d)));
    }

    // Copy the untouched components.
    let mut copy_map: HashMap<Value, Value> = HashMap::new();
    for (ci, comp) in components.iter().enumerate() {
        if ci == target {
            continue;
        }
        for &fid in comp {
            let fact = inst.fact(fid);
            let args: Vec<Value> = fact
                .args
                .iter()
                .map(|&v| {
                    if let Some(&d) = dist_map.get(&v) {
                        d
                    } else {
                        *copy_map
                            .entry(v)
                            .or_insert_with(|| out.add_value(inst.label(v)))
                    }
                })
                .collect();
            out.add_fact(fact.rel, &args).expect("copied fact is valid");
        }
    }

    // Replica values for the target component.
    // For a distinguished x: replicas are {x, u_x}.
    let mut dist_replica: HashMap<Value, Value> = HashMap::new();
    for &d in &distinguished {
        dist_replica
            .entry(d)
            .or_insert_with(|| out.add_value(format!("u_{}", inst.label(d))));
    }
    // For an existential y: replicas are {u_(y,f) : y occurs in f}, restricted
    // to facts of the target component.
    let target_facts: HashSet<FactId> = components[target].iter().copied().collect();
    let mut ex_replica: HashMap<(Value, FactId), Value> = HashMap::new();
    for &fid in &components[target] {
        let fact = inst.fact(fid);
        for &v in &fact.args {
            if !distinguished_set.contains(&v) {
                ex_replica
                    .entry((v, fid))
                    .or_insert_with(|| out.add_value(format!("u_({},f{})", inst.label(v), fid.0)));
            }
        }
    }

    // Acceptable instances of each fact of the target component: every
    // combination of replicas except the "own" combination.
    for &fid in &components[target] {
        let fact = inst.fact(fid);
        // Per position: the list of replica values, with the "own" replica
        // listed first.
        let position_choices: Vec<Vec<Value>> = fact
            .args
            .iter()
            .map(|&v| {
                if distinguished_set.contains(&v) {
                    vec![dist_map[&v], dist_replica[&v]]
                } else {
                    let own = ex_replica[&(v, fid)];
                    let mut choices = vec![own];
                    for &other_fid in inst.facts_containing(v) {
                        if other_fid != fid && target_facts.contains(&other_fid) {
                            choices.push(ex_replica[&(v, other_fid)]);
                        }
                    }
                    choices
                }
            })
            .collect();
        // Iterate the cartesian product; index 0 everywhere is the "own"
        // combination, which is skipped.
        let mut indices = vec![0usize; position_choices.len()];
        loop {
            if indices.iter().any(|&i| i != 0) || position_choices.is_empty() {
                let args: Vec<Value> = indices
                    .iter()
                    .zip(&position_choices)
                    .map(|(&i, choices)| choices[i])
                    .collect();
                out.add_fact(fact.rel, &args)
                    .expect("replica fact is valid");
            }
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == indices.len() {
                    break;
                }
                indices[pos] += 1;
                if indices[pos] < position_choices[pos].len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
            if pos == indices.len() {
                break;
            }
        }
    }

    // Finally, the replicas `u_x` of the answer variables inherit the facts
    // of the *untouched* components: for every fact of another component that
    // mentions a distinguished value, we add every variant in which each
    // distinguished occurrence is replaced by its replica (keeping at least
    // one replacement).  Without these facts the construction would fail to
    // cover examples in which a non-distinguished element plays the role that
    // the answer variable plays in the untouched components (this situation
    // only arises when a component shares an answer variable with another
    // component).
    for (ci, comp) in components.iter().enumerate() {
        if ci == target {
            continue;
        }
        for &fid in comp {
            let fact = inst.fact(fid);
            if !fact.args.iter().any(|a| distinguished_set.contains(a)) {
                continue;
            }
            let position_choices: Vec<Vec<Value>> = fact
                .args
                .iter()
                .map(|&v| {
                    if distinguished_set.contains(&v) {
                        vec![dist_map[&v], dist_replica[&v]]
                    } else {
                        vec![copy_map[&v]]
                    }
                })
                .collect();
            let mut indices = vec![0usize; position_choices.len()];
            loop {
                if indices.iter().any(|&i| i != 0) {
                    let args: Vec<Value> = indices
                        .iter()
                        .zip(&position_choices)
                        .map(|(&i, choices)| choices[i])
                        .collect();
                    out.add_fact(fact.rel, &args)
                        .expect("inherited fact is valid");
                }
                let mut pos = 0;
                loop {
                    if pos == indices.len() {
                        break;
                    }
                    indices[pos] += 1;
                    if indices[pos] < position_choices[pos].len() {
                        break;
                    }
                    indices[pos] = 0;
                    pos += 1;
                }
                if pos == indices.len() {
                    break;
                }
            }
        }
    }

    let dist_out: Vec<Value> = distinguished.iter().map(|d| dist_map[d]).collect();
    Example::new(out, dist_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::Schema;
    use cqfit_hom::hom_exists;
    use cqfit_query::parse_cq;

    fn check_frontier_properties(q: &Cq, strictly_below: &[Cq], not_below: &[Cq]) {
        let frontier = frontier_examples(q).expect("frontier exists");
        let eq = q.canonical_example();
        for member in &frontier {
            // Members are (weakly) below q …
            assert!(
                hom_exists(member, &eq),
                "frontier member must map homomorphically to q"
            );
            // … and strictly below (q does not map back).
            assert!(
                !hom_exists(&eq, member),
                "q must not map to a frontier member"
            );
        }
        // Everything given as strictly below q must be covered by a member.
        for p in strictly_below {
            let ep = p.canonical_example();
            assert!(hom_exists(&ep, &eq) && !hom_exists(&eq, &ep), "test setup");
            assert!(
                frontier.iter().any(|m| hom_exists(&ep, m)),
                "frontier must cover {p}"
            );
        }
        for p in not_below {
            let ep = p.canonical_example();
            assert!(
                !frontier.iter().any(|m| hom_exists(&ep, m)),
                "{p} is not strictly below q and must not be covered"
            );
        }
    }

    /// Example 2.9 of the paper: the directed path of length 3 has a
    /// singleton frontier.
    #[test]
    fn directed_path_frontier() {
        let schema = Schema::digraph();
        let q = parse_cq(&schema, "q() :- R(a,b), R(b,c), R(c,d)").unwrap();
        // Strictly below the path of length 3: shorter paths.
        let p2 = parse_cq(&schema, "q() :- R(a,b), R(b,c)").unwrap();
        let p1 = parse_cq(&schema, "q() :- R(a,b)").unwrap();
        // Not below: the path of length 3 itself (equivalent), and a loop.
        let same = parse_cq(&schema, "q() :- R(a,b), R(b,c), R(c,d), R(x,y)").unwrap();
        let looped = parse_cq(&schema, "q() :- R(x,x)").unwrap();
        check_frontier_properties(&q, &[p2, p1], &[same, looped]);
    }

    /// Example 2.13: frontier of q1(x) :- R(x,y), R(y,z).
    #[test]
    fn paper_example_2_13_q1() {
        let schema = Schema::digraph();
        let q1 = parse_cq(&schema, "q(x) :- R(x,y), R(y,z)").unwrap();
        let below = parse_cq(&schema, "q(x) :- R(x,y)").unwrap();
        let incomparable = parse_cq(&schema, "q(x) :- R(y,x)").unwrap();
        check_frontier_properties(&q1, &[below], &[incomparable]);
        // The paper states {q'_1} with q'_1(x) :- R(x,y),R(u,y),R(u,v),R(v,w)
        // is a frontier; our construction must be homomorphically equivalent
        // to it as a frontier: q'_1 must be covered.
        let paper_member = parse_cq(&schema, "q(x) :- R(x,y), R(u,y), R(u,v), R(v,w)").unwrap();
        let frontier = frontier_examples(&q1).unwrap();
        assert!(frontier
            .iter()
            .any(|m| hom_exists(&paper_member.canonical_example(), m)));
    }

    /// Example 2.13: frontier of q2(x) :- R(x,x), S(u,v), S(v,w) (two
    /// components, two frontier members).
    #[test]
    fn paper_example_2_13_q2() {
        let schema = Schema::binary_schema([], ["R", "S"]);
        let q2 = parse_cq(&schema, "q(x) :- R(x,x), S(u,v), S(v,w)").unwrap();
        let frontier = frontier_examples(&q2).unwrap();
        assert_eq!(frontier.len(), 2, "one member per connected component");
        // The paper's frontier members:
        let f1 = parse_cq(&schema, "q(x) :- R(x,x), S(u,v)").unwrap();
        let f2 = parse_cq(&schema, "q(x) :- R(x,y), R(y,x), R(y,y), S(u,v), S(v,w)").unwrap();
        check_frontier_properties(&q2, &[f1, f2], &[]);
    }

    /// Example 2.13: q3(x) :- R(x,y), R(y,y) has no frontier.
    #[test]
    fn paper_example_2_13_q3_no_frontier() {
        let schema = Schema::digraph();
        let q3 = parse_cq(&schema, "q(x) :- R(x,y), R(y,y)").unwrap();
        assert_eq!(
            frontier_examples(&q3).unwrap_err(),
            FrontierError::NoFrontierExists
        );
    }

    #[test]
    fn unp_required() {
        let schema = Schema::digraph();
        let q = parse_cq(&schema, "q(x,x) :- R(x,y)").unwrap();
        assert_eq!(
            frontier_examples(&q).unwrap_err(),
            FrontierError::RequiresUnp
        );
    }

    #[test]
    fn frontier_of_returns_safe_members() {
        let schema = Schema::binary_schema(["P"], ["R"]);
        // q(x) :- P(x): its frontier member P(y) is unsafe, so no safe member
        // survives.
        let q = parse_cq(&schema, "q(x) :- P(x)").unwrap();
        let examples = frontier_examples(&q).unwrap();
        assert_eq!(examples.len(), 1);
        assert!(!examples[0].is_data_example());
        assert!(frontier_of(&q).unwrap().is_empty());
        // q(x) :- R(x,y) also has no *safe* frontier member over this schema
        // (no safe CQ is strictly more general than it), while
        // q(x) :- R(x,y), P(y) does.
        let q2 = parse_cq(&schema, "q(x) :- R(x,y)").unwrap();
        assert!(frontier_of(&q2).unwrap().is_empty());
        let q3 = parse_cq(&schema, "q(x) :- R(x,y), P(y)").unwrap();
        let safe = frontier_of(&q3).unwrap();
        assert!(!safe.is_empty());
        for m in &safe {
            assert!(q3.strictly_contained_in(m).unwrap());
        }
    }

    #[test]
    fn frontier_is_computed_on_the_core() {
        let schema = Schema::digraph();
        // Equivalent to q(x) :- R(x,y); the redundant atom must not affect
        // the frontier's semantics.
        let q = parse_cq(&schema, "q(x) :- R(x,y), R(x,z)").unwrap();
        let q_min = parse_cq(&schema, "q(x) :- R(x,y)").unwrap();
        let f1 = frontier_examples(&q).unwrap();
        let f2 = frontier_examples(&q_min).unwrap();
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert!(hom_exists(a, b) && hom_exists(b, a));
        }
    }

    /// A component sharing the answer variable with another component: the
    /// frontier of q(x) :- P(x), R(x,y) must cover the strictly-more-general
    /// query p(x) :- R(x,y), R(z,y), P(z), in which a non-distinguished
    /// element takes over the role that x plays in the P-component.
    #[test]
    fn shared_answer_variable_components_covered() {
        let schema = Schema::binary_schema(["P"], ["R"]);
        let q = parse_cq(&schema, "q(x) :- P(x), R(x,y)").unwrap();
        let p = parse_cq(&schema, "q(x) :- R(x,y), R(z,y), P(z)").unwrap();
        assert!(q.strictly_contained_in(&p).unwrap(), "test setup");
        let frontier = frontier_examples(&q).unwrap();
        assert_eq!(frontier.len(), 2);
        assert!(
            frontier
                .iter()
                .any(|m| hom_exists(&p.canonical_example(), m)),
            "p must be covered by the frontier"
        );
        // Frontier members remain strictly below q.
        for m in &frontier {
            assert!(hom_exists(m, &q.canonical_example()));
            assert!(!hom_exists(&q.canonical_example(), m));
        }
    }

    /// Boolean single-edge query: its frontier must cover every structure
    /// strictly below it (i.e. every non-empty structure without an R-edge —
    /// over this schema there are none except the empty one), and not cover
    /// the query itself.
    #[test]
    fn boolean_edge_frontier() {
        let schema = Schema::digraph();
        let q = parse_cq(&schema, "q() :- R(x,y)").unwrap();
        let frontier = frontier_examples(&q).unwrap();
        assert_eq!(frontier.len(), 1);
        let eq = q.canonical_example();
        assert!(!hom_exists(&eq, &frontier[0]));
    }
}
