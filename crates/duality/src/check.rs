//! Three-valued decision procedures for homomorphism dualities, relativized
//! homomorphism dualities (Definition 3.28) and simulation dualities
//! (Definition 5.26).
//!
//! The paper shows (Proposition 4.7 / Theorem 4.8) that testing whether a
//! pair `(F, D)` is a homomorphism duality is NP-hard and in ExpTime, with
//! the exact complexity open; several verification problems for UCQs are
//! polynomially equivalent to it.  The checks here are therefore
//! *three-valued*:
//!
//! * `No` answers always come with a certified counterexample (an example `e`
//!   violating the duality equation) or a certified violation of a necessary
//!   structural condition (a non-c-acyclic left-hand side, or `f → d`),
//! * `Yes` answers are produced only on fragments where the enumeration is
//!   provably exhaustive (schemas with only unary relations, up to a size
//!   cap),
//! * `Unknown` is returned when the configured search budget is exhausted
//!   without a verdict.

use crate::frontier_examples;
use cqfit_data::{Example, Instance, Schema, Value};
use cqfit_hom::{
    core_of, direct_product, hom_exists, hom_exists_batch, hom_exists_cross, simulates, CrossFlags,
};
use cqfit_query::{is_c_acyclic_example, Cq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The verdict of a bounded duality check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// The pair is certainly a duality (exhaustive verification).
    Yes,
    /// The pair is certainly not a duality (a counterexample or a violated
    /// necessary condition was found).
    No,
    /// The search budget was exhausted without a verdict.
    Unknown,
}

/// Outcome of a duality check: the verdict together with the counterexample
/// that certifies a `No` answer, when one was constructed.
#[derive(Debug, Clone)]
pub struct DualityOutcome {
    /// The verdict.
    pub certainty: Certainty,
    /// A data example violating the duality equation, when available.
    pub counterexample: Option<Example>,
    /// A human-readable reason for the verdict.
    pub reason: String,
}

impl DualityOutcome {
    fn yes(reason: impl Into<String>) -> Self {
        DualityOutcome {
            certainty: Certainty::Yes,
            counterexample: None,
            reason: reason.into(),
        }
    }
    fn no(reason: impl Into<String>, counterexample: Option<Example>) -> Self {
        DualityOutcome {
            certainty: Certainty::No,
            counterexample,
            reason: reason.into(),
        }
    }
    fn unknown(reason: impl Into<String>) -> Self {
        DualityOutcome {
            certainty: Certainty::Unknown,
            counterexample: None,
            reason: reason.into(),
        }
    }

    /// True if the verdict is [`Certainty::Yes`].
    pub fn is_yes(&self) -> bool {
        self.certainty == Certainty::Yes
    }

    /// True if the verdict is [`Certainty::No`].
    pub fn is_no(&self) -> bool {
        self.certainty == Certainty::No
    }
}

/// Budget and strategy configuration for the duality checks.
#[derive(Debug, Clone)]
pub struct DualityConfig {
    /// Number of random candidate counterexamples to try.
    pub random_samples: usize,
    /// Maximum number of elements of random candidate counterexamples.
    pub max_random_elements: usize,
    /// Maximum cycle/path length of structured candidate counterexamples.
    pub max_structured_length: usize,
    /// Unraveling depth for simulation-duality candidates.
    pub max_unraveling_depth: usize,
    /// Run the exhaustive (exact) procedure on unary-only schemas with at
    /// most this many unary relations.
    pub exhaustive_unary_relations: usize,
    /// Random seed (the checks are deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for DualityConfig {
    fn default() -> Self {
        DualityConfig {
            random_samples: 300,
            max_random_elements: 6,
            max_structured_length: 9,
            max_unraveling_depth: 6,
            exhaustive_unary_relations: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Checks whether `(F, D)` is a homomorphism duality (§2.2): every data
/// example is either above an element of `F` or below an element of `D`, and
/// never both.
pub fn check_hom_duality(f: &[Example], d: &[Example], cfg: &DualityConfig) -> DualityOutcome {
    check_duality_impl(f, d, None, cfg, Mode::Homomorphism)
}

/// Checks whether `(F, D)` is a homomorphism duality *relative to* the
/// pointed instance `p` (Definition 3.28): the duality equation is required
/// only for data examples `e` with `e → p`.
pub fn check_relativized_duality(
    f: &[Example],
    d: &[Example],
    p: &Example,
    cfg: &DualityConfig,
) -> DualityOutcome {
    check_duality_impl(f, d, Some(p), cfg, Mode::Homomorphism)
}

/// Checks whether `(F, D)` is a simulation duality relative to `p`
/// (Definition 5.26), with `⪯` in place of `→`.  All inputs must live over a
/// binary schema.
pub fn check_simulation_duality(
    f: &[Example],
    d: &[Example],
    p: &Example,
    cfg: &DualityConfig,
) -> DualityOutcome {
    check_duality_impl(f, d, Some(p), cfg, Mode::Simulation)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Homomorphism,
    Simulation,
}

/// The pre-order test used by the current mode.
fn below(mode: Mode, src: &Example, dst: &Example) -> bool {
    match mode {
        Mode::Homomorphism => hom_exists(src, dst),
        Mode::Simulation => simulates(src, dst).expect("binary schema required"),
    }
}

/// Batched pre-order tests: in homomorphism mode the independent checks fan
/// across threads ([`hom_exists_batch`]); simulation checks stay sequential.
/// The result is positionally identical to mapping [`below`] over `pairs`.
fn below_batch(mode: Mode, pairs: &[(&Example, &Example)]) -> Vec<bool> {
    match mode {
        Mode::Homomorphism => hom_exists_batch(pairs),
        Mode::Simulation => pairs.iter().map(|(s, d)| below(mode, s, d)).collect(),
    }
}

/// Batched pre-order cross product (rows = `srcs`), mode-aware like
/// [`below_batch`]; row/column decoding lives in [`CrossFlags`].
fn below_cross(mode: Mode, srcs: &[&Example], dsts: &[&Example]) -> CrossFlags {
    match mode {
        Mode::Homomorphism => hom_exists_cross(srcs, dsts),
        Mode::Simulation => {
            let flags = srcs
                .iter()
                .flat_map(|&s| dsts.iter().map(move |&d| below(mode, s, d)))
                .collect();
            CrossFlags::from_flags(flags, dsts.len())
        }
    }
}

fn check_duality_impl(
    f: &[Example],
    d: &[Example],
    p: Option<&Example>,
    cfg: &DualityConfig,
    mode: Mode,
) -> DualityOutcome {
    let schema = f
        .first()
        .or_else(|| d.first())
        .or(p)
        .map(|e| e.instance().schema().clone());
    let Some(schema) = schema else {
        return DualityOutcome::yes("empty inputs form a trivial duality");
    };
    let arity = f
        .first()
        .or_else(|| d.first())
        .or(p)
        .map(Example::arity)
        .unwrap_or(0);

    // Necessary condition 1 (homomorphism mode): after reduction to an
    // antichain of cores, every left-hand side must be c-acyclic
    // (Proposition 4.7).  In simulation mode the analogous requirement is
    // that the left-hand sides are tree-shaped, which we do not enforce here.
    let f_reduced: Vec<Example> = antichain_min(f, mode);
    if mode == Mode::Homomorphism {
        for e in &f_reduced {
            let core = core_of(e);
            if !is_c_acyclic_example(&core) {
                return DualityOutcome::no(
                    "a left-hand side has a non-c-acyclic core, so it cannot be the left-hand side of a finite duality",
                    Some(e.clone()),
                );
            }
        }
    }

    // Necessary condition 2: no f may lie below a d (restricted, in the
    // relativized case, to f below p).  Both the relevance filter and the
    // `f × d` cross product are independent checks, batched per stage.
    let relevant: Vec<bool> = match p {
        Some(p) => {
            let pairs: Vec<(&Example, &Example)> = f.iter().map(|fe| (fe, p)).collect();
            below_batch(mode, &pairs)
        }
        None => vec![true; f.len()],
    };
    let relevant_f: Vec<&Example> = f
        .iter()
        .zip(&relevant)
        .filter(|&(_fe, &r)| r)
        .map(|(fe, _r)| fe)
        .collect();
    let d_refs: Vec<&Example> = d.iter().collect();
    if let Some((row, _col)) = below_cross(mode, &relevant_f, &d_refs).first_true() {
        return DualityOutcome::no(
            "a left-hand side example maps below a right-hand side example",
            Some(relevant_f[row].clone()),
        );
    }

    // Exhaustive procedure on small unary-only schemas: exact Yes/No.
    if schema.rel_ids().all(|r| schema.arity(r) == 1)
        && schema.len() <= cfg.exhaustive_unary_relations
        && arity <= 2
    {
        return exhaustive_unary(&schema, arity, f, d, p, mode);
    }

    // Counterexample search.
    let mut candidates: Vec<Example> = Vec::new();
    // Frontier members of left-hand sides (homomorphism mode only): these are
    // exactly the maximal examples strictly below an f, so if the duality
    // fails "just below" some f, a frontier member witnesses it.
    if mode == Mode::Homomorphism {
        for fe in f {
            if let Ok(q) = Cq::from_example(fe) {
                if let Ok(members) = frontier_examples(&q) {
                    for m in members {
                        if m.is_data_example() {
                            candidates.push(m);
                        }
                    }
                }
            }
        }
    }
    // Products of right-hand sides (and of the relativizer).
    for (i, d1) in d.iter().enumerate() {
        for d2 in &d[i + 1..] {
            if let Ok(prod) = direct_product(d1, d2) {
                candidates.push(prod);
            }
        }
        if let Some(p) = p {
            if let Ok(prod) = direct_product(d1, p) {
                candidates.push(prod);
            }
        }
    }
    if let Some(p) = p {
        candidates.push(p.clone());
    }
    // Structured candidates: directed cycles and paths over each binary
    // relation (they witness classic duality failures such as
    // non-2-colorability).
    for rel in schema.rel_ids().filter(|r| schema.arity(*r) == 2) {
        for len in 2..=cfg.max_structured_length {
            candidates.push(cycle_example(&schema, rel, len, arity));
            candidates.push(path_example(&schema, rel, len, arity));
        }
    }
    // Unravelings of the relativizer (simulation mode): these are the
    // canonical shapes of critical tree obstructions (Proposition 5.29).
    if mode == Mode::Simulation {
        if let Some(p) = p {
            for depth in 0..=cfg.max_unraveling_depth {
                if let Some(u) = unravel(p, depth) {
                    candidates.push(u);
                }
            }
        }
    }
    // Random candidates.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.random_samples {
        if let Some(e) = random_example(&schema, arity, cfg.max_random_elements, &mut rng) {
            candidates.push(e);
        }
    }

    // Evaluate the duality equation on every candidate.  Each stage is a
    // family of independent pre-order checks, so the relativizer filter and
    // the two cross products against F and D each run as one parallel batch;
    // the final scan preserves candidate order, so the reported
    // counterexample is the same one the sequential loop would find.
    let data_candidates: Vec<&Example> =
        candidates.iter().filter(|e| e.is_data_example()).collect();
    let eligible: Vec<&Example> = match p {
        Some(p) => {
            let pairs: Vec<(&Example, &Example)> =
                data_candidates.iter().map(|&e| (e, p)).collect();
            let keep = below_batch(mode, &pairs);
            data_candidates
                .into_iter()
                .zip(keep)
                .filter(|&(_e, k)| k)
                .map(|(e, _k)| e)
                .collect()
        }
        None => data_candidates,
    };
    let f_refs: Vec<&Example> = f.iter().collect();
    // Process candidates in bounded chunks: each chunk's checks run as one
    // parallel batch, and a counterexample found in an early chunk skips the
    // remaining chunks entirely (bounding the work past a sequential early
    // exit to one chunk).  Above: rows = left-hand sides, so per-candidate
    // answers read columns; below: rows = candidates.
    const CANDIDATE_CHUNK: usize = 32;
    for chunk in eligible.chunks(CANDIDATE_CHUNK) {
        let above = below_cross(mode, &f_refs, chunk);
        let below_m = below_cross(mode, chunk, &d_refs);
        for (i, e) in chunk.iter().enumerate() {
            if !above.any_in_col(i) && !below_m.any_in_row(i) {
                return DualityOutcome::no(
                    "found a data example that is neither above the left-hand side nor below the right-hand side",
                    Some((*e).clone()),
                );
            }
        }
    }

    DualityOutcome::unknown(
        "no counterexample found within the search budget; the pair may or may not be a duality",
    )
}

/// Keeps only the homomorphism-minimal members of `f` (enough to determine
/// the upward closure).
fn antichain_min(f: &[Example], mode: Mode) -> Vec<Example> {
    let mut keep = vec![true; f.len()];
    for i in 0..f.len() {
        for j in 0..f.len() {
            if i != j && keep[i] && keep[j] && below(mode, &f[j], &f[i]) {
                // f[j] ≤ f[i]; drop f[i] unless they are equivalent and j > i.
                if !below(mode, &f[i], &f[j]) || j < i {
                    keep[i] = false;
                }
            }
        }
    }
    f.iter()
        .zip(keep)
        .filter(|&(_e, k)| k)
        .map(|(e, _k)| e.clone())
        .collect()
}

/// Exhaustive duality check over a unary-only schema: up to homomorphic
/// equivalence, a data example is determined by the set of "types" (sets of
/// unary relations) realised by its elements plus the types of its
/// distinguished elements, so all of them can be enumerated.
fn exhaustive_unary(
    schema: &Arc<Schema>,
    arity: usize,
    f: &[Example],
    d: &[Example],
    p: Option<&Example>,
    mode: Mode,
) -> DualityOutcome {
    let rels: Vec<_> = schema.rel_ids().collect();
    let n = rels.len();
    let types: Vec<u32> = (1u32..(1 << n)).collect(); // non-empty label sets
    let type_sets: Vec<Vec<u32>> = subsets_nonempty(&types);
    for set in &type_sets {
        // Enumerate distinguished tuples over the chosen types.
        let tuples = tuples_over(set, arity);
        for dist_types in tuples {
            let e = build_unary_example(schema, &rels, set, &dist_types);
            if let Some(p) = p {
                if !below(mode, &e, p) {
                    continue;
                }
            }
            let above_f = f.iter().any(|fe| below(mode, fe, &e));
            let below_d = d.iter().any(|de| below(mode, &e, de));
            if above_f == below_d {
                return DualityOutcome::no(
                    "exhaustive unary enumeration found a violation of the duality equation",
                    Some(e),
                );
            }
        }
    }
    DualityOutcome::yes("exhaustive verification over the unary-only schema")
}

fn subsets_nonempty(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for mask in 1u64..(1 << items.len()) {
        let mut s = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                s.push(item);
            }
        }
        out.push(s);
    }
    out
}

fn tuples_over(set: &[u32], arity: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::new();
        for t in &out {
            for &s in set {
                let mut t2 = t.clone();
                t2.push(s);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

fn build_unary_example(
    schema: &Arc<Schema>,
    rels: &[cqfit_data::RelId],
    element_types: &[u32],
    dist_types: &[u32],
) -> Example {
    let mut inst = Instance::new(schema.clone());
    let mut value_of_type = std::collections::HashMap::new();
    for (i, &t) in element_types.iter().enumerate() {
        let v = inst.add_value(format!("t{i}"));
        for (ri, &rel) in rels.iter().enumerate() {
            if t & (1 << ri) != 0 {
                inst.add_fact(rel, &[v]).expect("unary fact");
            }
        }
        value_of_type.insert(t, v);
    }
    let dist = dist_types.iter().map(|t| value_of_type[t]).collect();
    Example::new(inst, dist)
}

/// A directed cycle of the given length over one binary relation, with the
/// distinguished tuple repeating the first vertex.
fn cycle_example(
    schema: &Arc<Schema>,
    rel: cqfit_data::RelId,
    len: usize,
    arity: usize,
) -> Example {
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..len).map(|i| inst.add_value(format!("c{i}"))).collect();
    for i in 0..len {
        inst.add_fact(rel, &[vs[i], vs[(i + 1) % len]])
            .expect("cycle fact");
    }
    let dist = (0..arity).map(|i| vs[i % len]).collect();
    Example::new(inst, dist)
}

/// A directed path with `len` edges over one binary relation.
fn path_example(schema: &Arc<Schema>, rel: cqfit_data::RelId, len: usize, arity: usize) -> Example {
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..=len).map(|i| inst.add_value(format!("p{i}"))).collect();
    for i in 0..len {
        inst.add_fact(rel, &[vs[i], vs[i + 1]]).expect("path fact");
    }
    let dist = (0..arity).map(|i| vs[i % (len + 1)]).collect();
    Example::new(inst, dist)
}

/// The `depth`-unraveling of a pointed instance over a binary schema, as an
/// example rooted at the tuple of distinguished elements (only meaningful for
/// unary pointed instances; returns `None` otherwise or on non-binary
/// schemas).
fn unravel(p: &Example, depth: usize) -> Option<Example> {
    if p.arity() != 1 || !p.instance().schema().is_binary() {
        return None;
    }
    let inst = p.instance();
    let schema = inst.schema().clone();
    let root_val = p.distinguished()[0];
    let mut out = Instance::new(schema.clone());
    let root = out.add_value(format!("[{}]", inst.label(root_val)));
    // BFS over paths.
    let mut frontier = vec![(root, root_val)];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &(node, val) in &frontier {
            for rel in schema.rel_ids() {
                match schema.arity(rel) {
                    1 => {
                        if inst.contains_fact(rel, &[val]) {
                            out.add_fact(rel, &[node]).ok();
                        }
                    }
                    2 => {
                        for &fid in inst.facts_with_rel(rel) {
                            let fact = inst.fact(fid);
                            if fact.args[0] == val {
                                let child = out.add_value(format!(
                                    "{}.{}",
                                    out.label(node).to_owned(),
                                    inst.label(fact.args[1])
                                ));
                                out.add_fact(rel, &[node, child]).ok();
                                next.push((child, fact.args[1]));
                            }
                            if fact.args[1] == val {
                                let child = out.add_value(format!(
                                    "{}.{}⁻",
                                    out.label(node).to_owned(),
                                    inst.label(fact.args[0])
                                ));
                                out.add_fact(rel, &[child, node]).ok();
                                next.push((child, fact.args[0]));
                            }
                        }
                    }
                    _ => return None,
                }
            }
        }
        frontier = next;
    }
    // Unary facts of the last layer.
    for &(node, val) in &frontier {
        for rel in schema.rel_ids().filter(|r| schema.arity(*r) == 1) {
            if inst.contains_fact(rel, &[val]) {
                out.add_fact(rel, &[node]).ok();
            }
        }
    }
    Some(Example::new(out, vec![root]))
}

/// A random data example over the schema with at most `max_elements`
/// elements, or `None` if the sampled instance has no facts.
fn random_example(
    schema: &Arc<Schema>,
    arity: usize,
    max_elements: usize,
    rng: &mut StdRng,
) -> Option<Example> {
    let n = rng.gen_range(1..=max_elements);
    let density: f64 = rng.gen_range(0.05..0.6);
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..n).map(|i| inst.add_value(format!("r{i}"))).collect();
    for rel in schema.rel_ids() {
        let k = schema.arity(rel);
        let mut tuple = vec![0usize; k];
        loop {
            if rng.gen_bool(density) {
                let args: Vec<Value> = tuple.iter().map(|&i| vs[i]).collect();
                inst.add_fact(rel, &args).ok();
            }
            // Advance the mixed-radix counter over [n]^k.
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                tuple[pos] += 1;
                if tuple[pos] < n {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
    }
    if inst.is_empty() {
        return None;
    }
    let active: Vec<Value> = inst.active_domain();
    let dist: Vec<Value> = (0..arity)
        .map(|_| active[rng.gen_range(0..active.len())])
        .collect();
    Some(Example::new(inst, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::parse_example;
    use cqfit_data::Schema;

    /// Example 2.15 of the paper: ({P∧Q}, {P∧R, Q∧R}) over unary P, Q, R is a
    /// homomorphism duality — wait, the paper's duality is
    /// ({e1}, {e2, e3}) with e1 = {P(a), Q(b)}, e2 = {P(a), R(a)},
    /// e3 = {Q(a), R(a)}.
    #[test]
    fn paper_example_2_15_is_a_duality() {
        let schema = Schema::binary_schema(["P", "Q", "R"], []);
        let e1 = parse_example(&schema, "P(a)\nQ(b)").unwrap();
        let e2 = parse_example(&schema, "P(a)\nR(a)").unwrap();
        let e3 = parse_example(&schema, "Q(a)\nR(a)").unwrap();
        let out = check_hom_duality(&[e1], &[e2, e3], &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::Yes, "{}", out.reason);
    }

    #[test]
    fn dropping_one_right_hand_side_breaks_the_duality() {
        let schema = Schema::binary_schema(["P", "Q", "R"], []);
        let e1 = parse_example(&schema, "P(a)\nQ(b)").unwrap();
        let e2 = parse_example(&schema, "P(a)\nR(a)").unwrap();
        let out = check_hom_duality(&[e1], &[e2], &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::No);
        assert!(out.counterexample.is_some());
    }

    /// Example 2.14 (Gallai–Hasse–Roy–Vitaver): ({P_n}, {T_{n-1}}) is a
    /// duality.  The bounded check cannot *confirm* it on a binary schema,
    /// but it must not refute it; and it must refute wrong variants.
    #[test]
    fn ghrv_duality_not_refuted_and_wrong_variant_refuted() {
        let schema = Schema::digraph();
        let path4 = {
            // Directed path with 4 edges.
            parse_example(&schema, "R(a,b)\nR(b,c)\nR(c,d)\nR(d,e)").unwrap()
        };
        let order3 = {
            // Transitive tournament on 4 vertices = linear order of length 3.
            parse_example(&schema, "R(a,b)\nR(a,c)\nR(a,d)\nR(b,c)\nR(b,d)\nR(c,d)").unwrap()
        };
        let ok = check_hom_duality(
            std::slice::from_ref(&path4),
            std::slice::from_ref(&order3),
            &DualityConfig::default(),
        );
        assert_ne!(ok.certainty, Certainty::No, "{}", ok.reason);

        // ({P_4}, {T_2}) is not a duality: T_3 itself is a counterexample.
        let order2 = parse_example(&schema, "R(a,b)\nR(a,c)\nR(b,c)").unwrap();
        let bad = check_hom_duality(&[path4], &[order2], &DualityConfig::default());
        assert_eq!(bad.certainty, Certainty::No);
    }

    #[test]
    fn non_c_acyclic_left_hand_side_is_refuted() {
        let schema = Schema::digraph();
        let loop_ex = parse_example(&schema, "R(a,a)").unwrap();
        let edge = parse_example(&schema, "R(a,b)").unwrap();
        let out = check_hom_duality(&[loop_ex], &[edge], &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::No);
    }

    #[test]
    fn left_below_right_is_refuted() {
        let schema = Schema::binary_schema(["P", "Q", "R"], []);
        let f = parse_example(&schema, "P(a)").unwrap();
        let d = parse_example(&schema, "P(a)\nQ(a)").unwrap();
        let out = check_hom_duality(&[f], &[d], &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::No);
    }

    /// Example 3.10(3): over the schema {R}, (∅, {K2}) is not a duality
    /// because odd cycles are neither above anything in ∅ (vacuously they
    /// are: no, the empty F means *nothing* is above F, so every example must
    /// be below K2) nor 2-colorable.
    #[test]
    fn empty_left_with_k2_right_is_refuted() {
        let schema = Schema::digraph();
        let k2 = parse_example(&schema, "R(a,b)\nR(b,a)").unwrap();
        let out = check_hom_duality(&[], &[k2], &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::No);
        let cx = out.counterexample.unwrap();
        assert!(cx.size() >= 3, "an odd cycle witnesses the failure");
    }

    #[test]
    fn relativized_duality_restricts_the_domain() {
        // Over the digraph schema, relativize to p = a single directed edge.
        // Then ({edge}, {}) is a duality relative to p: every e → p either
        // has an edge (and then edge → e) or is empty… the empty example is
        // below nothing in D and above nothing in F, so it is a
        // counterexample unless it admits a homomorphism from the edge — it
        // does not.  Hence the pair is *not* a duality relative to p, and the
        // check must find the empty-ish counterexample or stay Unknown; it
        // must never say Yes.
        let schema = Schema::digraph();
        let edge = parse_example(&schema, "R(a,b)").unwrap();
        let p = edge.clone();
        let out = check_relativized_duality(
            std::slice::from_ref(&edge),
            &[],
            &p,
            &DualityConfig::default(),
        );
        assert_ne!(out.certainty, Certainty::Yes);

        // ({}, {edge}) relative to p = edge *is* a duality (everything below
        // the edge is below the edge); the check must not refute it.
        let out = check_relativized_duality(
            &[],
            std::slice::from_ref(&edge),
            &p,
            &DualityConfig::default(),
        );
        assert_ne!(out.certainty, Certainty::No, "{}", out.reason);
    }

    #[test]
    fn simulation_duality_smoke() {
        let schema = Schema::binary_schema(["A"], ["R"]);
        // p: a → a loop with A; F = {R(x,y),A(y) as a tree example};
        // D = {single A-labelled point}.  The tree R(x,y),A(y) simulates into
        // every e ⪯ p that has an outgoing R-edge to an A-element; examples
        // below p without such an edge are below the single point iff they
        // are a lone A-point… the single point with A but also an R-loop is
        // below p, not above F?  It is above F (it simulates F), fine.  We
        // only check that the procedure runs and does not crash, and refutes
        // an obviously wrong pair.
        let p = parse_example(&schema, "R(a,a)\nA(a)\n* a").unwrap();
        let f = parse_example(&schema, "R(x,y)\nA(y)\n* x").unwrap();
        let wrong_d = parse_example(&schema, "R(b,b)\nA(b)\n* b").unwrap();
        // F below D relative to p → refuted.
        let out = check_simulation_duality(&[f], &[wrong_d], &p, &DualityConfig::default());
        assert_eq!(out.certainty, Certainty::No);
    }
}
