//! The simulated filesystem: per-inode buffered-vs-durable bytes,
//! per-directory durable entry tables, fault injection, and seeded crash
//! images.
//!
//! The model tracks exactly the distinctions the write-ahead log's
//! correctness depends on:
//!
//! * **Content durability is per inode.**  Every inode carries its live
//!   (`data`) and last-synced (`durable`) byte vectors; `sync_data` /
//!   `sync_all` copy live over durable.  A crash keeps a *seeded prefix*
//!   of the unsynced suffix — which is how torn mid-record tails arise.
//! * **Entry durability is per directory.**  Creates, renames, and
//!   unlinks change the live entry table immediately but the durable
//!   table only at `sync_parent_dir`.  A crash applies a seeded subset of
//!   the pending entry changes (per path: keep the live or the durable
//!   version), so an un-dir-synced create may vanish, a pre-rename log
//!   may reappear, and an unlinked file may survive — every state real
//!   fsync semantics allow.
//! * **Handles address inodes, not paths** (POSIX): a handle taken
//!   before a rename keeps writing the original inode — the exact hazard
//!   the store's compaction reopen path guards against.
//!
//! Faults ([`FaultPlan`]): a permanent crash at an operation count
//! (every later operation fails, as if the disk disappeared — pair with
//! [`SimFs::crash_image`]), a one-shot short write, and a one-shot
//! failed sync that leaves durability unchanged.

use crate::splitmix;
use cqfit_env::{Fs, FsFile, OpenMode};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Scripted failures for one simulated run.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Once the global operation counter reaches this value, that
    /// operation and every later one fails — the process has, as far as
    /// the store can tell, lost its disk.  Combine with
    /// [`SimFs::crash_image`] to model the machine crash itself.
    pub crash_at_op: Option<u64>,
    /// Fail the nth `write_all` (0-based) after persisting only `keep`
    /// bytes of the buffer — a short write.  One-shot.
    pub fail_write: Option<(u64, usize)>,
    /// Fail the nth sync (`sync_data`, `sync_all`, or `sync_parent_dir`,
    /// 0-based) without making anything durable.  One-shot.
    pub fail_sync: Option<u64>,
    /// Block the nth `write_all` (0-based, the [`FaultPlan::fail_write`]
    /// coordinate space) until the gate flips true — a slow disk held
    /// mid-write.  The harness stalls a group-commit leader this way so
    /// concurrent appenders stage behind it, forcing a deterministic
    /// multi-record batch even on a single-CPU machine where natural
    /// contention never forms one.  The write succeeds once released.
    /// One-shot.
    pub stall_write: Option<(u64, Arc<AtomicBool>)>,
}

#[derive(Debug, Default)]
struct Inode {
    /// Live content (what reads through this filesystem observe).
    data: Vec<u8>,
    /// Content as of the last successful sync (what a crash preserves).
    durable: Vec<u8>,
}

#[derive(Debug, Default)]
struct State {
    plan: FaultPlan,
    ops: u64,
    writes: u64,
    syncs: u64,
    /// Every append-mode `write_all`, as `(inode, offset, bytes kept)` in
    /// execution order — the byte coordinates of each WAL write.  A span
    /// covering several records is a group-committed batch; the harness
    /// cuts inside those.
    write_log: Vec<(u64, usize, usize)>,
    next_inode: u64,
    dirs: BTreeSet<PathBuf>,
    /// Live directory entries: path → inode.
    live: BTreeMap<PathBuf, u64>,
    /// Durable directory entries (as of the last `sync_parent_dir` of
    /// each directory): path → inode.
    durable: BTreeMap<PathBuf, u64>,
    /// Inodes, kept alive even when unlinked (open handles and durable
    /// entries may still address them).
    inodes: HashMap<u64, Inode>,
}

impl State {
    /// Counts one filesystem operation and fails it if the crash point
    /// has been reached.
    fn tick(&mut self) -> io::Result<()> {
        let op = self.ops;
        self.ops += 1;
        match self.plan.crash_at_op {
            Some(n) if op >= n => Err(io::Error::other(format!(
                "simulated crash at fs op {n} (this is op {op})"
            ))),
            _ => Ok(()),
        }
    }

    /// `Some(keep)` when this `write_all` must fail short.
    fn write_fault(&mut self) -> Option<usize> {
        let w = self.writes;
        self.writes += 1;
        match self.plan.fail_write {
            Some((n, keep)) if w == n => {
                self.plan.fail_write = None;
                Some(keep)
            }
            _ => None,
        }
    }

    /// Whether this sync must fail (durability unchanged).
    fn sync_fault(&mut self) -> bool {
        let s = self.syncs;
        self.syncs += 1;
        match self.plan.fail_sync {
            Some(n) if s == n => {
                self.plan.fail_sync = None;
                true
            }
            _ => false,
        }
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("simulated: no such file {}", path.display()),
        )
    }
}

/// The simulated filesystem.  Cheap to share: wrap in an `Arc` and hand
/// clones to [`crate::SimEnv`] and the harness.
#[derive(Debug, Default)]
pub struct SimFs {
    state: Arc<Mutex<State>>,
}

impl SimFs {
    /// A fresh, empty, fault-free filesystem.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// A fresh filesystem with scripted faults.
    pub fn with_plan(plan: FaultPlan) -> SimFs {
        let fs = SimFs::default();
        fs.state.lock().expect("sim fs state").plan = plan;
        fs
    }

    /// Total filesystem operations performed so far (the coordinate
    /// space of [`FaultPlan::crash_at_op`]).
    pub fn op_count(&self) -> u64 {
        self.state.lock().expect("sim fs state").ops
    }

    /// Total `write_all` / sync calls so far (the coordinate spaces of
    /// [`FaultPlan::fail_write`] and [`FaultPlan::fail_sync`]).
    pub fn write_sync_counts(&self) -> (u64, u64) {
        let st = self.state.lock().expect("sim fs state");
        (st.writes, st.syncs)
    }

    /// The `(offset, len)` span of every append-mode `write_all` landing
    /// in `path`'s current inode, in execution order.  Under group
    /// commit one span may cover several newline-framed records — those
    /// are the intra-batch byte coordinates the harness seeds crash
    /// points at.
    pub fn append_write_spans(&self, path: &Path) -> Vec<(usize, usize)> {
        let st = self.state.lock().expect("sim fs state");
        let Some(&id) = st.live.get(path) else {
            return Vec::new();
        };
        st.write_log
            .iter()
            .filter(|(inode, _, _)| *inode == id)
            .map(|&(_, offset, len)| (offset, len))
            .collect()
    }

    /// Installs a file with the given bytes, fully durable, creating
    /// parent directories — bypasses fault injection and the operation
    /// counter.  This is how crash images are materialized onto a fresh
    /// filesystem for recovery.
    pub fn install(&self, path: &Path, bytes: &[u8]) {
        let mut st = self.state.lock().expect("sim fs state");
        let mut dir = path.parent();
        while let Some(d) = dir {
            st.dirs.insert(d.to_path_buf());
            dir = d.parent();
        }
        let id = st.next_inode;
        st.next_inode += 1;
        st.inodes.insert(
            id,
            Inode {
                data: bytes.to_vec(),
                durable: bytes.to_vec(),
            },
        );
        st.live.insert(path.to_path_buf(), id);
        st.durable.insert(path.to_path_buf(), id);
    }

    /// The live content of every file — the image a clean shutdown (or a
    /// mere process kill, which loses no page cache) leaves behind.
    pub fn live_files(&self) -> Vec<(PathBuf, Vec<u8>)> {
        let st = self.state.lock().expect("sim fs state");
        st.live
            .iter()
            .map(|(p, id)| (p.clone(), st.inodes[id].data.clone()))
            .collect()
    }

    /// One machine-crash image, seeded: per directory entry, the live or
    /// the durable version survives (seeded choice where they differ);
    /// per inode, the durable bytes plus a seeded prefix of any purely
    /// appended unsynced suffix.  Different seeds explore different
    /// members of the set of states real fsync semantics allow.
    pub fn crash_image(&self, seed: u64) -> Vec<(PathBuf, Vec<u8>)> {
        let st = self.state.lock().expect("sim fs state");
        let mut rng = seed ^ 0x5112_71DE_AD11_FE57;
        let mut contents: HashMap<u64, Vec<u8>> = HashMap::new();
        let paths: BTreeSet<&PathBuf> = st.live.keys().chain(st.durable.keys()).collect();
        let mut out = Vec::new();
        for path in paths {
            let live = st.live.get(path);
            let durable = st.durable.get(path);
            let chosen = if live == durable || splitmix(&mut rng) & 1 == 0 {
                live
            } else {
                durable
            };
            let Some(&id) = chosen else { continue };
            let content = contents
                .entry(id)
                .or_insert_with(|| crash_content(&st.inodes[&id], &mut rng))
                .clone();
            out.push((path.clone(), content));
        }
        out
    }
}

/// What an inode's bytes look like after a crash: everything synced,
/// plus — when the unsynced change is a pure append — a seeded prefix of
/// the unsynced tail (partial page writeback).  A diverging unsynced
/// rewrite survives as either the old or the new version.
fn crash_content(inode: &Inode, rng: &mut u64) -> Vec<u8> {
    let (durable, live) = (&inode.durable, &inode.data);
    if live.len() >= durable.len() && live[..durable.len()] == durable[..] {
        let extra = (splitmix(rng) as usize) % (live.len() - durable.len() + 1);
        live[..durable.len() + extra].to_vec()
    } else if splitmix(rng) & 1 == 0 {
        live.clone()
    } else {
        durable.clone()
    }
}

/// An open handle into a [`SimFs`] inode.
#[derive(Debug)]
pub struct SimFile {
    state: Arc<Mutex<State>>,
    inode: u64,
    mode: OpenMode,
    cursor: usize,
}

impl FsFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        if let Some((n, gate)) = &st.plan.stall_write {
            if st.writes == *n {
                // Spin with the filesystem lock held: the disk is busy.
                // Threads that only touch in-memory state (e.g. staging
                // into a WAL commit queue) keep running.
                let gate = Arc::clone(gate);
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                st.plan.stall_write = None;
            }
        }
        let short = st.write_fault();
        let inode = st.inodes.get_mut(&self.inode).expect("inode alive");
        let pos = match self.mode {
            OpenMode::Append => inode.data.len(),
            OpenMode::CreateTruncate | OpenMode::Write => self.cursor,
        };
        let n = short.map_or(buf.len(), |keep| keep.min(buf.len()));
        if inode.data.len() < pos {
            inode.data.resize(pos, 0);
        }
        let overlap = (inode.data.len() - pos).min(n);
        inode.data[pos..pos + overlap].copy_from_slice(&buf[..overlap]);
        inode.data.extend_from_slice(&buf[overlap..n]);
        self.cursor = pos + n;
        if matches!(self.mode, OpenMode::Append) {
            st.write_log.push((self.inode, pos, n));
        }
        match short {
            Some(keep) => Err(io::Error::other(format!(
                "simulated short write ({keep} of {} bytes)",
                buf.len()
            ))),
            None => Ok(()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.lock().expect("sim fs state").tick()
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_all()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        if st.sync_fault() {
            return Err(io::Error::other("simulated sync failure"));
        }
        let inode = st.inodes.get_mut(&self.inode).expect("inode alive");
        inode.durable = inode.data.clone();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        let inode = st.inodes.get_mut(&self.inode).expect("inode alive");
        inode.data.resize(len as usize, 0);
        Ok(())
    }
}

impl Fs for SimFs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn FsFile>> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        let inode = match mode {
            OpenMode::CreateTruncate => {
                let parent = path.parent().map(Path::to_path_buf).unwrap_or_default();
                if !st.dirs.contains(&parent) {
                    return Err(State::not_found(&parent));
                }
                match st.live.get(path) {
                    Some(&id) => {
                        // O_TRUNC: same inode, live content emptied; the
                        // truncation is not durable until a sync.
                        st.inodes.get_mut(&id).expect("inode alive").data.clear();
                        id
                    }
                    None => {
                        let id = st.next_inode;
                        st.next_inode += 1;
                        st.inodes.insert(id, Inode::default());
                        st.live.insert(path.to_path_buf(), id);
                        id
                    }
                }
            }
            OpenMode::Append | OpenMode::Write => match st.live.get(path) {
                Some(&id) => id,
                None => return Err(State::not_found(path)),
            },
        };
        Ok(Box::new(SimFile {
            state: Arc::clone(&self.state),
            inode,
            mode,
            cursor: 0,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        match st.live.get(path) {
            Some(id) => Ok(st.inodes[id].data.clone()),
            None => Err(State::not_found(path)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        let Some(id) = st.live.remove(from) else {
            return Err(State::not_found(from));
        };
        st.live.insert(to.to_path_buf(), id);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        match st.live.remove(path) {
            Some(_) => Ok(()),
            None => Err(State::not_found(path)),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        let mut dir = Some(path);
        while let Some(d) = dir {
            st.dirs.insert(d.to_path_buf());
            dir = d.parent();
        }
        Ok(())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        if !st.dirs.contains(path) {
            return Err(State::not_found(path));
        }
        Ok(st
            .live
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect())
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("sim fs state");
        st.tick()?;
        if st.sync_fault() {
            return Err(io::Error::other("simulated directory sync failure"));
        }
        let Some(parent) = path.parent().map(Path::to_path_buf) else {
            return Ok(());
        };
        st.durable.retain(|p, _| p.parent() != Some(&parent));
        let entries: Vec<(PathBuf, u64)> = st
            .live
            .iter()
            .filter(|(p, _)| p.parent() == Some(&parent))
            .map(|(p, id)| (p.clone(), *id))
            .collect();
        st.durable.extend(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(fs: &SimFs, path: &Path, mode: OpenMode) -> Box<dyn FsFile> {
        fs.open(path, mode).unwrap()
    }

    #[test]
    fn append_mode_writes_at_eof_regardless_of_truncation() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/f");
        drop(file(&fs, p, OpenMode::CreateTruncate));
        let mut h = file(&fs, p, OpenMode::Append);
        h.write_all(b"aaaa").unwrap();
        h.set_len(2).unwrap();
        h.write_all(b"bb").unwrap();
        assert_eq!(fs.read(p).unwrap(), b"aabb");
    }

    #[test]
    fn crash_keeps_synced_bytes_and_a_prefix_of_the_unsynced_tail() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/f");
        drop(file(&fs, p, OpenMode::CreateTruncate));
        fs.sync_parent_dir(p).unwrap();
        let mut h = file(&fs, p, OpenMode::Append);
        h.write_all(b"synced").unwrap();
        h.sync_data().unwrap();
        h.write_all(b"unsynced").unwrap();
        let mut lens = BTreeSet::new();
        for seed in 0..64 {
            let image = fs.crash_image(seed);
            let (_, bytes) = image.iter().find(|(q, _)| q == p).expect("file survives");
            assert!(bytes.starts_with(b"synced"), "synced bytes lost");
            assert!(b"syncedunsynced".starts_with(&bytes[..]));
            lens.insert(bytes.len());
        }
        assert!(lens.len() > 1, "seeds must explore different tear points");
    }

    #[test]
    fn un_dir_synced_create_may_vanish_a_dir_synced_unlink_stays_gone() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let kept = Path::new("/d/kept");
        let dropped = Path::new("/d/dropped");
        let pending = Path::new("/d/pending");
        for p in [kept, dropped] {
            let mut h = file(&fs, p, OpenMode::CreateTruncate);
            h.write_all(b"x").unwrap();
            h.sync_all().unwrap();
        }
        fs.sync_parent_dir(kept).unwrap();
        fs.remove_file(dropped).unwrap();
        fs.sync_parent_dir(dropped).unwrap(); // unlink durable
        drop(file(&fs, pending, OpenMode::CreateTruncate)); // no dir sync
        let (mut seen_pending, mut seen_missing) = (false, false);
        for seed in 0..64 {
            let image = fs.crash_image(seed);
            assert!(image.iter().any(|(p, _)| p == kept), "kept must survive");
            assert!(
                !image.iter().any(|(p, _)| p == dropped),
                "durable unlink resurrected"
            );
            match image.iter().any(|(p, _)| p == pending) {
                true => seen_pending = true,
                false => seen_missing = true,
            }
        }
        assert!(
            seen_pending && seen_missing,
            "an un-dir-synced create must be able to go either way"
        );
    }

    #[test]
    fn crash_at_op_fails_everything_from_that_point_on() {
        let fs = SimFs::with_plan(FaultPlan {
            crash_at_op: Some(3),
            ..FaultPlan::default()
        });
        fs.create_dir_all(Path::new("/d")).unwrap(); // op 0
        let mut h = file(&fs, Path::new("/d/f"), OpenMode::CreateTruncate); // op 1
        h.write_all(b"a").unwrap(); // op 2
        assert!(h.write_all(b"b").is_err()); // op 3: crashed
        assert!(h.sync_all().is_err());
        assert!(fs.read(Path::new("/d/f")).is_err());
    }

    #[test]
    fn short_write_and_failed_sync_are_one_shot() {
        let fs = SimFs::with_plan(FaultPlan {
            fail_write: Some((1, 2)),
            fail_sync: Some(0),
            ..FaultPlan::default()
        });
        fs.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/f");
        file(&fs, p, OpenMode::CreateTruncate);
        // Append mode, like the WAL: rollback via set_len keeps later
        // writes landing at the (restored) end of file.
        let mut h = file(&fs, p, OpenMode::Append);
        h.write_all(b"aa").unwrap(); // write 0
        assert!(h.sync_all().is_err(), "sync 0 fails");
        assert!(h.write_all(b"bbbb").is_err(), "write 1 fails short");
        assert_eq!(fs.read(p).unwrap(), b"aabb", "short write kept 2 bytes");
        h.set_len(2).unwrap(); // rollback, as the WAL would
        h.sync_all().unwrap();
        h.write_all(b"cc").unwrap();
        h.sync_all().unwrap();
        assert_eq!(fs.read(p).unwrap(), b"aacc");
    }

    #[test]
    fn handles_follow_inodes_across_rename() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let old = Path::new("/d/old");
        let new = Path::new("/d/new");
        let mut h = file(&fs, old, OpenMode::CreateTruncate);
        h.write_all(b"via-old-handle").unwrap();
        fs.rename(old, new).unwrap();
        h.write_all(b"!").unwrap();
        assert_eq!(fs.read(new).unwrap(), b"via-old-handle!");
        assert!(fs.read(old).is_err());
        assert_eq!(fs.read_dir(Path::new("/d")).unwrap(), vec![new]);
    }
}
