//! The deterministic scheduler: N tasks on real threads, exactly one
//! running at a time, with seeded switch decisions at
//! [`cqfit_env::Env::yield_point`]s.
//!
//! Each task runs exclusively between yield points, so `std` mutexes
//! inside the code under test are never contended *between registered
//! tasks* — which is what makes yielding safe under the call discipline
//! documented in `cqfit-env` (never yield while holding a lock another
//! registered task can block on).  Threads the code under test spawns
//! itself (e.g. the engine's scoped hom-computation pool) are not
//! registered and run freely inside their spawning task's time slice.
//!
//! The switch sequence derives entirely from the seed, so a failing
//! interleaving replays exactly from its seed.

use crate::splitmix;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Parked, eligible to be scheduled.
    Ready,
    /// The single task currently executing.
    Running,
    /// Finished (normally or by panic).
    Done,
}

#[derive(Debug, Default)]
struct Shared {
    states: Vec<TaskState>,
    current: Option<usize>,
    rng: u64,
}

impl Shared {
    /// Seeded pick among the ready tasks (possibly the one that just
    /// yielded).  `current` becomes `None` when nothing is ready.
    fn pick_next(&mut self) {
        let ready: Vec<usize> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TaskState::Ready)
            .map(|(i, _)| i)
            .collect();
        self.current = match ready.len() {
            0 => None,
            n => Some(ready[(splitmix(&mut self.rng) as usize) % n]),
        };
    }
}

thread_local! {
    /// `(scheduler identity, task id)` of the registered task running on
    /// this thread, if any.  Unregistered threads (the engine's own
    /// worker pools, the test runner) see `None` and never yield.
    static CURRENT_TASK: RefCell<Option<(usize, usize)>> = const { RefCell::new(None) };
}

/// The deterministic task scheduler.  Create one per simulated
/// execution, hand it to [`crate::SimEnv`], and drive tasks through
/// [`SimScheduler::run`].
#[derive(Debug)]
pub struct SimScheduler {
    shared: Mutex<Shared>,
    cv: Condvar,
}

impl SimScheduler {
    /// A scheduler whose every switch decision derives from `seed`.
    pub fn new(seed: u64) -> SimScheduler {
        SimScheduler {
            shared: Mutex::new(Shared {
                rng: seed ^ 0x5C4E_D01E,
                ..Shared::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Runs the tasks to completion under deterministic interleaving.
    /// Panics inside tasks are caught (so the run always drains) and
    /// returned as messages.
    ///
    /// # Errors
    /// The panic messages of every task that panicked, in completion
    /// order.
    pub fn run(self: &Arc<Self>, tasks: Vec<Box<dyn FnOnce() + Send>>) -> Result<(), Vec<String>> {
        {
            let mut sh = self.shared.lock().expect("scheduler state");
            sh.states = vec![TaskState::Ready; tasks.len()];
            sh.current = None;
        }
        let panics: Mutex<Vec<String>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (id, task) in tasks.into_iter().enumerate() {
                let sched = Arc::clone(self);
                let panics = &panics;
                scope.spawn(move || {
                    CURRENT_TASK.with(|c| *c.borrow_mut() = Some((sched.identity(), id)));
                    sched.wait_turn(id);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panics
                            .lock()
                            .expect("panic list")
                            .push(format!("task {id}: {msg}"));
                    }
                    CURRENT_TASK.with(|c| *c.borrow_mut() = None);
                    sched.finish(id);
                });
            }
            // Every task parks in `wait_turn` until this first pick.
            let mut sh = self.shared.lock().expect("scheduler state");
            sh.pick_next();
            drop(sh);
            self.cv.notify_all();
        });
        let panics = panics.into_inner().expect("panic list");
        if panics.is_empty() {
            Ok(())
        } else {
            Err(panics)
        }
    }

    /// Called from [`cqfit_env::Env::yield_point`]: if the calling thread
    /// is a task registered with *this* scheduler, park it and let the
    /// seeded pick decide who runs next.  No-op on unregistered threads.
    pub fn maybe_yield(self: &Arc<Self>) {
        let me = self.identity();
        let id = CURRENT_TASK.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(|&(owner, id)| (owner == me).then_some(id))
        });
        if let Some(id) = id {
            self.yield_now(id);
        }
    }

    fn wait_turn(&self, id: usize) {
        let mut sh = self.shared.lock().expect("scheduler state");
        while sh.current != Some(id) {
            sh = self.cv.wait(sh).expect("scheduler state");
        }
        sh.states[id] = TaskState::Running;
    }

    fn yield_now(&self, id: usize) {
        let mut sh = self.shared.lock().expect("scheduler state");
        debug_assert_eq!(sh.current, Some(id), "yield from a descheduled task");
        sh.states[id] = TaskState::Ready;
        sh.pick_next();
        if sh.current == Some(id) {
            sh.states[id] = TaskState::Running;
            return;
        }
        self.cv.notify_all();
        while sh.current != Some(id) {
            sh = self.cv.wait(sh).expect("scheduler state");
        }
        sh.states[id] = TaskState::Running;
    }

    fn finish(&self, id: usize) {
        let mut sh = self.shared.lock().expect("scheduler state");
        sh.states[id] = TaskState::Done;
        if sh.current == Some(id) {
            sh.pick_next();
        }
        drop(sh);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Runs three tasks that interleave at explicit yields and records
    /// the event order; the order must be seed-deterministic and must
    /// differ between (at least some) seeds.
    fn trace(seed: u64) -> Vec<u64> {
        let sched = Arc::new(SimScheduler::new(seed));
        let events = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..3u64)
            .map(|task| {
                let sched = Arc::clone(&sched);
                let events = Arc::clone(&events);
                Box::new(move || {
                    for step in 0..4u64 {
                        events.lock().unwrap().push(task * 10 + step);
                        sched.maybe_yield();
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        sched.run(tasks).expect("no panics");
        Arc::try_unwrap(events).unwrap().into_inner().unwrap()
    }

    #[test]
    fn interleavings_are_seed_deterministic_and_seed_sensitive() {
        let a1 = trace(7);
        let a2 = trace(7);
        assert_eq!(a1, a2, "same seed, same interleaving");
        assert_eq!(a1.len(), 12, "every step of every task ran");
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23]);
        // Per-task order is preserved even though tasks interleave.
        for task in 0..3u64 {
            let steps: Vec<u64> = a1.iter().filter(|e| *e / 10 == task).copied().collect();
            assert_eq!(
                steps,
                vec![task * 10, task * 10 + 1, task * 10 + 2, task * 10 + 3]
            );
        }
        assert!(
            (0..32).any(|s| trace(s) != a1),
            "some seed must produce a different interleaving"
        );
    }

    #[test]
    fn unregistered_threads_pass_through_yields() {
        let sched = Arc::new(SimScheduler::new(1));
        sched.maybe_yield(); // test thread is unregistered: must not hang
        let inner_ran = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![{
            let sched = Arc::clone(&sched);
            let inner_ran = Arc::clone(&inner_ran);
            Box::new(move || {
                // A thread the task spawns itself is unregistered and
                // runs freely within the task's slice.
                std::thread::scope(|s| {
                    s.spawn(|| {
                        sched.maybe_yield();
                        inner_ran.fetch_add(1, Ordering::SeqCst);
                    });
                });
                sched.maybe_yield();
                inner_ran.fetch_add(10, Ordering::SeqCst);
            })
        }];
        sched.run(tasks).expect("no panics");
        assert_eq!(inner_ran.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn a_panicking_task_is_reported_and_does_not_hang_the_run() {
        let sched = Arc::new(SimScheduler::new(3));
        let survivor = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| panic!("boom in task")), {
            let sched = Arc::clone(&sched);
            let survivor = Arc::clone(&survivor);
            Box::new(move || {
                sched.maybe_yield();
                survivor.store(1, Ordering::SeqCst);
            })
        }];
        let err = sched.run(tasks).expect_err("panic must surface");
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("boom in task"), "got {err:?}");
        assert_eq!(survivor.load(Ordering::SeqCst), 1, "other task completed");
    }
}
