//! `cqfit-sim` — deterministic simulation sweep for the durable fitting
//! stack.
//!
//! ```text
//! cqfit-sim [--seeds N] [--base-seed S] [--steps K] [--quick]
//! ```
//!
//! Runs `N` seeds (default 16) through the full exploration (interleaved
//! live run, exhaustive torn-tail cuts, seeded mid-run crashes, one-shot
//! write/sync faults, and network cut sweeps over the simulated wire)
//! and prints coverage.  Any invariant violation
//! prints the failing seed plus a one-line reproduction command and
//! exits non-zero.
//!
//! `CQFIT_SIM_SEED=<seed>` overrides everything and replays exactly that
//! one seed — the reproduction path printed on failure.

use cqfit_sim::{sweep, SimConfig};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut seeds: u64 = 16;
    let mut base_seed: u64 = 1;
    let mut config = SimConfig::default();

    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--seeds" => seeds = parse(arguments.next(), "--seeds"),
            "--base-seed" => base_seed = parse(arguments.next(), "--base-seed"),
            "--steps" => config.steps = parse(arguments.next(), "--steps"),
            "--quick" => config = SimConfig::smoke(),
            "--help" | "-h" => {
                println!(
                    "usage: cqfit-sim [--seeds N] [--base-seed S] [--steps K] [--quick]\n\
                     env:   CQFIT_SIM_SEED=<seed> replays a single seed"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Ok(value) = std::env::var("CQFIT_SIM_SEED") {
        match value.parse::<u64>() {
            Ok(seed) => {
                base_seed = seed;
                seeds = 1;
            }
            Err(_) => {
                eprintln!("CQFIT_SIM_SEED must be an unsigned integer, got {value:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "cqfit-sim: sweeping {seeds} seed(s) from {base_seed} \
         (steps {}, workspaces {}, crash points {}, fault points {}, net steps {})",
        config.steps, config.workspaces, config.crash_points, config.fault_points, config.net_steps
    );
    let started = Instant::now();
    let outcome = sweep(base_seed, seeds, &config);
    let elapsed = started.elapsed();

    let stats = outcome.stats;
    println!(
        "explored {} executions across {} crash/fault points in {:.2?} ({:.0} executions/s)",
        stats.executions,
        stats.crash_points,
        elapsed,
        stats.executions as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "torn-tail coverage: {} records cut at {} boundaries and {} mid-record bytes",
        stats.records, stats.boundary_cuts, stats.mid_record_cuts
    );
    println!(
        "network coverage: {} sessions; wire cut at {} frame boundaries and {} mid-frame bytes",
        stats.net_executions, stats.net_boundary_cuts, stats.net_mid_frame_cuts
    );
    println!(
        "pipelined coverage: {} group-committed batches cut {} times; \
         {} burst sessions over {} wire cuts (whole-batch replay each)",
        stats.group_batches,
        stats.group_boundary_cuts + stats.group_mid_cuts,
        stats.net_pipelined_executions,
        stats.net_pipelined_cuts
    );
    println!(
        "metric invariants: {} store runs and {} wire sessions cross-checked \
         ({} retries accounted one-for-one to injected cuts)",
        stats.metric_store_checks, stats.metric_net_checks, stats.metric_retries_accounted
    );
    println!(
        "trace coverage: {} traced sessions, {} spans causality-checked, \
         {} retry links verified; journal cut at {} slot boundaries and {} interior bytes",
        stats.trace_sessions,
        stats.trace_spans_checked,
        stats.trace_retry_links,
        stats.fr_boundary_cuts,
        stats.fr_mid_cuts
    );

    if outcome.failures.is_empty() {
        println!("all {seeds} seed(s) passed");
        ExitCode::SUCCESS
    } else {
        for (seed, message) in &outcome.failures {
            eprintln!("FAIL seed {seed}: {message}");
            eprintln!("reproduce: CQFIT_SIM_SEED={seed} cargo run --release -p cqfit-sim");
        }
        eprintln!("{} of {seeds} seed(s) failed", outcome.failures.len());
        ExitCode::FAILURE
    }
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs an unsigned integer argument"))
}
