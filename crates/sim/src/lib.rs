//! # cqfit-sim
//!
//! Deterministic simulation testing for the durable fitting stack
//! (FoundationDB / madsim style): the whole production code path —
//! `cqfit-store`'s write-ahead log and `cqfit-engine` on top of it — runs
//! unmodified against a **simulated filesystem** ([`SimFs`]) and a
//! **seeded deterministic scheduler** ([`SimScheduler`]), both injected
//! through the [`cqfit_env::Env`] abstraction introduced alongside this
//! crate.
//!
//! The harness ([`harness::explore`]) runs seeded churn workloads
//! (`cqfit_gen::churn_workload`) through crash→recover→compare loops and
//! checks three invariants on every execution:
//!
//! 1. **fold(log) == state** — the engine recovered from the surviving
//!    log bytes answers every question byte-identically to a storeless
//!    oracle driven with the surviving mutation prefix;
//! 2. **at-most-one-lost-ack** — a crash never loses an acknowledged
//!    mutation: the recovered revision is at least the acknowledged
//!    count (and at most the issued count);
//! 3. **drops-stay-dropped** — an acknowledged workspace drop never
//!    resurrects after recovery.
//!
//! Crash points are exhaustive where it matters: every record boundary
//! of a log and at least one mid-record byte per record (phase A), plus
//! seeded mid-run crashes with compaction in flight (phase B) and
//! short-write / failed-sync fault injection (phase C).
//!
//! Since PR 7 the simulator also covers the **network**: phase N runs a
//! real [`cqfit_engine::Server`] and resilient [`cqfit_engine::Client`]
//! over an in-memory [`SimNet`] (seeded partial frames, refused
//! connects, and connection cuts at every frame boundary and mid-frame),
//! checking three more invariants on every execution:
//!
//! 4. **acked-mutations-survive** — a mutation whose response reached the
//!    client is present in the final state, across any number of
//!    reconnects;
//! 5. **exactly-once retries** — a mutation retried after an ambiguous
//!    drop is applied once (revisions never double-bump): the final
//!    state is byte-identical to a never-dropped oracle's;
//! 6. **drain-replies** — shutdown drain answers every fully-received
//!    request instead of dropping the socket.
//!
//! Since PR 9 the harness also cross-checks the **observability layer**
//! (`cqfit-obs`, threaded through store, engine, server, and client) in
//! a dedicated phase M:
//!
//! 7. **metrics-count-reality** — the acked-append counter equals the
//!    oracle's acknowledged logged mutations, engine-level counters
//!    byte-match a storeless oracle's, compaction events agree with the
//!    compaction counter, a fault-free wire session reports zero
//!    retries, and every injected cut that consumed a request surfaces
//!    as exactly one client retry (batch replays appearing one-for-one
//!    in the server's memo-replay counter).
//!
//! Every failure message embeds the seed; reproduce with
//! `CQFIT_SIM_SEED=<seed> cargo run --release -p cqfit-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod fs;
pub mod harness;
pub mod net;
pub mod sched;

pub use env::SimEnv;
pub use fs::{FaultPlan, SimFs};
pub use harness::{explore, sweep, ExploreStats, SimConfig, SweepOutcome};
pub use net::{NetFaultPlan, SimNet};
pub use sched::SimScheduler;

/// One step of the splitmix64 sequence (the crate's only random source —
/// everything in the simulator derives from an explicit seed).
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
