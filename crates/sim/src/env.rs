//! The simulated environment: a [`SimFs`], a deterministic auto-ticking
//! clock, seeded randomness, and — when a [`SimScheduler`] is attached —
//! yield points that actually switch tasks.
//!
//! Hand an `Arc<SimEnv>` to `Store::open_with` and the entire stack built
//! on that store (the engine inherits the store's environment) performs
//! every effect through the simulation.

use crate::fs::SimFs;
use crate::net::SimNet;
use crate::sched::SimScheduler;
use crate::splitmix;
use cqfit_env::{Clock, Env, Fs, ManualClock, Net};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A fully simulated [`Env`]: everything a run observes — file contents,
/// clock readings, random draws, network transfers, scheduling decisions
/// — derives from the filesystem state, the seed, and nothing else.
#[derive(Debug)]
pub struct SimEnv {
    fs: Arc<SimFs>,
    clock: Arc<ManualClock>,
    sched: Option<Arc<SimScheduler>>,
    net: Option<Arc<SimNet>>,
    rng: AtomicU64,
}

impl SimEnv {
    /// An environment over `fs` with no scheduler (yield points are
    /// no-ops): single-threaded crash and fault exploration.
    pub fn new(fs: Arc<SimFs>, seed: u64) -> SimEnv {
        SimEnv {
            fs,
            // Auto-tick: every reading advances time by 1µs, so
            // duration-based code (uptime, drain deadlines) observes
            // strictly increasing, fully deterministic time.
            clock: Arc::new(ManualClock::with_auto_tick(Duration::from_micros(1))),
            sched: None,
            net: None,
            rng: AtomicU64::new(seed),
        }
    }

    /// An environment whose yield points switch between the scheduler's
    /// registered tasks: deterministic concurrency exploration.
    pub fn with_scheduler(fs: Arc<SimFs>, sched: Arc<SimScheduler>, seed: u64) -> SimEnv {
        SimEnv {
            sched: Some(sched),
            ..SimEnv::new(fs, seed)
        }
    }

    /// Attaches a simulated network: [`Env::net`] then resolves to it
    /// instead of the real one.  The caller builds the [`SimNet`] over
    /// this environment's clock ([`SimEnv::clock_handle`]) and scheduler
    /// so blocked reads, deadlines, and delivery yields all run on the
    /// same simulated time and task interleaving.
    pub fn with_net(mut self, net: Arc<SimNet>) -> SimEnv {
        self.net = Some(net);
        self
    }

    /// The underlying simulated filesystem (for crash images and fault
    /// counters; the `Env` trait only exposes it as a `&dyn Fs`).
    pub fn sim_fs(&self) -> &Arc<SimFs> {
        &self.fs
    }

    /// The simulated clock as a shareable handle (for building a
    /// [`SimNet`] over it, or advancing time from a test).
    pub fn clock_handle(&self) -> Arc<ManualClock> {
        Arc::clone(&self.clock)
    }

    /// The scheduler attached via [`SimEnv::with_scheduler`], if any.
    pub fn scheduler(&self) -> Option<Arc<SimScheduler>> {
        self.sched.clone()
    }
}

impl Env for SimEnv {
    fn fs(&self) -> &dyn Fs {
        self.fs.as_ref()
    }

    fn clock(&self) -> &dyn Clock {
        self.clock.as_ref()
    }

    fn yield_point(&self, _label: &str) {
        if let Some(sched) = &self.sched {
            sched.maybe_yield();
        }
    }

    fn net(&self) -> &dyn Net {
        match &self.net {
            Some(net) => net.as_ref(),
            None => cqfit_env::real_net(),
        }
    }

    fn rng_u64(&self) -> u64 {
        // Not a hot path in simulation: a mutex-free CAS loop would be
        // overkill, but stay lock-free anyway via fetch_update.
        let next = self
            .rng
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                let mut state = s;
                let _ = splitmix(&mut state);
                Some(state)
            })
            .expect("fetch_update with Some never fails");
        let mut state = next;
        splitmix(&mut state)
    }
}

/// A shared event log for assertions about interleavings — handy when a
/// harness wants to know *where* tasks switched, not just the outcome.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: Mutex<Vec<String>>,
}

impl TraceLog {
    /// Appends one event.
    pub fn push(&self, event: impl Into<String>) {
        self.events.lock().expect("trace log").push(event.into());
    }

    /// All events so far, in order.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().expect("trace log").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::OpenMode;
    use std::path::Path;

    #[test]
    fn sim_env_is_deterministic_per_seed() {
        let draws = |seed: u64| {
            let env = SimEnv::new(Arc::new(SimFs::new()), seed);
            (env.rng_u64(), env.rng_u64(), env.clock().monotonic())
        };
        assert_eq!(draws(9), draws(9));
        assert_ne!(draws(9).0, draws(10).0);
        let env = SimEnv::new(Arc::new(SimFs::new()), 0);
        let a = env.clock().monotonic();
        let b = env.clock().monotonic();
        assert!(b > a, "auto-tick makes time strictly increase");
        env.yield_point("no scheduler: must be a no-op");
    }

    #[test]
    fn env_routes_to_the_sim_fs() {
        let fs = Arc::new(SimFs::new());
        let env = SimEnv::new(Arc::clone(&fs), 0);
        env.fs().create_dir_all(Path::new("/d")).unwrap();
        let mut f = env
            .fs()
            .open(Path::new("/d/x"), OpenMode::CreateTruncate)
            .unwrap();
        f.write_all(b"hi").unwrap();
        assert_eq!(fs.read(Path::new("/d/x")).unwrap(), b"hi");
    }
}
