//! The exploration harness: seeded churn workloads driven through the
//! real store+engine stack on the simulated filesystem, crashed,
//! recovered, and compared against storeless oracle engines.
//!
//! One [`explore`] call runs eight phases for one seed:
//!
//! * **Phase 0 — interleaved live run.**  Several workspaces are mutated
//!   by concurrent tasks under the deterministic scheduler (plus a
//!   "ghost" workspace that is created and dropped), the run is repeated
//!   to confirm seed-determinism, and a crash-free reopen of the final
//!   image must match per-workspace oracles (fold(log) == state) with
//!   the ghost absent (drops-stay-dropped).
//! * **Phase A — exhaustive torn tails.**  `w0`'s log is cut at *every*
//!   record boundary and at ≥1 interior byte of *every* record; each cut
//!   recovers on a fresh simulated filesystem and must equal the oracle
//!   driven with exactly the surviving mutation prefix, with the sibling
//!   workspace intact and the ghost still gone.
//! * **Phase B — mid-run machine crashes.**  The operation counter is
//!   crashed at seeded points while a small compaction budget keeps
//!   snapshot rewrites in flight; recovery from a seeded crash image
//!   must satisfy acked ≤ revision ≤ issued (at-most-one-lost-ack) and
//!   match the oracle over the surviving prefix, and an acknowledged
//!   workspace drop must not resurrect.
//! * **Phase C — write/sync fault injection.**  One-shot short writes
//!   and failed syncs: the failed request stays unacknowledged, the
//!   rollback keeps the log clean, and both the live engine and a
//!   reopen-from-image equal the oracle over the acknowledged requests
//!   (including identical no-op behavior on removing an absent id).
//! * **Phase G — group-committed intra-batch torn tails.**  Concurrent
//!   appenders drive one workspace's log through the store's commit
//!   queue (real threads: the commit queue only batches under true
//!   concurrency, and every invariant checked is schedule-independent),
//!   until at least one `write_all` carries several records — a group
//!   commit.  The log is then cut at seeded intra-batch byte offsets —
//!   every record boundary inside the batched write plus interior bytes
//!   of every batched record — and each cut must recover to a record
//!   boundary of the *acked* prefix only: replayed records = complete
//!   lines before the cut, the torn tail is dropped, the on-disk log is
//!   truncated exactly to the boundary, and the folded state matches
//!   the surviving records.
//! * **Phase N — network fault injection.**  A scripted session speaks
//!   the real wire protocol (`Server::run_sequential` + resilient
//!   [`Client`]) over a seeded [`SimNet`] under the deterministic
//!   scheduler.  A fault-free baseline must equal the in-process oracle
//!   byte-for-byte and records every frame boundary; the wire is then
//!   cut once per execution — before the first byte, at every frame
//!   boundary, and inside every frame — and the client's transcript must
//!   *still* equal the never-dropped oracle's: acknowledged mutations
//!   survive the reconnect, retried mutations apply exactly once
//!   (revisions never double-bump), and a drain always answers
//!   fully-received requests.  The same script is then re-swept through
//!   the *pipelined* client — the whole session as one burst, every cut
//!   forcing a whole-batch replay under the same request ids — so the
//!   window-deep idempotency memo is exercised end-to-end too.
//! * **Phase M — metric cross-checks.**  The observability registry
//!   (`cqfit-obs`, threaded through store, engine, server, and client)
//!   must *count reality*: a fault-free durable churn run's acked-append
//!   counter must equal the oracle's acknowledged logged mutations, its
//!   engine-level counters (computed fits, hom/core cache hits) must
//!   byte-match a storeless oracle's, compaction events must agree with
//!   the compaction counter, and — over the simulated wire — a fault-free
//!   session must report zero retries while every injected cut that
//!   consumed a request must surface as *exactly one* client retry (with
//!   reconnects and backoff sleeps in lock-step) and batch replays must
//!   show up in the server's memo-replay counter.
//! * **Phase T — causal tracing and the flight recorder.**  Traced
//!   durable sessions (call-by-call and pipelined, fault-free and under
//!   seeded wire cuts) must each yield a coherent span forest across the
//!   combined client+server capture: every span's parent exists in the
//!   same trace, every retry span's `retry_of` link names a live sibling
//!   attempt, spans nest inside their parents (same-side exactly; across
//!   the wire the start ordering), and every acknowledged append's trace
//!   reaches a `store.fsync` span carrying the same commit batch.  The
//!   flight-recorder journal is then cut at every slot boundary and
//!   inside every slot: each cut must decode — and fully recover via
//!   `FlightRecorder::open` — to exactly the spans journaled before it,
//!   and a wrapped journal must decode to the newest generation only.
//!
//! Every divergence returns an `Err` whose message embeds the seed.

use crate::fs::{FaultPlan, SimFs};
use crate::net::{NetFaultPlan, SimNet};
use crate::sched::SimScheduler;
use crate::{splitmix, SimEnv};
use cqfit_engine::{
    Client, Engine, EngineConfig, ExamplePayload, FitMode, Polarity, QueryClass, Request, Response,
    RetryPolicy, Server,
};
use cqfit_env::{Env, Fs};
use cqfit_gen::{churn_workload, resolve_churn, RandomConfig, ResolvedChurnOp};
use cqfit_obs::{
    decode_journal, FlightRecorder, TraceContext, TraceSpan, FR_FILE_NAME, FR_HEADER_BYTES,
    FR_SLOT_BYTES,
};
use cqfit_store::{LogRecord, Store, StoreConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The simulated data directory (purely virtual: nothing touches disk).
const DATA_DIR: &str = "/sim/data";

/// Workload sizing for one seed's exploration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Churn steps per workspace.
    pub steps: usize,
    /// Concurrent workspaces in the interleaved phase (≥ 2: phase A cuts
    /// `w0` and checks `w1` stayed intact).
    pub workspaces: usize,
    /// Seeded mid-run machine-crash executions (phase B).
    pub crash_points: usize,
    /// Seeded write/sync fault executions (phase C).
    pub fault_points: usize,
    /// Churn steps in the scripted network session (phase N).  The wire
    /// is cut at every frame boundary and inside every frame, so the
    /// execution count grows roughly linearly with this.
    pub net_steps: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            steps: 18,
            workspaces: 2,
            crash_points: 5,
            fault_points: 4,
            net_steps: 10,
        }
    }
}

impl SimConfig {
    /// A reduced configuration for tier-1 (debug-build) test runs.
    pub fn smoke() -> SimConfig {
        SimConfig {
            steps: 10,
            workspaces: 2,
            crash_points: 2,
            fault_points: 2,
            net_steps: 4,
        }
    }
}

/// What one seed's exploration covered.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreStats {
    /// Crash→recover→compare loops executed.
    pub executions: u64,
    /// Distinct crash / fault injection points exercised.
    pub crash_points: u64,
    /// Phase-A cuts landing exactly on a record boundary.
    pub boundary_cuts: u64,
    /// Phase-A cuts landing inside a record (torn tails).
    pub mid_record_cuts: u64,
    /// Log records subjected to exhaustive cutting.
    pub records: u64,
    /// Phase-G multi-record group-committed writes observed.
    pub group_batches: u64,
    /// Phase-G cuts landing on a record boundary inside a batched write.
    pub group_boundary_cuts: u64,
    /// Phase-G cuts landing inside a record of a batched write.
    pub group_mid_cuts: u64,
    /// Phase-N network sessions executed (baselines + one per cut).
    pub net_executions: u64,
    /// Phase-N wire cuts landing exactly on a frame boundary.
    pub net_boundary_cuts: u64,
    /// Phase-N wire cuts landing inside a frame (partial delivery).
    pub net_mid_frame_cuts: u64,
    /// Phase-N sessions driven through the pipelined client (one burst
    /// frame for the whole script), baselines + one per cut.
    pub net_pipelined_executions: u64,
    /// Wire cuts swept over the pipelined conversation (boundary and
    /// mid-frame combined — the burst makes frames coarse).
    pub net_pipelined_cuts: u64,
    /// Phase-M store-side runs whose metric registry was cross-checked
    /// against the oracle (exact append accounting, cache-counter
    /// equality, compaction-event consistency).
    pub metric_store_checks: u64,
    /// Phase-M wire sessions whose client/server counters were
    /// cross-checked (fault-free baselines and cut runs combined).
    pub metric_net_checks: u64,
    /// Client retries accounted one-for-one to injected wire cuts in
    /// phase M (every cut that consumed a request produced exactly one).
    pub metric_retries_accounted: u64,
    /// Phase-T traced durable wire sessions whose combined client+server
    /// span capture passed every causality invariant.
    pub trace_sessions: u64,
    /// Spans individually validated (parent linkage + interval nesting)
    /// across phase-T sessions.
    pub trace_spans_checked: u64,
    /// Retry spans whose `retry_of` link named a live sibling attempt in
    /// the same trace.
    pub trace_retry_links: u64,
    /// Flight-recorder journal cuts landing exactly on a slot boundary.
    pub fr_boundary_cuts: u64,
    /// Flight-recorder journal cuts landing inside a slot (torn slots).
    pub fr_mid_cuts: u64,
}

impl ExploreStats {
    /// Accumulates another exploration's counters.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.executions += other.executions;
        self.crash_points += other.crash_points;
        self.boundary_cuts += other.boundary_cuts;
        self.mid_record_cuts += other.mid_record_cuts;
        self.records += other.records;
        self.group_batches += other.group_batches;
        self.group_boundary_cuts += other.group_boundary_cuts;
        self.group_mid_cuts += other.group_mid_cuts;
        self.net_executions += other.net_executions;
        self.net_boundary_cuts += other.net_boundary_cuts;
        self.net_mid_frame_cuts += other.net_mid_frame_cuts;
        self.net_pipelined_executions += other.net_pipelined_executions;
        self.net_pipelined_cuts += other.net_pipelined_cuts;
        self.metric_store_checks += other.metric_store_checks;
        self.metric_net_checks += other.metric_net_checks;
        self.metric_retries_accounted += other.metric_retries_accounted;
        self.trace_sessions += other.trace_sessions;
        self.trace_spans_checked += other.trace_spans_checked;
        self.trace_retry_links += other.trace_retry_links;
        self.fr_boundary_cuts += other.fr_boundary_cuts;
        self.fr_mid_cuts += other.fr_mid_cuts;
    }
}

/// Outcome of a multi-seed [`sweep`].
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Aggregate coverage across all passing and failing seeds.
    pub stats: ExploreStats,
    /// `(seed, message)` for every seed whose invariants failed.
    pub failures: Vec<(u64, String)>,
}

/// Explores one seed through all eight phases.
///
/// # Errors
/// The first invariant violation, with the seed embedded for
/// reproduction (`CQFIT_SIM_SEED=<seed>`).
pub fn explore(seed: u64, cfg: &SimConfig) -> Result<ExploreStats, String> {
    let mut stats = ExploreStats::default();
    let (image, per_ws) = phase0_interleaved(seed, cfg, &mut stats)?;
    phase_a_exhaustive_cuts(seed, cfg, &image, &per_ws, &mut stats)?;
    phase_b_midrun_crashes(seed, cfg, &mut stats)?;
    phase_c_fault_injection(seed, cfg, &mut stats)?;
    phase_g_group_commit(seed, cfg, &mut stats)?;
    phase_n_network(seed, cfg, &mut stats)?;
    phase_m_metric_invariants(seed, cfg, &mut stats)?;
    phase_t_tracing(seed, cfg, &mut stats)?;
    phase_t_flight_recorder(seed, &mut stats)?;
    Ok(stats)
}

/// Runs [`explore`] for `count` seeds starting at `base_seed`,
/// collecting failures instead of stopping at the first.
pub fn sweep(base_seed: u64, count: u64, cfg: &SimConfig) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for seed in base_seed..base_seed.saturating_add(count) {
        match explore(seed, cfg) {
            Ok(stats) => outcome.stats.merge(&stats),
            Err(message) => outcome.failures.push((seed, message)),
        }
    }
    outcome
}

// ---------------------------------------------------------------------
// Workload construction
// ---------------------------------------------------------------------

fn polarity(positive: bool) -> Polarity {
    if positive {
        Polarity::Positive
    } else {
        Polarity::Negative
    }
}

fn create_request(ws: &str) -> Request {
    Request::CreateWorkspace {
        workspace: ws.into(),
        schema: cqfit_data::Schema::digraph().as_ref().clone(),
        arity: 0,
    }
}

/// The churn mutations (adds/removes, *without* the leading create) for
/// one workspace, fully determined by the seed.
fn churn_mutations(ws: &str, seed: u64, steps: usize) -> Vec<Request> {
    let schema = cqfit_data::Schema::digraph();
    let cfg = RandomConfig {
        num_values: 3,
        density: 0.35,
        arity: 0,
        num_positive: 3,
        num_negative: 3,
        seed,
    };
    resolve_churn(&churn_workload(&schema, &cfg, steps), 0)
        .into_iter()
        .map(|op| match op {
            ResolvedChurnOp::Add { positive, example } => Request::AddExample {
                workspace: ws.into(),
                polarity: polarity(positive),
                example: ExamplePayload::Structured(*example),
            },
            ResolvedChurnOp::Remove { positive, id } => Request::RemoveExample {
                workspace: ws.into(),
                polarity: polarity(positive),
                id,
            },
        })
        .collect()
}

/// The question battery compared between engines.  `WorkspaceInfo` comes
/// last: its `product_fresh` flag only converges once a fitting question
/// has forced the lazy product rebuild on both sides.  The `Plain` CQ
/// fit serializes the canonical CQ of the maintained product, so byte
/// equality certifies product equivalence.
fn questions(ws: &str) -> [Request; 4] {
    [
        Request::FittingExists {
            workspace: ws.into(),
            class: QueryClass::Cq,
        },
        Request::FittingExists {
            workspace: ws.into(),
            class: QueryClass::Ucq,
        },
        Request::Fit {
            workspace: ws.into(),
            class: QueryClass::Cq,
            mode: FitMode::Plain,
        },
        Request::WorkspaceInfo {
            workspace: ws.into(),
        },
    ]
}

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

type Image = Vec<(PathBuf, Vec<u8>)>;

fn store_config(compact_after: usize) -> StoreConfig {
    StoreConfig {
        dir: DATA_DIR.into(),
        compact_after,
        fsync: true,
    }
}

/// A compaction budget large enough to never trigger: keeps the
/// record-index ↔ request-index alignment phase A depends on.
const NO_COMPACTION: usize = usize::MAX >> 1;

/// Materializes an image onto a fresh simulated filesystem and recovers
/// a durable engine from it.
fn engine_from_image(image: &Image, compact_after: usize, seed: u64) -> Result<Engine, String> {
    let fs = Arc::new(SimFs::new());
    for (path, bytes) in image {
        fs.install(path, bytes);
    }
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(fs, seed));
    let store = Store::open_with(store_config(compact_after), env)
        .map_err(|e| format!("seed {seed}: store open on image failed: {e}"))?;
    Engine::with_store(EngineConfig::default(), store)
        .map(|(engine, _)| engine)
        .map_err(|e| format!("seed {seed}: recovery on image failed: {e}"))
}

/// Byte-compares the question battery between an engine under test and
/// its oracle.
fn compare_answers(
    got: &Engine,
    oracle: &Engine,
    ws: &str,
    context: &str,
    seed: u64,
) -> Result<(), String> {
    for question in questions(ws) {
        let want = serde::to_string(&oracle.handle(&question));
        let have = serde::to_string(&got.handle(&question));
        if have != want {
            return Err(format!(
                "seed {seed}: {context}: {question:?} diverged\n  oracle: {want}\n  got:    {have}"
            ));
        }
    }
    Ok(())
}

fn list_names(engine: &Engine) -> Vec<String> {
    match engine.handle(&Request::ListWorkspaces) {
        Response::Workspaces { names } => names,
        other => panic!("list_workspaces answered {other:?}"),
    }
}

/// Drives requests, requiring every response to be ok (fault-free
/// phases and oracle replays).
fn drive_ok(engine: &Engine, requests: &[Request], context: &str, seed: u64) -> Result<(), String> {
    for request in requests {
        let response = engine.handle(request);
        if !response.is_ok() {
            return Err(format!(
                "seed {seed}: {context}: {request:?} unexpectedly failed: {response:?}"
            ));
        }
    }
    Ok(())
}

fn workspace_revision(engine: &Engine, ws: &str) -> Option<u64> {
    match engine.handle(&Request::WorkspaceInfo {
        workspace: ws.into(),
    }) {
        Response::Info { revision, .. } => Some(revision),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Phase 0: interleaved live run under the deterministic scheduler
// ---------------------------------------------------------------------

/// One interleaved run: per-workspace mutator tasks plus a ghost task,
/// scheduled deterministically.  Returns the final (clean) filesystem
/// image.
fn interleaved_run(seed: u64, per_ws: &[Vec<Request>]) -> Result<Image, String> {
    let fs = Arc::new(SimFs::new());
    let sched = Arc::new(SimScheduler::new(seed));
    let env: Arc<dyn Env> = Arc::new(SimEnv::with_scheduler(
        Arc::clone(&fs),
        Arc::clone(&sched),
        seed,
    ));
    let store = Store::open_with(store_config(NO_COMPACTION), env)
        .map_err(|e| format!("seed {seed}: phase 0: store open failed: {e}"))?;
    let (engine, _) = Engine::with_store(EngineConfig::default(), store)
        .map_err(|e| format!("seed {seed}: phase 0: startup recovery failed: {e}"))?;
    let engine = Arc::new(engine);

    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for requests in per_ws {
        let engine = Arc::clone(&engine);
        let requests = requests.clone();
        tasks.push(Box::new(move || {
            for request in &requests {
                let response = engine.handle(request);
                assert!(response.is_ok(), "{request:?} failed: {response:?}");
            }
        }));
    }
    // The ghost: created, mutated, dropped — all acknowledged, so no
    // trace of it may survive any later recovery.
    let ghost_engine = Arc::clone(&engine);
    tasks.push(Box::new(move || {
        let steps = [
            create_request("ghost"),
            Request::AddExample {
                workspace: "ghost".into(),
                polarity: Polarity::Positive,
                example: ExamplePayload::Text("R(g,g)".into()),
            },
            Request::DropWorkspace {
                workspace: "ghost".into(),
            },
        ];
        for request in &steps {
            let response = ghost_engine.handle(request);
            assert!(response.is_ok(), "{request:?} failed: {response:?}");
        }
    }));

    sched
        .run(tasks)
        .map_err(|panics| format!("seed {seed}: phase 0: task panics: {panics:?}"))?;
    Ok(fs.live_files())
}

fn phase0_interleaved(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(Image, Vec<Vec<Request>>), String> {
    let per_ws: Vec<Vec<Request>> = (0..cfg.workspaces.max(2))
        .map(|i| {
            let ws = format!("w{i}");
            let mut requests = vec![create_request(&ws)];
            requests.extend(churn_mutations(&ws, seed ^ (0x1000 + i as u64), cfg.steps));
            requests
        })
        .collect();

    let image = interleaved_run(seed, &per_ws)?;
    let again = interleaved_run(seed, &per_ws)?;
    if image != again {
        return Err(format!(
            "seed {seed}: phase 0: same seed produced different filesystem images \
             (the scheduler or the stack is nondeterministic)"
        ));
    }

    // Crash-free reopen: fold(log) == state for every workspace, ghost
    // gone.
    let recovered = engine_from_image(&image, NO_COMPACTION, seed)?;
    let names = list_names(&recovered);
    if names.iter().any(|n| n == "ghost") {
        return Err(format!(
            "seed {seed}: phase 0: dropped workspace `ghost` resurrected on reopen"
        ));
    }
    for (i, requests) in per_ws.iter().enumerate() {
        let ws = format!("w{i}");
        let oracle = Engine::new(EngineConfig::default());
        drive_ok(&oracle, requests, "phase 0 oracle", seed)?;
        compare_answers(&recovered, &oracle, &ws, "phase 0: crash-free reopen", seed)?;
    }
    stats.executions += 1;
    Ok((image, per_ws))
}

// ---------------------------------------------------------------------
// Phase A: exhaustive cuts of w0's log
// ---------------------------------------------------------------------

fn phase_a_exhaustive_cuts(
    seed: u64,
    cfg: &SimConfig,
    image: &Image,
    per_ws: &[Vec<Request>],
    stats: &mut ExploreStats,
) -> Result<(), String> {
    let wal_path = PathBuf::from(DATA_DIR).join("ws-w0.wal");
    let full = image
        .iter()
        .find(|(p, _)| *p == wal_path)
        .map(|(_, b)| b.clone())
        .ok_or_else(|| format!("seed {seed}: phase A: w0 log missing from image"))?;

    // Record spans: starts[k]..starts[k+1] is record k (newline framed).
    let mut starts = vec![0usize];
    starts.extend(
        full.iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1),
    );
    let record_count = starts.len() - 1;
    let ends = &starts[1..];

    // Cut positions: every record boundary, plus ≥1 interior byte of
    // every record (its second byte, and its midpoint when long enough).
    // Boundary classification wins on collision (inserted last).
    let mut cuts: BTreeMap<usize, bool> = BTreeMap::new();
    for k in 0..record_count {
        let (start, end) = (starts[k], starts[k + 1]);
        cuts.insert(start + 1, true);
        if end - start >= 4 {
            cuts.insert(start + (end - start) / 2, true);
        }
    }
    for &boundary in &starts {
        cuts.insert(boundary, false);
    }

    // The sibling workspace must stay intact under every cut of w0's
    // log.  Its expected answers are computed once from its own oracle;
    // the fitting question comes first so `product_fresh` converges
    // before the info comparison (a recovered engine rebuilds lazily).
    let w1_probe = [
        Request::FittingExists {
            workspace: "w1".into(),
            class: QueryClass::Cq,
        },
        Request::WorkspaceInfo {
            workspace: "w1".into(),
        },
    ];
    let w1_expected: Option<Vec<String>> = if per_ws.len() > 1 {
        let oracle = Engine::new(EngineConfig::default());
        drive_ok(&oracle, &per_ws[1], "phase A w1 oracle", seed)?;
        Some(
            w1_probe
                .iter()
                .map(|q| serde::to_string(&oracle.handle(q)))
                .collect(),
        )
    } else {
        None
    };

    // The oracle is fed w0's requests progressively as cuts (ascending)
    // let more records survive.
    let oracle = Engine::new(EngineConfig::default());
    let mut oracle_fed = 0usize;
    for (&cut, &is_mid) in &cuts {
        let survived = ends.partition_point(|&end| end <= cut);
        let mut cut_image: Image = image
            .iter()
            .filter(|(p, _)| *p != wal_path)
            .cloned()
            .collect();
        cut_image.push((wal_path.clone(), full[..cut].to_vec()));

        let recovered = engine_from_image(&cut_image, NO_COMPACTION, seed)?;
        while oracle_fed < survived {
            let request = &per_ws[0][oracle_fed];
            let response = oracle.handle(request);
            if !response.is_ok() {
                return Err(format!(
                    "seed {seed}: phase A oracle: {request:?} failed: {response:?}"
                ));
            }
            oracle_fed += 1;
        }

        let names = list_names(&recovered);
        if names.iter().any(|n| n == "ghost") {
            return Err(format!("seed {seed}: phase A cut {cut}: ghost resurrected"));
        }
        if survived == 0 {
            if names.iter().any(|n| n == "w0") {
                return Err(format!(
                    "seed {seed}: phase A cut {cut}: w0 has no intact record but was restored"
                ));
            }
        } else {
            compare_answers(
                &recovered,
                &oracle,
                "w0",
                &format!("phase A cut {cut} ({survived} records survive)"),
                seed,
            )?;
        }
        if let Some(expected) = &w1_expected {
            for (question, want) in w1_probe.iter().zip(expected) {
                let got = serde::to_string(&recovered.handle(question));
                if got != *want {
                    return Err(format!(
                        "seed {seed}: phase A cut {cut}: sibling w1 damaged on \
                         {question:?}\n  want: {want}\n  got:  {got}"
                    ));
                }
            }
        }

        stats.executions += 1;
        stats.crash_points += 1;
        if is_mid {
            stats.mid_record_cuts += 1;
        } else {
            stats.boundary_cuts += 1;
        }
    }
    stats.records += record_count as u64;
    let _ = cfg;
    Ok(())
}

// ---------------------------------------------------------------------
// Phase B: mid-run machine crashes (with compaction in flight)
// ---------------------------------------------------------------------

/// Phase B/C compaction budget: small enough that churn triggers
/// snapshot rewrites, so crashes land inside the temp-file + rename +
/// dir-sync sequence too.
const SMALL_BUDGET: usize = 4;

fn phase_b_workload(seed: u64, cfg: &SimConfig) -> (Vec<Request>, Vec<Vec<Request>>) {
    let ws_names = ["wb0", "wb1"];
    let streams: Vec<Vec<Request>> = ws_names
        .iter()
        .enumerate()
        .map(|(i, ws)| churn_mutations(ws, seed ^ (0x2000 + i as u64), cfg.steps))
        .collect();
    let mut sequence = vec![
        create_request("wb0"),
        create_request("wb1"),
        create_request("drop_me"),
        Request::AddExample {
            workspace: "drop_me".into(),
            polarity: Polarity::Positive,
            example: ExamplePayload::Text("R(d,d)".into()),
        },
        Request::DropWorkspace {
            workspace: "drop_me".into(),
        },
    ];
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for step in 0..longest {
        for stream in &streams {
            if let Some(request) = stream.get(step) {
                sequence.push(request.clone());
            }
        }
    }
    (sequence, streams)
}

/// Whether a response acknowledges a *revision-bumping* mutation.  A
/// remove of an absent id is acknowledged but logs nothing and bumps
/// nothing — after a crash has started failing appends, such no-op acks
/// are common (the examples they target were never added) and must not
/// count toward the at-most-one-lost-ack bound.
fn bumps_revision(response: &Response) -> bool {
    matches!(
        response,
        Response::ExampleAdded { .. } | Response::ExampleRemoved { removed: true, .. }
    )
}

fn phase_b_midrun_crashes(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(), String> {
    let (sequence, streams) = phase_b_workload(seed, cfg);

    // Fault-free dry run sizes the crash-point space.
    let dry_fs = Arc::new(SimFs::new());
    {
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&dry_fs), seed));
        let store = Store::open_with(store_config(SMALL_BUDGET), env)
            .map_err(|e| format!("seed {seed}: phase B dry run: {e}"))?;
        let (engine, _) = Engine::with_store(EngineConfig::default(), store)
            .map_err(|e| format!("seed {seed}: phase B dry run: {e}"))?;
        drive_ok(&engine, &sequence, "phase B dry run", seed)?;
    }
    let total_ops = dry_fs.op_count();

    let mut rng = seed ^ 0xB00B_00B5;
    for _ in 0..cfg.crash_points {
        let crash_op = 1 + splitmix(&mut rng) % total_ops;
        let fs = Arc::new(SimFs::with_plan(FaultPlan {
            crash_at_op: Some(crash_op),
            ..FaultPlan::default()
        }));
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&fs), seed));
        let mut acked_muts = [0usize; 2];
        let mut drop_acked = false;
        // The store (or even startup) may already be inside the crash
        // window; every failure before or during driving just means
        // fewer acknowledged requests.
        if let Ok(store) = Store::open_with(store_config(SMALL_BUDGET), env) {
            if let Ok((engine, _)) = Engine::with_store(EngineConfig::default(), store) {
                for request in &sequence {
                    let response = engine.handle(request);
                    if !response.is_ok() {
                        continue;
                    }
                    match request {
                        Request::AddExample { workspace, .. }
                        | Request::RemoveExample { workspace, .. } => {
                            if let Some(i) = ["wb0", "wb1"].iter().position(|w| w == workspace) {
                                if bumps_revision(&response) {
                                    acked_muts[i] += 1;
                                }
                            }
                        }
                        Request::DropWorkspace { workspace } if workspace == "drop_me" => {
                            drop_acked = true;
                        }
                        _ => {}
                    }
                }
            }
        }

        let image = fs.crash_image(splitmix(&mut rng));
        let recovered = engine_from_image(&image, SMALL_BUDGET, seed)?;
        let names = list_names(&recovered);
        if drop_acked && names.iter().any(|n| n == "drop_me") {
            return Err(format!(
                "seed {seed}: phase B crash@{crash_op}: acknowledged drop of `drop_me` resurrected"
            ));
        }
        for (i, ws) in ["wb0", "wb1"].iter().enumerate() {
            let Some(revision) = workspace_revision(&recovered, ws) else {
                if acked_muts[i] > 0 {
                    return Err(format!(
                        "seed {seed}: phase B crash@{crash_op}: {ws} lost \
                         {} acknowledged mutations entirely",
                        acked_muts[i]
                    ));
                }
                continue;
            };
            let r = revision as usize;
            if r < acked_muts[i] {
                return Err(format!(
                    "seed {seed}: phase B crash@{crash_op}: {ws} recovered revision {r} \
                     below {} acknowledged mutations",
                    acked_muts[i]
                ));
            }
            // Replay the stream on the oracle until r revision-bumping
            // mutations have applied — the log records are exactly the
            // effective mutations in stream order, so this reproduces the
            // recovered state.  No-op removes along the way change
            // nothing on either side.
            let oracle = Engine::new(EngineConfig::default());
            drive_ok(&oracle, &[create_request(ws)], "phase B oracle", seed)?;
            let mut applied = 0usize;
            let mut stream = streams[i].iter();
            while applied < r {
                let Some(request) = stream.next() else {
                    return Err(format!(
                        "seed {seed}: phase B crash@{crash_op}: {ws} recovered revision {r} \
                         exceeds the effective mutations ever issued"
                    ));
                };
                let response = oracle.handle(request);
                if !response.is_ok() {
                    return Err(format!(
                        "seed {seed}: phase B oracle: {request:?} failed: {response:?}"
                    ));
                }
                if bumps_revision(&response) {
                    applied += 1;
                }
            }
            compare_answers(
                &recovered,
                &oracle,
                ws,
                &format!("phase B crash@{crash_op}: {ws} revision {r}"),
                seed,
            )?;
        }
        stats.executions += 1;
        stats.crash_points += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase C: short writes and failed syncs
// ---------------------------------------------------------------------

fn phase_c_fault_injection(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(), String> {
    let ws = "wc";
    let mut sequence = vec![create_request(ws)];
    sequence.extend(churn_mutations(ws, seed ^ 0x3000, cfg.steps));

    let dry_fs = Arc::new(SimFs::new());
    {
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&dry_fs), seed));
        let store = Store::open_with(store_config(SMALL_BUDGET), env)
            .map_err(|e| format!("seed {seed}: phase C dry run: {e}"))?;
        let (engine, _) = Engine::with_store(EngineConfig::default(), store)
            .map_err(|e| format!("seed {seed}: phase C dry run: {e}"))?;
        drive_ok(&engine, &sequence, "phase C dry run", seed)?;
    }
    let (writes, syncs) = dry_fs.write_sync_counts();

    let mut rng = seed ^ 0xFA17_FA17;
    for point in 0..cfg.fault_points {
        let plan = if point % 2 == 0 {
            FaultPlan {
                fail_write: Some((splitmix(&mut rng) % writes.max(1), {
                    (splitmix(&mut rng) % 48) as usize
                })),
                ..FaultPlan::default()
            }
        } else {
            FaultPlan {
                fail_sync: Some(splitmix(&mut rng) % syncs.max(1)),
                ..FaultPlan::default()
            }
        };
        let fault_desc = format!("{plan:?}");
        let fs = Arc::new(SimFs::with_plan(plan));
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&fs), seed));
        let store = Store::open_with(store_config(SMALL_BUDGET), env)
            .map_err(|e| format!("seed {seed}: phase C: store open failed: {e}"))?;
        let (engine, _) = Engine::with_store(EngineConfig::default(), store)
            .map_err(|e| format!("seed {seed}: phase C: startup failed: {e}"))?;

        // Drive through the fault: exactly the acknowledged requests
        // define the oracle's view.
        let acked: Vec<Request> = sequence
            .iter()
            .filter(|request| engine.handle(request).is_ok())
            .cloned()
            .collect();
        let oracle = Engine::new(EngineConfig::default());
        drive_ok(&oracle, &acked, "phase C oracle", seed)?;
        compare_answers(
            &engine,
            &oracle,
            ws,
            &format!("phase C live after fault {fault_desc}"),
            seed,
        )?;

        // Removing an id that was never assigned must no-op identically
        // on both sides (only successful removals are ever logged).
        let absent = Request::RemoveExample {
            workspace: ws.into(),
            polarity: Polarity::Positive,
            id: 999_999,
        };
        let want = serde::to_string(&oracle.handle(&absent));
        let have = serde::to_string(&engine.handle(&absent));
        if have != want {
            return Err(format!(
                "seed {seed}: phase C fault {fault_desc}: remove-of-absent diverged \
                 (oracle {want}, got {have})"
            ));
        }

        // Reopen from the surviving bytes: the log a faulted run leaves
        // behind still folds to the acknowledged state.
        let reopened = engine_from_image(&fs.live_files(), SMALL_BUDGET, seed)?;
        compare_answers(
            &reopened,
            &oracle,
            ws,
            &format!("phase C reopen after fault {fault_desc}"),
            seed,
        )?;

        stats.executions += 2;
        stats.crash_points += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase G: group-committed intra-batch torn tails
// ---------------------------------------------------------------------

/// Concurrent appender threads in phase G.  Real threads, not the
/// cooperative scheduler: the commit queue only forms multi-record
/// batches when one append stages while another holds the leader role,
/// which a run-to-yield scheduler never produces.  Every invariant the
/// phase checks is a property of the final log bytes, independent of
/// which interleaving happened to occur.
const GROUP_THREADS: usize = 6;

/// Builds the per-thread append streams for phase G: adds only (every
/// record is acked and revision-bumping), globally unique example ids.
fn phase_g_streams(seed: u64, cfg: &SimConfig) -> Vec<Vec<LogRecord>> {
    let schema = cqfit_data::Schema::digraph();
    let rc = RandomConfig {
        num_values: 3,
        density: 0.35,
        arity: 0,
        num_positive: 3,
        num_negative: 3,
        seed: seed ^ 0x6000,
    };
    let pool: Vec<LogRecord> =
        resolve_churn(&churn_workload(&schema, &rc, cfg.steps.max(8) * 8), 0)
            .into_iter()
            .filter_map(|op| match op {
                ResolvedChurnOp::Add { positive, example } => Some((positive, example)),
                ResolvedChurnOp::Remove { .. } => None,
            })
            .enumerate()
            .map(|(i, (positive, example))| LogRecord::AddExample {
                id: i as u64,
                positive,
                example: *example,
                request_id: None,
            })
            .collect();
    let mut streams: Vec<Vec<LogRecord>> = (0..GROUP_THREADS).map(|_| Vec::new()).collect();
    for (i, record) in pool.into_iter().enumerate() {
        streams[i % GROUP_THREADS].push(record);
    }
    streams
}

fn phase_g_group_commit(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(), String> {
    let ws = "wg";
    let wal_path = PathBuf::from(DATA_DIR).join(format!("ws-{ws}.wal"));
    let schema = cqfit_data::Schema::digraph();
    let streams = phase_g_streams(seed, cfg);
    let total_records: usize = streams.iter().map(Vec::len).sum();
    if total_records < GROUP_THREADS {
        return Err(format!(
            "seed {seed}: phase G: churn pool degenerated to {total_records} adds"
        ));
    }

    // Run concurrent appenders until some write carried ≥ 2 records (a
    // group commit).  Natural contention cannot be trusted to produce
    // one — on a single-CPU machine the instant sim-disk lets each
    // appender finish inside its scheduler quantum, so the fault plan
    // stalls the first post-create write (the first leader's batch,
    // write #1; write #0 is the Create record) until the gate opens.
    // Every other appender stages behind the held leader and the next
    // flush carries a multi-record batch deterministically.
    let mut committed: Option<(Image, Vec<(usize, usize)>)> = None;
    for attempt in 0..8u64 {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fs = Arc::new(SimFs::with_plan(FaultPlan {
            stall_write: Some((1, Arc::clone(&gate))),
            ..FaultPlan::default()
        }));
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&fs), seed));
        let store = Store::open_with(store_config(NO_COMPACTION), env)
            .map_err(|e| format!("seed {seed}: phase G: store open failed: {e}"))?;
        store
            .create_workspace(ws, &schema, 0)
            .map_err(|e| format!("seed {seed}: phase G: create failed: {e}"))?;
        let store = Arc::new(store);
        // All appenders release together: without the barrier, thread
        // spawn latency dwarfs an append and the streams run back to
        // back instead of contending (no batches would ever form).
        let barrier = Arc::new(std::sync::Barrier::new(streams.len()));
        std::thread::scope(|scope| {
            for records in &streams {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for record in records {
                        // Every append is acked: the durability claim
                        // below covers exactly these records.
                        store
                            .append(ws, record, || unreachable!("no compaction in phase G"))
                            .expect("phase G append acked");
                    }
                });
            }
            // Give every appender time to reach the commit queue behind
            // the stalled leader (the leader's spin loop yields, so the
            // stagers run even on one CPU), then release the disk.
            std::thread::sleep(Duration::from_millis(10 * (attempt + 1)));
            gate.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        store
            .sync_all()
            .map_err(|e| format!("seed {seed}: phase G: shutdown sync failed: {e}"))?;
        let image = fs.live_files();
        let full = image
            .iter()
            .find(|(p, _)| *p == wal_path)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| format!("seed {seed}: phase G: log missing"))?;
        let newline_count = |span: &(usize, usize)| {
            full[span.0..span.0 + span.1]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
        };
        let batched: Vec<(usize, usize)> = fs
            .append_write_spans(&wal_path)
            .into_iter()
            .filter(|span| newline_count(span) >= 2)
            .collect();
        if !batched.is_empty() {
            stats.group_batches += batched.len() as u64;
            committed = Some((image, batched));
            break;
        }
    }
    let Some((image, batched)) = committed else {
        return Err(format!(
            "seed {seed}: phase G: no multi-record group commit materialized in 8 attempts"
        ));
    };
    let full = image
        .iter()
        .find(|(p, _)| *p == wal_path)
        .map(|(_, b)| b.clone())
        .expect("checked above");
    let total_lines = full.iter().filter(|&&b| b == b'\n').count();
    if total_lines != total_records + 1 {
        return Err(format!(
            "seed {seed}: phase G: {total_lines} records on disk, expected \
             create + {total_records} acked appends"
        ));
    }

    // Cut inside the largest batched write: every record boundary within
    // the span, plus interior bytes of every record it covers.
    let &(span_off, span_len) = batched
        .iter()
        .max_by_key(|&&(_, len)| len)
        .expect("non-empty");
    let mut cuts: BTreeMap<usize, bool> = BTreeMap::new();
    let mut record_start = span_off;
    for (i, &byte) in full.iter().enumerate().skip(span_off).take(span_len) {
        if byte == b'\n' {
            cuts.insert(record_start + 1, true);
            if i - record_start >= 4 {
                cuts.insert(record_start + (i - record_start) / 2, true);
            }
            cuts.insert(i + 1, false);
            record_start = i + 1;
        }
    }
    for (&cut, &is_mid) in &cuts {
        // The acked prefix surviving this cut, straight from the bytes:
        // everything up to the last record boundary before the cut.
        let kept = full[..cut]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .expect("the create record precedes every batch");
        let survived_lines = full[..cut].iter().filter(|&&b| b == b'\n').count();

        let fs = Arc::new(SimFs::new());
        for (path, bytes) in &image {
            if *path == wal_path {
                fs.install(path, &bytes[..cut]);
            } else {
                fs.install(path, bytes);
            }
        }
        let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&fs), seed));
        let store = Store::open_with(store_config(NO_COMPACTION), env)
            .map_err(|e| format!("seed {seed}: phase G cut {cut}: open failed: {e}"))?;
        let (restored, report) = store
            .recover()
            .map_err(|e| format!("seed {seed}: phase G cut {cut}: recovery failed: {e}"))?;
        if report.records_replayed != survived_lines as u64
            || report.torn_bytes_dropped != (cut - kept) as u64
        {
            return Err(format!(
                "seed {seed}: phase G cut {cut}: replayed {} records / dropped {} \
                 torn bytes, expected {survived_lines} / {}",
                report.records_replayed,
                report.torn_bytes_dropped,
                cut - kept
            ));
        }
        // Truncation must land on a record boundary of the acked prefix
        // only — never mid-record, never past the cut.
        let on_disk = fs
            .read(&wal_path)
            .map_err(|e| format!("seed {seed}: phase G cut {cut}: read-back failed: {e}"))?;
        if on_disk != full[..kept] {
            return Err(format!(
                "seed {seed}: phase G cut {cut}: log truncated to {} bytes, \
                 expected the {kept}-byte acked record boundary",
                on_disk.len()
            ));
        }
        // fold(log) == state over the surviving records: counts derived
        // from the surviving lines themselves (commit order is
        // schedule-dependent; the invariant is not).
        let prefix = std::str::from_utf8(&full[..kept]).expect("JSONL log is UTF-8");
        let expected_pos = prefix.matches("\"polarity\":\"positive\"").count();
        let [workspace] = &restored[..] else {
            return Err(format!(
                "seed {seed}: phase G cut {cut}: {} workspaces restored",
                restored.len()
            ));
        };
        let snapshot = workspace.to_snapshot();
        let expected_revision = (survived_lines - 1) as u64;
        if snapshot.revision != expected_revision
            || snapshot.positives.len() != expected_pos
            || snapshot.negatives.len() != survived_lines - 1 - expected_pos
        {
            return Err(format!(
                "seed {seed}: phase G cut {cut}: folded state (revision {}, \
                 {}+{} examples) diverged from the {survived_lines}-record \
                 acked prefix ({expected_pos} positive)",
                snapshot.revision,
                snapshot.positives.len(),
                snapshot.negatives.len()
            ));
        }
        stats.executions += 1;
        stats.crash_points += 1;
        if is_mid {
            stats.group_mid_cuts += 1;
        } else {
            stats.group_boundary_cuts += 1;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase N: network fault injection over a simulated wire
// ---------------------------------------------------------------------

/// The scripted session for one seed: one workspace of churn plus the
/// question battery, all spoken over the wire.  (The trailing `Shutdown`
/// is issued by the client task itself, with its own lost-ack handling.)
fn phase_n_script(seed: u64, cfg: &SimConfig) -> Vec<Request> {
    let ws = "wn";
    let mut requests = vec![create_request(ws)];
    requests.extend(churn_mutations(ws, seed ^ 0x4000, cfg.net_steps));
    requests.extend(questions(ws));
    requests
}

/// One wire session's observable outcome (phases N and M).
struct NetSession {
    /// Serialized responses in request order.
    transcript: Vec<String>,
    /// Cumulative delivered bytes after each completed write — the frame
    /// boundaries later cut sweeps target.
    marks: Vec<u64>,
    /// `(retries, reconnects, backoff_sleeps)` from the client's metric
    /// registry, sampled after the script but *before* the shutdown
    /// exchange (whose tolerated refused-reconnects would otherwise
    /// pollute the counts).
    client_counters: (u64, u64, u64),
    /// The server-side engine, kept alive so phase M can cross-check its
    /// registry after the session.
    engine: Arc<Engine>,
}

/// Runs the script through a real `Server`/`Client` pair over a
/// [`SimNet`] under the deterministic scheduler, optionally cutting the
/// wire after `cut_at` delivered payload bytes.
///
/// With `pipelined`, the whole script goes out as one
/// [`Client::call_pipelined`] burst instead of call-by-call: a cut then
/// forces the client to replay the *entire* batch with the same request
/// ids over a fresh connection, so the already-applied prefix must be
/// answered from the idempotency memo for the transcript to match.
fn phase_n_session(
    seed: u64,
    script: &[Request],
    cut_at: Option<u64>,
    pipelined: bool,
) -> Result<NetSession, String> {
    let sched = Arc::new(SimScheduler::new(seed));
    let sim_env = SimEnv::with_scheduler(Arc::new(SimFs::new()), Arc::clone(&sched), seed);
    let net = SimNet::new(
        sim_env.clock_handle(),
        Some(Arc::clone(&sched)),
        seed,
        NetFaultPlan {
            refuse_connects: 0,
            cut_at,
        },
    );
    let env: Arc<dyn Env> = Arc::new(sim_env.with_net(Arc::clone(&net)));
    let engine = Arc::new(Engine::with_env(EngineConfig::default(), Arc::clone(&env)));
    let engine_probe = Arc::clone(&engine);
    let server = Server::bind("sim:harness", engine)
        .map_err(|e| format!("seed {seed}: phase N: bind failed: {e}"))?;

    let transcript = Arc::new(Mutex::new(Vec::new()));
    let counters = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
    let script_owned = script.to_vec();
    let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
        Box::new(move || {
            server.run_sequential().expect("phase N server run");
        }),
        {
            let env = Arc::clone(&env);
            let transcript = Arc::clone(&transcript);
            let counters = Arc::clone(&counters);
            Box::new(move || {
                let mut client =
                    Client::connect_retrying("sim:harness", Arc::clone(&env), 8).expect("connect");
                client.set_call_timeout(Some(Duration::from_secs(2)));
                client.set_retry(RetryPolicy {
                    attempts: 8,
                    base: Duration::from_millis(10),
                    cap: Duration::from_millis(160),
                });
                if pipelined {
                    let responses = client
                        .call_pipelined(&script_owned)
                        .expect("pipelined script");
                    let mut transcript = transcript.lock().expect("transcript");
                    for response in &responses {
                        transcript.push(serde::to_string(response));
                    }
                } else {
                    for request in &script_owned {
                        let response = client.call(request).expect("scripted call");
                        transcript
                            .lock()
                            .expect("transcript")
                            .push(serde::to_string(&response));
                    }
                }
                // Sample the resilience counters while they still reflect
                // the script alone: the shutdown below tolerates refused
                // reconnects, which would inflate them.
                let registry = client.registry();
                *counters.lock().expect("counters") = (
                    registry.client_retries.get(),
                    registry.client_reconnects.get(),
                    registry.client_backoff_sleeps.get(),
                );
                // Drive shutdown to completion.  A refused reconnect means
                // the server already processed the shutdown but the wire
                // died before the acknowledgment — success, not failure.
                match client.call(&Request::Shutdown) {
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {}
                    Err(e) => panic!("shutdown never acknowledged: {e}"),
                }
            })
        },
    ];
    sched.run(tasks).map_err(|panics| {
        format!("seed {seed}: phase N (cut {cut_at:?}): task panics: {panics:?}")
    })?;

    let transcript = transcript.lock().expect("transcript").clone();
    let client_counters = *counters.lock().expect("counters");
    Ok(NetSession {
        transcript,
        marks: net.write_marks(),
        client_counters,
        engine: engine_probe,
    })
}

/// Phase N: the scripted session must be wire-transparent (byte-equal to
/// the in-process oracle) when fault-free, deterministic per seed, and —
/// under a cut at any byte of the conversation — the resilient client's
/// reconnect-and-retry must reproduce the *identical* transcript:
/// acknowledged mutations survive, retried mutations apply exactly once
/// (the final `WorkspaceInfo` revision would expose a double-apply), and
/// drains answer fully-received requests.
fn phase_n_network(seed: u64, cfg: &SimConfig, stats: &mut ExploreStats) -> Result<(), String> {
    let script = phase_n_script(seed, cfg);

    // The never-dropped oracle: same requests, no network at all.
    let oracle = Engine::new(EngineConfig::default());
    let mut expected = Vec::with_capacity(script.len());
    for request in &script {
        let response = oracle.handle(request);
        if !response.is_ok() {
            return Err(format!(
                "seed {seed}: phase N oracle: {request:?} failed: {response:?}"
            ));
        }
        expected.push(serde::to_string(&response));
    }

    // Fault-free baseline, twice: deterministic and wire-transparent.
    let baseline = phase_n_session(seed, &script, None, false)?;
    let again = phase_n_session(seed, &script, None, false)?;
    if again.transcript != baseline.transcript || again.marks != baseline.marks {
        return Err(format!(
            "seed {seed}: phase N: same seed produced different sessions \
             (the network simulation is nondeterministic)"
        ));
    }
    if baseline.transcript != expected {
        return Err(format!(
            "seed {seed}: phase N: fault-free session diverged from the in-process \
             oracle\n  oracle: {expected:?}\n  wire:   {:?}",
            baseline.transcript
        ));
    }
    stats.net_executions += 2;

    // Cut the wire before the first byte, at every frame boundary, and
    // inside every frame of the baseline conversation.
    let mut cut_points: Vec<(u64, bool)> = vec![(0, false)];
    let mut prev = 0u64;
    for &mark in &baseline.marks {
        if mark - prev >= 2 {
            cut_points.push((prev + (mark - prev) / 2, true));
        }
        cut_points.push((mark, false));
        prev = mark;
    }
    for &(cut, is_mid) in &cut_points {
        let transcript = phase_n_session(seed, &script, Some(cut), false)?.transcript;
        if transcript != expected {
            return Err(format!(
                "seed {seed}: phase N cut@{cut}: transcript diverged from the \
                 never-dropped oracle (a lost acknowledged mutation or a \
                 double-applied retry)\n  oracle: {expected:?}\n  got:    {transcript:?}"
            ));
        }
        stats.net_executions += 1;
        if is_mid {
            stats.net_mid_frame_cuts += 1;
        } else {
            stats.net_boundary_cuts += 1;
        }
    }

    // The same script again, but sent as ONE pipelined burst (plus the
    // trailing Shutdown call).  The wire now carries a handful of coarse
    // frames, so a cut usually lands mid-burst: the server has applied a
    // prefix of the batch, and `call_pipelined` replays the whole batch
    // with the same request ids over a fresh connection.  Exactly-once
    // demands the applied prefix answers from the idempotency memo, so
    // the transcript must still byte-match the never-dropped oracle.
    let pipelined = phase_n_session(seed, &script, None, true)?;
    if pipelined.transcript != expected {
        return Err(format!(
            "seed {seed}: phase N pipelined: fault-free burst diverged from the \
             in-process oracle\n  oracle: {expected:?}\n  wire:   {:?}",
            pipelined.transcript
        ));
    }
    stats.net_pipelined_executions += 1;
    let mut pipe_cuts: Vec<u64> = vec![0];
    let mut prev = 0u64;
    for &mark in &pipelined.marks {
        if mark - prev >= 2 {
            pipe_cuts.push(prev + (mark - prev) / 2);
        }
        pipe_cuts.push(mark);
        prev = mark;
    }
    for &cut in &pipe_cuts {
        let transcript = phase_n_session(seed, &script, Some(cut), true)?.transcript;
        if transcript != expected {
            return Err(format!(
                "seed {seed}: phase N pipelined cut@{cut}: transcript diverged \
                 from the never-dropped oracle (a lost acknowledged mutation or \
                 a double-applied batch retry)\n  oracle: {expected:?}\n  \
                 got:    {transcript:?}"
            ));
        }
        stats.net_pipelined_executions += 1;
        stats.net_pipelined_cuts += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase M: metric cross-checks against the oracle
// ---------------------------------------------------------------------

fn metric_check(seed: u64, context: &str, name: &str, got: u64, want: u64) -> Result<(), String> {
    if got != want {
        return Err(format!(
            "seed {seed}: phase M {context}: metric `{name}` diverged from reality: \
             counted {got}, oracle says {want}"
        ));
    }
    Ok(())
}

/// Phase M: the observability registry must count reality.  Store side:
/// a fault-free durable churn run's append/batch/commit-wait accounting
/// must equal the acknowledged logged mutations (create + every
/// revision-bumping ack), its engine-level counters must byte-match a
/// storeless oracle driven with the same requests, and compaction events
/// must agree with the compaction counter.  Wire side: a fault-free
/// session reports zero retries, every injected cut that consumed a
/// request surfaces as exactly one client retry (reconnects and backoff
/// sleeps in lock-step), and a mid-burst pipelined cut shows the whole
/// applied batch replaying through the server's idempotency-memo
/// counter.
fn phase_m_metric_invariants(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(), String> {
    phase_m_store_metrics(seed, cfg, stats)?;
    phase_m_net_metrics(seed, cfg, stats)
}

fn phase_m_store_metrics(
    seed: u64,
    cfg: &SimConfig,
    stats: &mut ExploreStats,
) -> Result<(), String> {
    let ws = "wm";
    let mut sequence = vec![create_request(ws)];
    sequence.extend(churn_mutations(ws, seed ^ 0x5000, cfg.steps));
    sequence.extend(questions(ws));

    // Run 1: exact append accounting (compaction disabled so every acked
    // logged mutation is exactly one append through the commit queue).
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::new(SimFs::new()), seed));
    let store = Store::open_with(store_config(NO_COMPACTION), env)
        .map_err(|e| format!("seed {seed}: phase M store open: {e}"))?;
    let (engine, _) = Engine::with_store(EngineConfig::default(), store)
        .map_err(|e| format!("seed {seed}: phase M recovery: {e}"))?;
    let oracle_env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::new(SimFs::new()), seed));
    let oracle = Engine::with_env(EngineConfig::default(), oracle_env);

    // The oracle ack count: the create record plus every acknowledged
    // revision-bumping mutation (no-op removes are acked but log
    // nothing).
    let mut logged = 0u64;
    for request in &sequence {
        let response = engine.handle(request);
        let want = serde::to_string(&oracle.handle(request));
        let have = serde::to_string(&response);
        if have != want {
            return Err(format!(
                "seed {seed}: phase M: durable engine diverged from the oracle on \
                 {request:?}\n  oracle: {want}\n  got:    {have}"
            ));
        }
        if matches!(request, Request::CreateWorkspace { .. }) && response.is_ok() {
            logged += 1;
        }
        if bumps_revision(&response) {
            logged += 1;
        }
    }
    let registry = engine.registry();
    let context = "store run";
    metric_check(
        seed,
        context,
        "store_appends_acked",
        registry.store_appends_acked.get(),
        logged,
    )?;
    metric_check(
        seed,
        context,
        "store_batch_records (sum)",
        registry.store_batch_records.snapshot().sum,
        logged,
    )?;
    metric_check(
        seed,
        context,
        "store_append_ns (count)",
        registry.store_append_ns.count(),
        logged,
    )?;
    metric_check(
        seed,
        context,
        "store_commit_wait_ns (count)",
        registry.store_commit_wait_ns.count(),
        logged,
    )?;
    for (name, counter) in [
        ("store_append_errors", &registry.store_append_errors),
        ("store_rollbacks", &registry.store_rollbacks),
        ("store_poisons", &registry.store_poisons),
        ("store_compactions", &registry.store_compactions),
    ] {
        metric_check(seed, context, name, counter.get(), 0)?;
    }
    metric_check(
        seed,
        context,
        "engine_requests",
        registry.engine_requests.get(),
        sequence.len() as u64,
    )?;
    // Engine-level counters must match the storeless oracle exactly:
    // same requests, same cache configuration, same counting.
    let oracle_registry = oracle.registry();
    for (name, got, want) in [
        (
            "engine_fit_ns (count)",
            registry.engine_fit_ns.count(),
            oracle_registry.engine_fit_ns.count(),
        ),
        (
            "engine_memo_replays",
            registry.engine_memo_replays.get(),
            oracle_registry.engine_memo_replays.get(),
        ),
        (
            "hom_hits",
            registry.hom_hits.get(),
            oracle_registry.hom_hits.get(),
        ),
        (
            "hom_misses",
            registry.hom_misses.get(),
            oracle_registry.hom_misses.get(),
        ),
        (
            "core_hits",
            registry.core_hits.get(),
            oracle_registry.core_hits.get(),
        ),
        (
            "core_misses",
            registry.core_misses.get(),
            oracle_registry.core_misses.get(),
        ),
    ] {
        metric_check(seed, context, name, got, want)?;
    }
    if registry.engine_fit_ns.count() == 0 {
        return Err(format!(
            "seed {seed}: phase M {context}: the question battery computed no fits \
             (engine_fit_ns never recorded)"
        ));
    }
    stats.metric_store_checks += 1;

    // Run 2: with a small compaction budget the compaction counter, the
    // reclaimed-bytes counter, and the structured event ring must tell
    // the same story.
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::new(SimFs::new()), seed));
    let store = Store::open_with(store_config(SMALL_BUDGET), env)
        .map_err(|e| format!("seed {seed}: phase M compaction open: {e}"))?;
    let (engine, _) = Engine::with_store(EngineConfig::default(), store)
        .map_err(|e| format!("seed {seed}: phase M compaction recovery: {e}"))?;
    drive_ok(&engine, &sequence, "phase M compaction run", seed)?;
    let registry = engine.registry();
    let compactions = registry.store_compactions.get();
    if cfg.steps > SMALL_BUDGET && compactions == 0 {
        return Err(format!(
            "seed {seed}: phase M compaction run: {} churn steps over a budget of \
             {SMALL_BUDGET} records never compacted",
            cfg.steps
        ));
    }
    if compactions > 0 && registry.store_bytes_compacted.get() == 0 {
        return Err(format!(
            "seed {seed}: phase M compaction run: {compactions} compactions \
             reclaimed zero bytes"
        ));
    }
    let snap = registry.snapshot();
    let compaction_events = snap
        .events
        .iter()
        .filter(|event| event.kind == "store.compaction")
        .count() as u64;
    metric_check(
        seed,
        "compaction run",
        "store.compaction events vs store_compactions",
        compaction_events,
        compactions.min(128),
    )?;
    stats.metric_store_checks += 1;
    Ok(())
}

fn phase_m_net_metrics(seed: u64, cfg: &SimConfig, stats: &mut ExploreStats) -> Result<(), String> {
    let script = phase_n_script(seed, cfg);

    // Fault-free baseline: zero retries, every request executed exactly
    // once, the connection gauge drained, one request-latency sample and
    // one span per scripted request (the shutdown frame records neither).
    let baseline = phase_n_session(seed, &script, None, false)?;
    let context = "net baseline";
    let (retries, reconnects, sleeps) = baseline.client_counters;
    metric_check(seed, context, "client_retries", retries, 0)?;
    metric_check(seed, context, "client_reconnects", reconnects, 0)?;
    metric_check(seed, context, "client_backoff_sleeps", sleeps, 0)?;
    let registry = baseline.engine.registry();
    metric_check(
        seed,
        context,
        "engine_requests",
        registry.engine_requests.get(),
        script.len() as u64 + 1, // + the shutdown
    )?;
    metric_check(
        seed,
        context,
        "engine_memo_replays",
        registry.engine_memo_replays.get(),
        0,
    )?;
    let snap = registry.snapshot();
    if snap.gauge("server_connections") != 0 {
        return Err(format!(
            "seed {seed}: phase M {context}: connection gauge never drained: {}",
            snap.gauge("server_connections")
        ));
    }
    metric_check(
        seed,
        context,
        "server_request_ns (count)",
        snap.histogram("server_request_ns").map_or(0, |h| h.count),
        script.len() as u64,
    )?;
    metric_check(
        seed,
        context,
        "server spans",
        snap.spans.len() as u64,
        (script.len() as u64).min(128),
    )?;
    stats.metric_net_checks += 1;

    // Injected cuts that consume a request must surface as *exactly one*
    // client retry each, with reconnects and backoff sleeps in
    // lock-step, and every retried request either re-executes or replays
    // from the idempotency memo — never both, never neither.  Cuts stay
    // strictly inside the script portion: the last two frames are the
    // shutdown exchange, sampled after the counters.
    let script_marks = &baseline.marks[..baseline.marks.len().saturating_sub(2)];
    let mut cuts: Vec<u64> = vec![0];
    if let Some(&first) = script_marks.first() {
        if first >= 2 {
            cuts.push(first / 2); // inside the first frame
        }
    }
    if let Some(&mid) = script_marks.get(script_marks.len() / 2) {
        cuts.push(mid); // a mid-script frame boundary
    }
    for &cut in &cuts {
        let session = phase_n_session(seed, &script, Some(cut), false)?;
        let context = format!("net cut@{cut}");
        let (retries, reconnects, sleeps) = session.client_counters;
        metric_check(seed, &context, "client_retries", retries, 1)?;
        metric_check(seed, &context, "client_reconnects", reconnects, retries)?;
        metric_check(seed, &context, "client_backoff_sleeps", sleeps, retries)?;
        let registry = session.engine.registry();
        let executed = registry.engine_requests.get();
        let replayed = registry.engine_memo_replays.get();
        let floor = script.len() as u64 + 1;
        if executed + replayed < floor || executed + replayed > floor + retries {
            return Err(format!(
                "seed {seed}: phase M {context}: {executed} executions + {replayed} \
                 memo replays cannot account for {} requests and {retries} retries",
                script.len() + 1
            ));
        }
        stats.metric_net_checks += 1;
        stats.metric_retries_accounted += retries;
    }

    // Pipelined: cut at the first completed write of the burst
    // conversation.  Chunked delivery interleaves the server's early
    // replies with the client's still-in-flight burst, so the cut is
    // guaranteed to land with a *prefix* of the batch applied and its
    // replies lost — the replay of that prefix must come from the
    // idempotency memo (never re-execute), and the retry must be exactly
    // one.
    let pipelined = phase_n_session(seed, &script, None, true)?;
    let (retries, reconnects, sleeps) = pipelined.client_counters;
    metric_check(seed, "pipelined baseline", "client_retries", retries, 0)?;
    metric_check(
        seed,
        "pipelined baseline",
        "client_reconnects",
        reconnects,
        0,
    )?;
    metric_check(
        seed,
        "pipelined baseline",
        "client_backoff_sleeps",
        sleeps,
        0,
    )?;
    stats.metric_net_checks += 1;
    if let Some(&burst_mark) = pipelined.marks.first() {
        let session = phase_n_session(seed, &script, Some(burst_mark), true)?;
        let context = format!("pipelined cut@{burst_mark}");
        let (retries, reconnects, sleeps) = session.client_counters;
        metric_check(seed, &context, "client_retries", retries, 1)?;
        metric_check(seed, &context, "client_reconnects", reconnects, retries)?;
        metric_check(seed, &context, "client_backoff_sleeps", sleeps, retries)?;
        let registry = session.engine.registry();
        let executed = registry.engine_requests.get();
        let replayed = registry.engine_memo_replays.get();
        if replayed == 0 {
            return Err(format!(
                "seed {seed}: phase M {context}: the batch replay never touched the \
                 idempotency memo — an applied mutation was re-executed"
            ));
        }
        // Every script request once, the shutdown, plus re-executions of
        // requests delivered twice by the whole-batch replay; the sum
        // cannot exceed two full deliveries of the script.
        let floor = script.len() as u64 + 1;
        if executed + replayed <= floor || executed + replayed > floor + script.len() as u64 {
            return Err(format!(
                "seed {seed}: phase M {context}: {executed} executions + {replayed} \
                 memo replays cannot account for a whole-batch replay of {} requests",
                script.len()
            ));
        }
        stats.metric_net_checks += 1;
        stats.metric_retries_accounted += retries;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase T: causal tracing invariants and the flight-recorder journal
// ---------------------------------------------------------------------

/// One traced durable wire session: both sides' span captures plus the
/// counters and frame marks the causality checks need.
struct TraceSession {
    /// Cumulative delivered bytes after each completed write.
    marks: Vec<u64>,
    /// `(retries, reconnects, backoff_sleeps)`, sampled before the
    /// shutdown exchange (same rationale as [`NetSession`]).
    client_counters: (u64, u64, u64),
    /// The client's trace ring, read at the very end of the client task
    /// — after the shutdown exchange — so every server-side span still
    /// finds its wire-side parent in the union.
    client_spans: Vec<TraceSpan>,
    /// The server-side registry's trace ring after the session.
    server_spans: Vec<TraceSpan>,
}

/// Runs the script like [`phase_n_session`] but against a *durable*
/// engine (a real [`Store`] on the simulated filesystem), so span trees
/// run all the way down to `store.append` / `store.fsync`.
fn phase_t_session(
    seed: u64,
    script: &[Request],
    cut_at: Option<u64>,
    pipelined: bool,
) -> Result<TraceSession, String> {
    let sched = Arc::new(SimScheduler::new(seed));
    let sim_env = SimEnv::with_scheduler(Arc::new(SimFs::new()), Arc::clone(&sched), seed);
    let net = SimNet::new(
        sim_env.clock_handle(),
        Some(Arc::clone(&sched)),
        seed,
        NetFaultPlan {
            refuse_connects: 0,
            cut_at,
        },
    );
    let env: Arc<dyn Env> = Arc::new(sim_env.with_net(Arc::clone(&net)));
    let store = Store::open_with(store_config(NO_COMPACTION), Arc::clone(&env))
        .map_err(|e| format!("seed {seed}: phase T: store open failed: {e}"))?;
    let (engine, _) = Engine::with_store(EngineConfig::default(), store)
        .map_err(|e| format!("seed {seed}: phase T: recovery failed: {e}"))?;
    let engine = Arc::new(engine);
    let engine_probe = Arc::clone(&engine);
    let server = Server::bind("sim:harness", engine)
        .map_err(|e| format!("seed {seed}: phase T: bind failed: {e}"))?;

    let counters = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
    let client_spans = Arc::new(Mutex::new(Vec::new()));
    let script_owned = script.to_vec();
    let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
        Box::new(move || {
            server.run_sequential().expect("phase T server run");
        }),
        {
            let env = Arc::clone(&env);
            let counters = Arc::clone(&counters);
            let client_spans = Arc::clone(&client_spans);
            Box::new(move || {
                let mut client =
                    Client::connect_retrying("sim:harness", Arc::clone(&env), 8).expect("connect");
                client.set_call_timeout(Some(Duration::from_secs(2)));
                client.set_retry(RetryPolicy {
                    attempts: 8,
                    base: Duration::from_millis(10),
                    cap: Duration::from_millis(160),
                });
                if pipelined {
                    client
                        .call_pipelined(&script_owned)
                        .expect("pipelined script");
                } else {
                    for request in &script_owned {
                        client.call(request).expect("scripted call");
                    }
                }
                let registry = client.registry();
                *counters.lock().expect("counters") = (
                    registry.client_retries.get(),
                    registry.client_reconnects.get(),
                    registry.client_backoff_sleeps.get(),
                );
                match client.call(&Request::Shutdown) {
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {}
                    Err(e) => panic!("shutdown never acknowledged: {e}"),
                }
                *client_spans.lock().expect("client spans") = client.registry().traces();
            })
        },
    ];
    sched.run(tasks).map_err(|panics| {
        format!("seed {seed}: phase T (cut {cut_at:?}): task panics: {panics:?}")
    })?;

    let client_counters = *counters.lock().expect("counters");
    let client_spans = client_spans.lock().expect("client spans").clone();
    Ok(TraceSession {
        marks: net.write_marks(),
        client_counters,
        client_spans,
        server_spans: engine_probe.registry().traces(),
    })
}

/// Asserts the trace-causality invariants over one session's combined
/// client+server span capture; returns `(spans_checked, retry_links)`.
///
/// 1. Every span's parent exists in the same trace — no orphans, even
///    when a reply write died mid-frame.
/// 2. Every `retry_of` link names an existing *sibling* attempt (same
///    parent, same name) in the same trace that started no later, and
///    the links cover at least the sampled client-retry count.
/// 3. Spans nest: a child's interval lies within its parent's when both
///    were captured on the same side; across the wire only the start
///    ordering is asserted (a client attempt can finish before the
///    server reads its reply timestamp under the scheduler).
/// 4. Every acknowledged mutation's `store.append` reaches a
///    `store.fsync` span carrying the same commit batch.  Group commits
///    hang the fsync span off the batch *leader's* trace, so the link is
///    the batch number, not the trace id.
fn check_trace_causality(
    seed: u64,
    context: &str,
    session: &TraceSession,
    min_retry_links: u64,
) -> Result<(u64, u64), String> {
    let mut by_id: BTreeMap<(u128, u64), (&TraceSpan, bool)> = BTreeMap::new();
    for (spans, client_side) in [
        (&session.client_spans, true),
        (&session.server_spans, false),
    ] {
        for span in spans.iter() {
            if span.span_id == 0 {
                return Err(format!(
                    "seed {seed}: phase T {context}: span {:?} has a zero id",
                    span.name
                ));
            }
            if by_id
                .insert((span.trace_id, span.span_id), (span, client_side))
                .is_some()
            {
                return Err(format!(
                    "seed {seed}: phase T {context}: duplicate span id {:016x} in trace {:032x}",
                    span.span_id, span.trace_id
                ));
            }
        }
    }

    let mut checked = 0u64;
    for &(span, client_side) in by_id.values() {
        checked += 1;
        if span.parent_span_id == 0 {
            continue;
        }
        let Some(&(parent, parent_client)) = by_id.get(&(span.trace_id, span.parent_span_id))
        else {
            return Err(format!(
                "seed {seed}: phase T {context}: span {} {:016x} is orphaned — parent \
                 {:016x} missing from trace {:032x}",
                span.name, span.span_id, span.parent_span_id, span.trace_id
            ));
        };
        if client_side == parent_client {
            if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
                return Err(format!(
                    "seed {seed}: phase T {context}: span {} [{}, {}] escapes its parent \
                     {} [{}, {}]",
                    span.name,
                    span.start_ns,
                    span.end_ns,
                    parent.name,
                    parent.start_ns,
                    parent.end_ns
                ));
            }
        } else if span.start_ns < parent.start_ns {
            return Err(format!(
                "seed {seed}: phase T {context}: span {} started at {} before its \
                 wire-side parent {} at {}",
                span.name, span.start_ns, parent.name, parent.start_ns
            ));
        }
    }

    let mut retry_links = 0u64;
    for &(span, _) in by_id.values() {
        let Some(prev_hex) = span.annotation("retry_of") else {
            continue;
        };
        let Some(prev_id) = TraceContext::parse_span_id(prev_hex) else {
            return Err(format!(
                "seed {seed}: phase T {context}: unparseable retry_of link {prev_hex:?}"
            ));
        };
        let Some(&(prev, _)) = by_id.get(&(span.trace_id, prev_id)) else {
            return Err(format!(
                "seed {seed}: phase T {context}: retry span {:016x} links predecessor \
                 {prev_id:016x} that is missing from trace {:032x}",
                span.span_id, span.trace_id
            ));
        };
        if prev.parent_span_id != span.parent_span_id || prev.name != span.name {
            return Err(format!(
                "seed {seed}: phase T {context}: retry span {:016x}'s predecessor \
                 {prev_id:016x} is not a sibling attempt",
                span.span_id
            ));
        }
        if prev.start_ns > span.start_ns {
            return Err(format!(
                "seed {seed}: phase T {context}: retry span {:016x} started before its \
                 predecessor {prev_id:016x}",
                span.span_id
            ));
        }
        retry_links += 1;
    }
    if retry_links < min_retry_links {
        return Err(format!(
            "seed {seed}: phase T {context}: {retry_links} retry_of link(s) cannot cover \
             {min_retry_links} sampled client retries"
        ));
    }

    let mut appends = 0u64;
    for span in &session.server_spans {
        if span.name != "store.append" {
            continue;
        }
        appends += 1;
        let Some(batch) = span.annotation("batch") else {
            return Err(format!(
                "seed {seed}: phase T {context}: an acknowledged append resolved without \
                 a commit batch annotation"
            ));
        };
        let flushed = session
            .server_spans
            .iter()
            .any(|f| f.name == "store.fsync" && f.annotation("batch") == Some(batch));
        if !flushed {
            return Err(format!(
                "seed {seed}: phase T {context}: append batch {batch} was acknowledged \
                 but no fsync span carries it"
            ));
        }
    }
    if appends == 0 {
        return Err(format!(
            "seed {seed}: phase T {context}: no store.append spans — the traced session \
             never reached the log"
        ));
    }
    Ok((checked, retry_links))
}

/// Phase T (wire half): four traced durable sessions — call-by-call and
/// pipelined, fault-free and under a seeded wire cut — each validated by
/// [`check_trace_causality`].  The cut runs must produce retry spans
/// whose `retry_of` links are checked non-vacuously.
fn phase_t_tracing(seed: u64, cfg: &SimConfig, stats: &mut ExploreStats) -> Result<(), String> {
    let script = phase_n_script(seed, cfg);

    let baseline = phase_t_session(seed, &script, None, false)?;
    if baseline.client_counters != (0, 0, 0) {
        return Err(format!(
            "seed {seed}: phase T: fault-free baseline retried: {:?}",
            baseline.client_counters
        ));
    }
    let (checked, _) = check_trace_causality(seed, "trace baseline", &baseline, 0)?;
    stats.trace_sessions += 1;
    stats.trace_spans_checked += checked;

    // A mid-script frame boundary cut: the lost reply forces exactly one
    // retry, whose span must link its predecessor attempt.  Cuts stay
    // inside the script portion (the last two frames are the shutdown
    // exchange).
    let script_marks = &baseline.marks[..baseline.marks.len().saturating_sub(2)];
    if let Some(&mid) = script_marks.get(script_marks.len() / 2) {
        let session = phase_t_session(seed, &script, Some(mid), false)?;
        let (retries, _, _) = session.client_counters;
        if retries == 0 {
            return Err(format!(
                "seed {seed}: phase T cut@{mid}: the cut consumed no request — the \
                 retry-link invariant would be vacuous"
            ));
        }
        let (checked, links) =
            check_trace_causality(seed, &format!("trace cut@{mid}"), &session, retries)?;
        stats.trace_sessions += 1;
        stats.trace_spans_checked += checked;
        stats.trace_retry_links += links;
    }

    // The pipelined burst, fault-free and cut at its first completed
    // write — a guaranteed mid-batch loss forcing a whole-batch replay
    // under fresh attempt spans.
    let pipelined = phase_t_session(seed, &script, None, true)?;
    let (checked, _) = check_trace_causality(seed, "trace pipelined", &pipelined, 0)?;
    stats.trace_sessions += 1;
    stats.trace_spans_checked += checked;
    if let Some(&burst) = pipelined.marks.first() {
        let session = phase_t_session(seed, &script, Some(burst), true)?;
        let (retries, _, _) = session.client_counters;
        let (checked, links) = check_trace_causality(
            seed,
            &format!("trace pipelined cut@{burst}"),
            &session,
            retries,
        )?;
        stats.trace_sessions += 1;
        stats.trace_spans_checked += checked;
        stats.trace_retry_links += links;
    }
    Ok(())
}

/// A deterministic span for the journal cut sweep: distinct per index,
/// annotated, well under one slot.
fn fr_span(seed: u64, index: u64) -> TraceSpan {
    TraceSpan {
        trace_id: (u128::from(seed) << 64) | u128::from(index + 1),
        span_id: index + 1,
        parent_span_id: index, // zero for the first: a root
        name: format!("sim.fr.{index}"),
        start_ns: 1_000 * index,
        end_ns: 1_000 * index + 250,
        annotations: vec![("seed".into(), format!("{seed:#x}"))],
    }
}

/// Phase T (journal half): the flight recorder's crash story on the
/// simulated filesystem.  The journal is cut at every slot boundary and
/// at ≥1 interior byte of every slot; each cut must decode — and fully
/// recover through `FlightRecorder::open` on a fresh filesystem — to
/// exactly the spans journaled before it.  A torn header yields nothing,
/// and a wrapped journal decodes to the newest generation only.
fn phase_t_flight_recorder(seed: u64, stats: &mut ExploreStats) -> Result<(), String> {
    const SLOTS: usize = 8;
    let dir = PathBuf::from("/sim/fr");
    let path = dir.join(FR_FILE_NAME);
    let fs = Arc::new(SimFs::new());
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(Arc::clone(&fs), seed));
    let (recorder, recovered) = FlightRecorder::open(env, &dir, SLOTS, true)
        .map_err(|e| format!("seed {seed}: phase T: recorder open failed: {e}"))?;
    if !recovered.is_empty() {
        return Err(format!(
            "seed {seed}: phase T: a fresh journal recovered {} spans",
            recovered.len()
        ));
    }
    let spans: Vec<TraceSpan> = (0..6).map(|i| fr_span(seed, i)).collect();
    for span in &spans {
        recorder
            .record(span)
            .map_err(|e| format!("seed {seed}: phase T: record failed: {e}"))?;
    }
    let live = |fs: &SimFs| {
        fs.live_files()
            .into_iter()
            .find(|(p, _)| *p == path)
            .map(|(_, b)| b)
    };
    let bytes = live(&fs).ok_or_else(|| format!("seed {seed}: phase T: journal never written"))?;
    if bytes.len() != FR_HEADER_BYTES + spans.len() * FR_SLOT_BYTES {
        return Err(format!(
            "seed {seed}: phase T: journal is {} bytes, expected header + {} slots",
            bytes.len(),
            spans.len()
        ));
    }

    for kept in 0..=spans.len() {
        let cut = FR_HEADER_BYTES + kept * FR_SLOT_BYTES;
        let decoded = decode_journal(&bytes[..cut]);
        if decoded != spans[..kept] {
            return Err(format!(
                "seed {seed}: phase T: boundary cut after {kept} slot(s) decoded {} \
                 span(s) instead of the journaled prefix",
                decoded.len()
            ));
        }
        // The full open path must agree with the pure decoder: recovery
        // over the truncated image truncates the torn tail and returns
        // the same prefix.
        let crashed = Arc::new(SimFs::new());
        crashed.install(&path, &bytes[..cut]);
        let crashed_env: Arc<dyn Env> = Arc::new(SimEnv::new(crashed, seed));
        let (_, recovered) = FlightRecorder::open(crashed_env, &dir, SLOTS, true)
            .map_err(|e| format!("seed {seed}: phase T: reopen at cut {cut} failed: {e}"))?;
        if recovered != spans[..kept] {
            return Err(format!(
                "seed {seed}: phase T: reopen at boundary cut {cut} recovered {} span(s) \
                 instead of the journaled prefix of {kept}",
                recovered.len()
            ));
        }
        stats.fr_boundary_cuts += 1;
    }
    // ≥1 interior byte per slot: the torn slot is dropped, never a
    // partial or garbage span.
    for kept in 0..spans.len() {
        for offset in [FR_SLOT_BYTES / 3, FR_SLOT_BYTES - 1] {
            let cut = FR_HEADER_BYTES + kept * FR_SLOT_BYTES + offset;
            let decoded = decode_journal(&bytes[..cut]);
            if decoded != spans[..kept] {
                return Err(format!(
                    "seed {seed}: phase T: interior cut at byte {cut} decoded {} span(s) \
                     instead of dropping the torn slot",
                    decoded.len()
                ));
            }
            stats.fr_mid_cuts += 1;
        }
    }
    // A torn header yields nothing (and must not panic).
    if !decode_journal(&bytes[..FR_HEADER_BYTES - 3]).is_empty() {
        return Err(format!(
            "seed {seed}: phase T: a torn header decoded spans out of thin air"
        ));
    }

    // Wrap: drive past capacity; the live journal holds the newest
    // generation only, still strictly sequenced.
    let total = SLOTS as u64 + 3;
    let all: Vec<TraceSpan> = (0..total).map(|i| fr_span(seed, i)).collect();
    for span in &all[spans.len()..] {
        recorder
            .record(span)
            .map_err(|e| format!("seed {seed}: phase T: wrap record failed: {e}"))?;
    }
    let bytes =
        live(&fs).ok_or_else(|| format!("seed {seed}: phase T: wrapped journal missing"))?;
    let decoded = decode_journal(&bytes);
    if decoded != all[SLOTS..] {
        return Err(format!(
            "seed {seed}: phase T: wrapped journal decoded {} span(s) instead of the \
             newest generation of {}",
            decoded.len(),
            total as usize - SLOTS
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small seed through all seven phases: the harness's own smoke
    /// test (the exhaustive sweep runs via the `cqfit-sim` binary and
    /// the repo-level recovery suite).
    #[test]
    fn explore_smoke_seed_passes_all_phases() {
        let cfg = SimConfig {
            steps: 6,
            workspaces: 2,
            crash_points: 2,
            fault_points: 2,
            net_steps: 3,
        };
        let stats = explore(0xC0FFEE, &cfg).expect("invariants hold");
        assert!(stats.executions > 10, "stats: {stats:?}");
        assert!(stats.boundary_cuts >= 7, "every boundary cut: {stats:?}");
        assert!(
            stats.mid_record_cuts >= stats.records,
            "≥1 mid-record cut per record: {stats:?}"
        );
        assert_eq!(stats.records, 7, "create + 6 churn records: {stats:?}");
        // Phase G: at least one multi-record group commit formed, and its
        // batch was cut both on record boundaries and mid-record.
        assert!(stats.group_batches >= 1, "stats: {stats:?}");
        assert!(stats.group_boundary_cuts >= 2, "stats: {stats:?}");
        assert!(stats.group_mid_cuts >= 1, "stats: {stats:?}");
        // Phase N: create + 3 churn + 4 questions + shutdown = 9 calls =
        // 18 frames → 18 boundary cuts + the cut-before-the-first-byte,
        // ≥1 mid-frame cut per frame, plus the two baselines.
        assert_eq!(stats.net_boundary_cuts, 19, "stats: {stats:?}");
        assert!(stats.net_mid_frame_cuts >= 18, "stats: {stats:?}");
        assert_eq!(
            stats.net_executions,
            2 + stats.net_boundary_cuts + stats.net_mid_frame_cuts,
            "stats: {stats:?}"
        );
        // Phase N pipelined sub-sweep: the burst collapses the client
        // side to two frames (batch + shutdown) but the server still
        // answers frame-by-frame, so there are ≥ 11 marks to cut at
        // (plus mid-frame cuts and the cut-before-the-first-byte).
        assert!(stats.net_pipelined_cuts >= 12, "stats: {stats:?}");
        assert_eq!(
            stats.net_pipelined_executions,
            1 + stats.net_pipelined_cuts,
            "stats: {stats:?}"
        );
        // Phase M: two store-side registry cross-checks (exact append
        // accounting + compaction events), six wire sessions (two
        // fault-free baselines, three sequential cuts, one pipelined
        // burst cut), and each of the four request-consuming cuts
        // accounted as exactly one client retry.
        assert_eq!(stats.metric_store_checks, 2, "stats: {stats:?}");
        assert_eq!(stats.metric_net_checks, 6, "stats: {stats:?}");
        assert_eq!(stats.metric_retries_accounted, 4, "stats: {stats:?}");
        // Phase T: four traced durable sessions (baseline, cut,
        // pipelined, pipelined cut), each cut session contributing ≥1
        // verified retry link; the journal cut at every slot boundary
        // (0..=6 for six recorded slots) and twice inside every slot.
        assert_eq!(stats.trace_sessions, 4, "stats: {stats:?}");
        assert!(stats.trace_spans_checked >= 100, "stats: {stats:?}");
        assert!(stats.trace_retry_links >= 2, "stats: {stats:?}");
        assert_eq!(stats.fr_boundary_cuts, 7, "stats: {stats:?}");
        assert_eq!(stats.fr_mid_cuts, 12, "stats: {stats:?}");
    }

    /// A seeded wire cut must report *exactly* the expected resilience
    /// counters — the metrics layer is deterministic under sim, so the
    /// numbers are pinned, not bounded.  Cutting the wire right after
    /// the third request frame loses only that reply: the client retries
    /// once (one reconnect, one backoff sleep) and the server answers
    /// the replayed mutation from the idempotency memo instead of
    /// re-executing it.  Cutting the pipelined conversation at its first
    /// completed write catches the burst with a one-request prefix
    /// applied: the whole-batch replay answers that create from the memo
    /// and re-executes the seven requests the cut discarded.
    #[test]
    fn seeded_wire_cut_reports_exact_retry_and_replay_counters() {
        let cfg = SimConfig {
            steps: 6,
            workspaces: 2,
            crash_points: 2,
            fault_points: 2,
            net_steps: 3,
        };
        let seed = 0xC0FFEE;
        let script = phase_n_script(seed, &cfg);
        assert_eq!(script.len(), 8, "create + 3 churn + 4 questions");

        let baseline = phase_n_session(seed, &script, None, false).expect("baseline");
        assert_eq!(baseline.client_counters, (0, 0, 0));
        let registry = baseline.engine.registry();
        assert_eq!(registry.engine_requests.get(), 9, "script + shutdown");
        assert_eq!(registry.engine_memo_replays.get(), 0);

        // marks[4] is the end of the 5th frame — the third request
        // (writes alternate request/reply), a churn mutation.
        let cut = baseline.marks[4];
        let session = phase_n_session(seed, &script, Some(cut), false).expect("cut run");
        assert_eq!(session.transcript, baseline.transcript, "exactly-once held");
        assert_eq!(
            session.client_counters,
            (1, 1, 1),
            "one cut, one retry, one reconnect, one backoff sleep"
        );
        let registry = session.engine.registry();
        assert_eq!(
            registry.engine_memo_replays.get(),
            1,
            "the lost reply replayed"
        );
        assert_eq!(registry.engine_requests.get(), 9, "nothing re-executed");

        let pipelined = phase_n_session(seed, &script, None, true).expect("pipelined");
        assert_eq!(pipelined.client_counters, (0, 0, 0));
        let burst = pipelined.marks[0];
        let session = phase_n_session(seed, &script, Some(burst), true).expect("burst cut");
        assert_eq!(session.transcript, baseline.transcript, "exactly-once held");
        assert_eq!(session.client_counters, (1, 1, 1));
        let registry = session.engine.registry();
        assert_eq!(
            registry.engine_memo_replays.get(),
            1,
            "the applied create answers from the memo, never re-executes"
        );
        assert_eq!(
            registry.engine_requests.get(),
            9,
            "1 applied + 7 replayed-and-executed + the shutdown"
        );
    }

    /// Clean shutdown flushes the commit queue: `sync_all` racing
    /// concurrent group-committed appends must quiesce each log's staged
    /// batches before syncing, so a crash image taken *at shutdown* (on
    /// the simulated filesystem, with time on the manual clock — no real
    /// sleeps) contains every acknowledged record, for every crash seed.
    #[test]
    fn shutdown_sync_flushes_the_commit_queue() {
        let ws = "wsync";
        let wal_path = PathBuf::from(DATA_DIR).join(format!("ws-{ws}.wal"));
        let fs = Arc::new(SimFs::new());
        let sim_env = SimEnv::new(Arc::clone(&fs), 7);
        let _clock = sim_env.clock_handle(); // ManualClock: nothing sleeps for real
        let env: Arc<dyn Env> = Arc::new(sim_env);
        let store = Arc::new(Store::open_with(store_config(NO_COMPACTION), env).unwrap());
        store
            .create_workspace(ws, &cqfit_data::Schema::digraph(), 0)
            .unwrap();
        let streams = phase_g_streams(7, &SimConfig::smoke());
        let total: usize = streams.iter().map(Vec::len).sum();
        std::thread::scope(|scope| {
            for records in &streams {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for record in records {
                        store
                            .append(ws, record, || unreachable!("no compaction"))
                            .expect("acked append");
                    }
                });
            }
            // Shutdown-style syncs racing the appenders: each must wait
            // out staged batches and in-flight leaders, never sync past
            // them or deadlock.
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..5 {
                    store.sync_all().expect("mid-run sync");
                }
            });
        });
        store.sync_all().expect("shutdown sync");
        let live = fs
            .live_files()
            .into_iter()
            .find(|(p, _)| *p == wal_path)
            .map(|(_, b)| b)
            .expect("log exists");
        assert_eq!(
            live.iter().filter(|&&b| b == b'\n').count(),
            total + 1,
            "create + every acked append is on the log"
        );
        for crash_seed in 0..16 {
            let image = fs.crash_image(crash_seed);
            let (_, bytes) = image
                .iter()
                .find(|(p, _)| *p == wal_path)
                .expect("log survives shutdown");
            assert_eq!(
                *bytes, live,
                "crash seed {crash_seed}: a staged-but-unsynced batch was \
                 dropped on clean shutdown"
            );
        }
    }

    /// The observability event ring under deterministic concurrency:
    /// four writers interleaved by the simulated scheduler push well
    /// past the ring's capacity.  At every capacity boundary the ring
    /// must drop exactly the oldest entry — so the snapshot holds
    /// exactly `EVENT_RING_CAPACITY` events, no entry is duplicated, and
    /// each writer's surviving entries form an in-order contiguous
    /// *suffix* of what it pushed.  Same seed, same interleaving, same
    /// snapshot.
    #[test]
    fn event_ring_interleaved_writers_never_lose_or_duplicate() {
        use cqfit_obs::{Registry, EVENT_RING_CAPACITY};
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 40; // 160 pushes through a 128-slot ring

        let run = |seed: u64| -> Vec<(String, String)> {
            let sched = Arc::new(SimScheduler::new(seed));
            let registry = Arc::new(Registry::new());
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..WRITERS)
                .map(|writer| {
                    let sched = Arc::clone(&sched);
                    let registry = Arc::clone(&registry);
                    Box::new(move || {
                        for i in 0..PER_WRITER {
                            registry.event(
                                (writer * PER_WRITER + i) as u64,
                                "sim.ring",
                                format!("{writer}:{i}"),
                            );
                            sched.maybe_yield();
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            sched.run(tasks).expect("no panics");
            registry
                .snapshot()
                .events
                .iter()
                .map(|e| (e.kind.clone(), e.detail.clone()))
                .collect()
        };

        for seed in [3u64, 0xC0FFEE] {
            let events = run(seed);
            assert_eq!(
                events.len(),
                EVENT_RING_CAPACITY,
                "a full ring holds exactly its capacity"
            );
            let mut seen = std::collections::BTreeSet::new();
            let mut per_writer: Vec<Vec<usize>> = vec![Vec::new(); WRITERS];
            for (kind, detail) in &events {
                assert_eq!(kind, "sim.ring");
                assert!(seen.insert(detail.clone()), "duplicated entry {detail}");
                let (writer, i) = detail.split_once(':').expect("writer:index");
                per_writer[writer.parse::<usize>().unwrap()].push(i.parse().unwrap());
            }
            for (writer, indices) in per_writer.iter().enumerate() {
                // In order, contiguous, and ending at the writer's last
                // push: the ring dropped only this writer's *oldest*
                // entries, never one from the middle.
                let first = indices.first().copied().unwrap_or(PER_WRITER);
                let expected: Vec<usize> = (first..PER_WRITER).collect();
                assert_eq!(
                    indices, &expected,
                    "writer {writer}: survivors must be an in-order suffix"
                );
            }
            assert_eq!(run(seed), events, "same seed, same interleaving");
        }
    }
}
