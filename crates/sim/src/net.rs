//! The simulated network: in-memory seeded connections behind the
//! [`cqfit_env::Net`] seam.
//!
//! A [`SimNet`] holds named listeners (`sim:<name>` addresses) and hands
//! out connection endpoints backed by two in-memory byte pipes (one per
//! direction).  Every transfer is deterministic given the seed:
//!
//! * **partial frames** — `write_all` delivers in seeded 1–7-byte chunks
//!   with a scheduler yield between chunks, so a peer's reads observe
//!   every possible frame fragmentation;
//! * **drops at any byte boundary** — a [`NetFaultPlan::cut_at`] cuts the
//!   connection after exactly that many delivered payload bytes (counted
//!   across all connections, in delivery order): the prefix is delivered,
//!   the rest of the in-flight write is silently discarded (`write_all`
//!   still returns `Ok` — the sender cannot tell, which is precisely the
//!   ambiguity the resilient client must survive), and both directions
//!   close so later reads see EOF and later writes `BrokenPipe`;
//! * **stalls** — a connection nobody writes to simply never delivers;
//!   blocked reads honor their deadline against the shared
//!   [`ManualClock`], advancing it by a configurable wait tick per empty
//!   poll so timeouts fire without real time passing;
//! * **refused connects** — [`NetFaultPlan::refuse_connects`] makes the
//!   next N connects fail with `ConnectionRefused` (and connects to a
//!   dropped listener always do), driving the client's backoff path.
//!
//! Byte accounting is observable: [`SimNet::bytes_total`] counts every
//! delivered payload byte and [`SimNet::write_marks`] records the total
//! at each completed `write_all` — the frame boundaries a harness sweeps
//! its cuts over.

use crate::sched::SimScheduler;
use crate::splitmix;
use cqfit_env::{Clock, ManualClock, Net, NetConn, NetListener};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Clock advance per empty blocking poll (read with no data, accept with
/// no pending connection).  Large enough that deadline-based code (the
/// server's 200 ms shutdown poll, the client's per-request timeout)
/// converges in a few hundred iterations; override with
/// [`SimNet::set_wait_tick`] when a test wants near-frozen time.
const DEFAULT_WAIT_TICK: Duration = Duration::from_millis(1);

/// Maximum seeded chunk size of one delivery step.
const MAX_CHUNK: u64 = 7;

/// Seeded network faults, consumed as they trigger.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetFaultPlan {
    /// Refuse this many connects (each failure decrements the budget)
    /// before letting connects through again.
    pub refuse_connects: u64,
    /// Cut the connection that is delivering when the *total* delivered
    /// payload byte count crosses this value: bytes up to the cut are
    /// delivered, the remainder of the in-flight `write_all` is silently
    /// discarded, and both directions of that connection close.  `None`
    /// cuts nothing.
    pub cut_at: Option<u64>,
}

impl NetFaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }
}

/// One direction of a connection: a byte queue plus a closed flag.
/// Buffered bytes stay readable after close (like a real socket: data
/// received before the FIN is still delivered); only then does the
/// reader see EOF.
#[derive(Debug, Default)]
struct Pipe {
    inner: Mutex<PipeBuf>,
}

#[derive(Debug, Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn close(&self) {
        self.inner.lock().expect("pipe").closed = true;
    }
}

#[derive(Debug, Default)]
struct ListenerState {
    pending: VecDeque<SimConn>,
    closed: bool,
}

#[derive(Debug)]
struct NetState {
    rng: u64,
    refuse_remaining: u64,
    cut_remaining: Option<u64>,
    bytes_total: u64,
    write_marks: Vec<u64>,
    listeners: HashMap<String, Arc<Mutex<ListenerState>>>,
}

/// The simulated network (see the module docs for the fault model).
/// Share one per simulated execution between the environment of every
/// task; all its decisions derive from the seed and the plan.
#[derive(Debug)]
pub struct SimNet {
    clock: Arc<ManualClock>,
    sched: Mutex<Option<Arc<SimScheduler>>>,
    state: Mutex<NetState>,
    wait_tick: Mutex<Duration>,
    conn_counter: AtomicU64,
    /// Back-reference to the owning `Arc` (set by [`SimNet::new`]), so
    /// the object-safe `&self` methods of [`Net`] can hand connections
    /// and listeners a cloned handle to the whole network.
    this: std::sync::Weak<SimNet>,
}

impl SimNet {
    /// A simulated network over `clock`, yielding through `sched` at
    /// every delivery step (pass `None` for single-threaded tests), with
    /// chunk sizes seeded by `seed` and faults per `plan`.
    pub fn new(
        clock: Arc<ManualClock>,
        sched: Option<Arc<SimScheduler>>,
        seed: u64,
        plan: NetFaultPlan,
    ) -> Arc<SimNet> {
        Arc::new_cyclic(|this| SimNet {
            clock,
            sched: Mutex::new(sched),
            state: Mutex::new(NetState {
                rng: seed ^ 0x0005_1E70_F00D,
                refuse_remaining: plan.refuse_connects,
                cut_remaining: plan.cut_at,
                bytes_total: 0,
                write_marks: Vec::new(),
                listeners: HashMap::new(),
            }),
            wait_tick: Mutex::new(DEFAULT_WAIT_TICK),
            conn_counter: AtomicU64::new(0),
            this: this.clone(),
        })
    }

    fn arc(&self) -> Arc<SimNet> {
        self.this.upgrade().expect("SimNet is alive while in use")
    }

    /// Overrides the clock advance per empty blocking poll.
    /// `Duration::ZERO` leaves time to the clock's own auto-tick — the
    /// near-frozen-time mode the drain-grace tests use to keep a grace
    /// window open across many real-thread scheduling quanta.
    pub fn set_wait_tick(&self, tick: Duration) {
        *self.wait_tick.lock().expect("wait tick") = tick;
    }

    /// Total payload bytes delivered so far, across all connections.
    pub fn bytes_total(&self) -> u64 {
        self.state.lock().expect("net state").bytes_total
    }

    /// The delivered-byte totals at each completed `write_all` — the
    /// frame boundaries of the execution, in delivery order.
    pub fn write_marks(&self) -> Vec<u64> {
        self.state.lock().expect("net state").write_marks.clone()
    }

    /// One scheduling step inside a blocking network operation: yield to
    /// the deterministic scheduler when one is attached, otherwise to the
    /// OS (real-thread tests).
    fn step(&self) {
        let sched = self.sched.lock().expect("scheduler slot").clone();
        match sched {
            Some(s) => s.maybe_yield(),
            None => std::thread::yield_now(),
        }
    }

    /// Clock advance for one empty poll.
    fn wait(&self) {
        let tick = *self.wait_tick.lock().expect("wait tick");
        if tick > Duration::ZERO {
            self.clock.advance(tick);
        }
    }
}

/// One endpoint of a simulated connection.
#[derive(Debug)]
pub struct SimConn {
    net: Arc<SimNet>,
    /// Outgoing direction (our writes, the peer's reads).
    send: Arc<Pipe>,
    /// Incoming direction (the peer's writes, our reads).
    recv: Arc<Pipe>,
    peer: String,
    /// Set once this connection was cut by the fault plan or shut down;
    /// shared between both endpoints.
    cut: Arc<AtomicBool>,
}

impl SimConn {
    fn pair(net: &Arc<SimNet>, client_peer: &str, server_peer: &str) -> (SimConn, SimConn) {
        let c2s = Arc::new(Pipe::default());
        let s2c = Arc::new(Pipe::default());
        let cut = Arc::new(AtomicBool::new(false));
        let client = SimConn {
            net: Arc::clone(net),
            send: Arc::clone(&c2s),
            recv: Arc::clone(&s2c),
            peer: client_peer.to_string(),
            cut: Arc::clone(&cut),
        };
        let server = SimConn {
            net: Arc::clone(net),
            send: s2c,
            recv: c2s,
            peer: server_peer.to_string(),
            cut,
        };
        (client, server)
    }

    fn close_both(&self) {
        self.cut.store(true, Ordering::SeqCst);
        self.send.close();
        self.recv.close();
    }
}

impl NetConn for SimConn {
    fn read(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = timeout.map(|t| self.net.clock.monotonic() + t);
        loop {
            self.net.step();
            {
                let mut pipe = self.recv.inner.lock().expect("pipe");
                if !pipe.data.is_empty() {
                    let n = buf.len().min(pipe.data.len());
                    for slot in buf.iter_mut().take(n) {
                        *slot = pipe.data.pop_front().expect("n bytes available");
                    }
                    return Ok(n);
                }
                if pipe.closed {
                    return Ok(0); // EOF (buffered bytes already drained)
                }
            }
            if let Some(d) = deadline {
                if self.net.clock.monotonic() >= d {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "simulated read timed out",
                    ));
                }
            }
            self.net.wait();
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut offset = 0;
        // Empty writes still complete a (zero-byte) delivery — no mark.
        while offset < buf.len() {
            self.net.step();
            let mut st = self.net.state.lock().expect("net state");
            {
                let pipe = self.send.inner.lock().expect("pipe");
                if pipe.closed {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "simulated connection closed",
                    ));
                }
            }
            let chunk = 1 + (splitmix(&mut st.rng) % MAX_CHUNK) as usize;
            let end = (offset + chunk).min(buf.len());
            let mut piece = &buf[offset..end];
            let mut cut_now = false;
            if let Some(remaining) = st.cut_remaining {
                if piece.len() as u64 >= remaining {
                    piece = &piece[..remaining as usize];
                    st.cut_remaining = None;
                    cut_now = true;
                } else {
                    st.cut_remaining = Some(remaining - piece.len() as u64);
                }
            }
            st.bytes_total += piece.len() as u64;
            self.send
                .inner
                .lock()
                .expect("pipe")
                .data
                .extend(piece.iter().copied());
            if cut_now {
                drop(st);
                // The ambiguous drop: the delivered prefix stays
                // readable, the remainder vanishes, and the sender gets
                // `Ok` — it cannot know how much arrived.
                self.close_both();
                return Ok(());
            }
            offset = end;
        }
        let mut st = self.net.state.lock().expect("net state");
        let total = st.bytes_total;
        st.write_marks.push(total);
        Ok(())
    }

    fn shutdown(&mut self) -> io::Result<()> {
        self.close_both();
        Ok(())
    }

    fn peer_addr(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        // Like a dropped TcpStream: both directions close; bytes already
        // delivered stay readable.
        self.close_both();
    }
}

/// A named simulated listener; dropping it refuses later connects.
#[derive(Debug)]
pub struct SimListener {
    net: Arc<SimNet>,
    addr: String,
    state: Arc<Mutex<ListenerState>>,
}

impl NetListener for SimListener {
    fn accept(&self) -> io::Result<Box<dyn NetConn>> {
        loop {
            self.net.step();
            {
                let mut st = self.state.lock().expect("listener state");
                if let Some(conn) = st.pending.pop_front() {
                    return Ok(Box::new(conn));
                }
                if st.closed {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "simulated listener closed",
                    ));
                }
            }
            self.net.wait();
        }
    }

    fn local_addr(&self) -> io::Result<String> {
        Ok(self.addr.clone())
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        self.state.lock().expect("listener state").closed = true;
    }
}

impl Net for SimNet {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        let mut st = self.state.lock().expect("net state");
        if let Some(existing) = st.listeners.get(addr) {
            if !existing.lock().expect("listener state").closed {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("simulated address `{addr}` already bound"),
                ));
            }
        }
        let listener_state = Arc::new(Mutex::new(ListenerState::default()));
        st.listeners
            .insert(addr.to_string(), Arc::clone(&listener_state));
        Ok(Box::new(SimListener {
            net: self.arc(),
            addr: addr.to_string(),
            state: listener_state,
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>> {
        let net = self.arc();
        net.step();
        let listener = {
            let mut st = self.state.lock().expect("net state");
            if st.refuse_remaining > 0 {
                st.refuse_remaining -= 1;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "simulated connect refused by fault plan",
                ));
            }
            st.listeners.get(addr).cloned()
        };
        let Some(listener) = listener else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("nothing listening on simulated address `{addr}`"),
            ));
        };
        let n = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let (client, server) = SimConn::pair(&net, addr, &format!("sim:peer-{n}"));
        {
            let mut st = listener.lock().expect("listener state");
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("simulated listener on `{addr}` is closed"),
                ));
            }
            // TCP-backlog style: the connect succeeds immediately; the
            // server picks the connection up at its next accept.
            st.pending.push_back(server);
        }
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SimEnv;
    use crate::fs::SimFs;
    use cqfit_data::Schema;
    use cqfit_engine::{
        Client, Engine, EngineConfig, ExamplePayload, Polarity, Request, Response, RetryPolicy,
        Server,
    };
    use cqfit_env::Env;

    fn manual_clock() -> Arc<ManualClock> {
        Arc::new(ManualClock::with_auto_tick(Duration::from_micros(1)))
    }

    fn read_exact_sim(conn: &mut dyn NetConn, want: usize) -> Vec<u8> {
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        while got.len() < want {
            let n = conn
                .read(&mut buf, Some(Duration::from_secs(5)))
                .expect("read");
            assert!(n > 0, "EOF before {want} bytes (got {})", got.len());
            got.extend_from_slice(&buf[..n]);
        }
        got
    }

    #[test]
    fn sim_net_round_trips_bytes_and_records_marks_deterministically() {
        let run = |seed: u64| {
            let net = SimNet::new(manual_clock(), None, seed, NetFaultPlan::none());
            let listener = net.bind("sim:a").unwrap();
            let mut client = net.connect("sim:a").unwrap();
            client.write_all(b"hello, server\n").unwrap();
            let mut server = listener.accept().unwrap();
            let got = read_exact_sim(server.as_mut(), 14);
            assert_eq!(&got, b"hello, server\n");
            server.write_all(b"ok\n").unwrap();
            let reply = read_exact_sim(client.as_mut(), 3);
            assert_eq!(&reply, b"ok\n");
            assert!(!client.peer_addr().is_empty());
            assert!(!server.peer_addr().is_empty());
            (net.bytes_total(), net.write_marks())
        };
        let (total, marks) = run(7);
        assert_eq!(total, 17);
        assert_eq!(marks, vec![14, 17], "one mark per completed frame");
        assert_eq!(run(7), (total, marks), "same seed, same delivery");
    }

    #[test]
    fn bind_conflicts_and_refused_connects() {
        let net = SimNet::new(
            manual_clock(),
            None,
            1,
            NetFaultPlan {
                refuse_connects: 2,
                cut_at: None,
            },
        );
        let listener = net.bind("sim:a").unwrap();
        assert_eq!(
            net.bind("sim:a").unwrap_err().kind(),
            io::ErrorKind::AddrInUse
        );
        // The fault budget refuses the first two connects, then relents.
        for _ in 0..2 {
            assert_eq!(
                net.connect("sim:a").unwrap_err().kind(),
                io::ErrorKind::ConnectionRefused
            );
        }
        assert!(net.connect("sim:a").is_ok());
        // Nothing listening / listener dropped: refused.
        assert_eq!(
            net.connect("sim:nope").unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        drop(listener);
        assert_eq!(
            net.connect("sim:a").unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        // A dropped listener's name can be rebound.
        assert!(net.bind("sim:a").is_ok());
    }

    #[test]
    fn a_cut_delivers_the_prefix_then_closes_both_directions() {
        let net = SimNet::new(
            manual_clock(),
            None,
            3,
            NetFaultPlan {
                refuse_connects: 0,
                cut_at: Some(5),
            },
        );
        let listener = net.bind("sim:a").unwrap();
        let mut client = net.connect("sim:a").unwrap();
        // The ambiguous drop: write_all reports success even though only
        // 5 of 12 bytes made it.
        client.write_all(b"hello, world").unwrap();
        let mut server = listener.accept().unwrap();
        let got = read_exact_sim(server.as_mut(), 5);
        assert_eq!(&got, b"hello");
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf, None).unwrap(), 0, "EOF after cut");
        assert_eq!(
            client.write_all(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe,
            "the cut connection is dead for later writes"
        );
        assert_eq!(client.read(&mut buf, None).unwrap(), 0);
        assert_eq!(net.bytes_total(), 5);
        assert!(
            net.write_marks().is_empty(),
            "a cut frame never completed, so no mark"
        );
        // The network itself survives: new connections work.
        let mut c2 = net.connect("sim:a").unwrap();
        c2.write_all(b"x\n").unwrap();
        let mut s2 = listener.accept().unwrap();
        assert_eq!(read_exact_sim(s2.as_mut(), 2), b"x\n");
    }

    #[test]
    fn blocked_reads_honor_deadlines_on_the_simulated_clock() {
        let clock = manual_clock();
        let net = SimNet::new(Arc::clone(&clock), None, 9, NetFaultPlan::none());
        let _listener = net.bind("sim:a").unwrap();
        let mut client = net.connect("sim:a").unwrap();
        let before = std::time::Instant::now();
        let t0 = clock.monotonic();
        let mut buf = [0u8; 8];
        let err = client
            .read(&mut buf, Some(Duration::from_millis(250)))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(clock.monotonic() - t0 >= Duration::from_millis(250));
        assert!(
            before.elapsed() < Duration::from_secs(5),
            "simulated time, not wall time"
        );
    }

    /// Satellite regression: `Client::call` must not hang forever against
    /// a peer that accepts the connection and then goes silent — the
    /// per-request deadline fires (on simulated time) and retries are
    /// bounded.
    #[test]
    fn client_call_times_out_against_a_silent_peer() {
        let env = SimEnv::new(Arc::new(SimFs::new()), 11);
        let net = SimNet::new(env.clock_handle(), None, 11, NetFaultPlan::none());
        let env: Arc<dyn Env> = Arc::new(env.with_net(Arc::clone(&net)));
        // Bound but never accepted: connects park in the backlog and
        // writes vanish into the pipe — the classic stalled server.
        let _listener = net.bind("sim:silent").unwrap();
        let before = std::time::Instant::now();
        let mut client = Client::connect_with("sim:silent", Arc::clone(&env)).unwrap();
        client.set_call_timeout(Some(Duration::from_millis(50)));
        client.set_retry(RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
        });
        let err = client.call(&Request::Ping).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            before.elapsed() < Duration::from_secs(10),
            "deadline fired on the simulated clock, not wall time"
        );
    }

    /// Satellite regression (drain-grace edge): a client that sends half
    /// a frame and then stalls is closed at the drain deadline without a
    /// reply — shutdown cannot be held open by a stalled peer, and a
    /// never-completed request gets no answer.
    #[test]
    fn half_frame_stall_is_closed_at_the_drain_deadline_without_reply() {
        let env = SimEnv::new(Arc::new(SimFs::new()), 5);
        let clock = env.clock_handle();
        let net = SimNet::new(Arc::clone(&clock), None, 5, NetFaultPlan::none());
        let env: Arc<dyn Env> = Arc::new(env.with_net(Arc::clone(&net)));
        let engine = Arc::new(Engine::with_env(EngineConfig::default(), Arc::clone(&env)));
        let server = Server::bind("sim:drain", engine).unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut stalled = net.connect("sim:drain").unwrap();
        stalled.write_all(b"{\"op\":\"ping\"").unwrap(); // half a frame, then silence
        let mut client = Client::connect_with("sim:drain", Arc::clone(&env)).unwrap();
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        let t0 = clock.monotonic();
        // The stalled connection is closed once its grace window passes;
        // no reply bytes ever arrive for the half frame.
        let mut buf = [0u8; 64];
        let n = stalled
            .read(&mut buf, Some(Duration::from_secs(60)))
            .unwrap();
        assert_eq!(n, 0, "closed without a reply");
        let waited = clock.monotonic().saturating_sub(t0);
        assert!(
            waited >= Duration::from_millis(250),
            "closed only after a grace window, not immediately (waited {waited:?})"
        );
        assert!(
            waited <= Duration::from_secs(5),
            "closed near the deadline, not arbitrarily late (waited {waited:?})"
        );
        handle.join().unwrap();
    }

    /// Satellite regression (drain-grace edge): a frame that *completes*
    /// within the grace window is answered before the connection closes.
    #[test]
    fn frame_completing_within_the_grace_window_is_answered() {
        let env = SimEnv::new(Arc::new(SimFs::new()), 6);
        let net = SimNet::new(env.clock_handle(), None, 6, NetFaultPlan::none());
        // Near-frozen time: only the clock's 1µs auto-tick advances it,
        // so the 500 ms grace spans hundreds of thousands of poll
        // iterations — the completing write below cannot lose the race
        // against the deadline.
        net.set_wait_tick(Duration::ZERO);
        let env: Arc<dyn Env> = Arc::new(env.with_net(Arc::clone(&net)));
        let engine = Arc::new(Engine::with_env(EngineConfig::default(), Arc::clone(&env)));
        let server = Server::bind("sim:late", engine).unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut late = net.connect("sim:late").unwrap();
        late.write_all(b"{\"op\":").unwrap(); // half a frame
        let mut client = Client::connect_with("sim:late", Arc::clone(&env)).unwrap();
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        // Complete the frame inside the grace window: it must be served.
        late.write_all(b"\"ping\"}\n").unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        while !got.contains(&b'\n') {
            let n = late.read(&mut buf, Some(Duration::from_secs(600))).unwrap();
            assert!(n > 0, "closed before answering the completed frame");
            got.extend_from_slice(&buf[..n]);
        }
        let line = std::str::from_utf8(&got).unwrap().trim();
        assert!(
            matches!(serde::from_str::<Response>(line), Ok(Response::Pong)),
            "expected a pong, got `{line}`"
        );
        drop(late); // EOF lets the draining connection finish
        handle.join().unwrap();
    }

    /// One scripted create→add→info session against a sequential server
    /// under the deterministic scheduler, optionally cutting the
    /// connection after `cut_at` delivered bytes.  Returns the frame
    /// marks and the response transcript (shutdown excluded).
    fn scripted_run(seed: u64, cut_at: Option<u64>) -> (Vec<u64>, Vec<String>) {
        let sched = Arc::new(SimScheduler::new(seed));
        let env = SimEnv::with_scheduler(Arc::new(SimFs::new()), Arc::clone(&sched), seed);
        let net = SimNet::new(
            env.clock_handle(),
            Some(Arc::clone(&sched)),
            seed,
            NetFaultPlan {
                refuse_connects: 0,
                cut_at,
            },
        );
        let env: Arc<dyn Env> = Arc::new(env.with_net(Arc::clone(&net)));
        let engine = Arc::new(Engine::with_env(EngineConfig::default(), Arc::clone(&env)));
        let server = Server::bind("sim:once", engine).unwrap();
        let transcript = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(move || {
                server.run_sequential().expect("server run");
            }),
            {
                let env = Arc::clone(&env);
                let transcript = Arc::clone(&transcript);
                Box::new(move || {
                    let mut client = Client::connect_retrying("sim:once", env, 8).unwrap();
                    client.set_call_timeout(Some(Duration::from_secs(2)));
                    client.set_retry(RetryPolicy {
                        attempts: 8,
                        base: Duration::from_millis(10),
                        cap: Duration::from_millis(160),
                    });
                    let script = [
                        Request::CreateWorkspace {
                            workspace: "w".into(),
                            schema: Schema::new([("R", 2)]).unwrap(),
                            arity: 0,
                        },
                        Request::AddExample {
                            workspace: "w".into(),
                            polarity: Polarity::Positive,
                            example: ExamplePayload::Text("R(a,b)".into()),
                        },
                        Request::WorkspaceInfo {
                            workspace: "w".into(),
                        },
                    ];
                    for request in &script {
                        let response = client.call(request).expect("scripted call");
                        transcript
                            .lock()
                            .expect("transcript")
                            .push(serde::to_string(&response));
                    }
                    // Drive shutdown to completion: a refused reconnect
                    // means the server already shut down (the ack was
                    // lost), which is success.
                    match client.call(&Request::Shutdown) {
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                        Err(e) => panic!("shutdown failed: {e}"),
                    }
                })
            },
        ];
        sched.run(tasks).expect("no task panicked");
        let transcript = Arc::try_unwrap(transcript)
            .expect("tasks done")
            .into_inner()
            .expect("transcript");
        (net.write_marks(), transcript)
    }

    /// Acceptance criterion: a mutation retried after an ambiguous drop
    /// — the add request fully delivered, the connection cut before its
    /// response — is applied exactly once.  The transcript (including
    /// the final workspace info with its revision) is byte-identical to
    /// the never-dropped oracle run's.
    #[test]
    fn retried_mutation_after_ambiguous_drop_applies_exactly_once() {
        let seed = 0xE0;
        let (marks, baseline) = scripted_run(seed, None);
        assert_eq!(
            scripted_run(seed, None),
            (marks.clone(), baseline.clone()),
            "seeded runs are deterministic"
        );
        assert!(baseline[2].contains("\"positives\":1"), "{baseline:?}");
        // Frames alternate request/response in the sequential session:
        // marks[2] is the end of the add-example *request* frame, so a
        // cut there delivers the mutation but kills the connection
        // before the acknowledgment — the ambiguous drop.
        assert!(marks.len() >= 6, "expected ≥3 frame pairs, got {marks:?}");
        let (_, with_cut) = scripted_run(seed, Some(marks[2]));
        assert_eq!(
            with_cut, baseline,
            "retry after the ambiguous drop must apply exactly once \
             (identical add ack and identical final revision)"
        );
    }
}
