//! Rooted-tree view of tree CQs (Section 5).
//!
//! A tree CQ over a binary schema corresponds to a rooted, node-labeled,
//! edge-labeled tree: nodes are variables (the root is the answer variable),
//! node labels are the unary relations holding at the variable, and each
//! non-root node is attached to its parent by a single binary atom whose
//! direction is recorded in a [`Role`] (`R` downward or `R⁻` upward, i.e. the
//! atom is `R(parent, child)` or `R(child, parent)`).

use crate::{Cq, QueryError, Result};
use cqfit_data::{Example, Instance, RelId, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A role: a binary relation symbol or its converse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Role {
    /// The binary relation symbol.
    pub rel: RelId,
    /// If true, the role is the converse `R⁻`: the atom points from the
    /// child to the parent.
    pub inverse: bool,
}

impl Role {
    /// The forward role `R`.
    pub fn forward(rel: RelId) -> Self {
        Role {
            rel,
            inverse: false,
        }
    }

    /// The converse role `R⁻`.
    pub fn converse(rel: RelId) -> Self {
        Role { rel, inverse: true }
    }

    /// The converse of this role.
    pub fn flipped(self) -> Self {
        Role {
            rel: self.rel,
            inverse: !self.inverse,
        }
    }
}

/// A rooted tree with unary-relation node labels and role-labeled edges;
/// node 0 is the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootedTree {
    schema: Arc<Schema>,
    labels: Vec<BTreeSet<RelId>>,
    children: Vec<Vec<(Role, usize)>>,
    parent: Vec<Option<(Role, usize)>>,
}

impl RootedTree {
    /// Creates a tree consisting of a single unlabeled root.
    pub fn new(schema: Arc<Schema>) -> Self {
        RootedTree {
            schema,
            labels: vec![BTreeSet::new()],
            children: vec![Vec::new()],
            parent: vec![None],
        }
    }

    /// The schema over which the tree is labeled.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The root node (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Total size: nodes plus unary labels (a proxy for the number of atoms
    /// plus variables of the corresponding tree CQ).
    pub fn size(&self) -> usize {
        self.num_nodes() + self.labels.iter().map(BTreeSet::len).sum::<usize>()
    }

    /// Adds a unary label to a node.
    ///
    /// # Errors
    /// Fails if the relation is not unary.
    pub fn add_label(&mut self, node: usize, rel: RelId) -> Result<()> {
        if self.schema.arity(rel) != 1 {
            return Err(QueryError::NotATreeCq(format!(
                "`{}` is not unary",
                self.schema.name(rel)
            )));
        }
        self.labels[node].insert(rel);
        Ok(())
    }

    /// Adds a unary label by name.
    ///
    /// # Errors
    /// Fails if the relation does not exist or is not unary.
    pub fn add_label_by_name(&mut self, node: usize, rel: &str) -> Result<()> {
        let rel = self
            .schema
            .rel(rel)
            .ok_or_else(|| QueryError::UnknownRelation(rel.to_string()))?;
        self.add_label(node, rel)
    }

    /// Adds a child node connected by the given role; returns the new node.
    ///
    /// # Errors
    /// Fails if the role's relation is not binary.
    pub fn add_child(&mut self, parent: usize, role: Role) -> Result<usize> {
        if self.schema.arity(role.rel) != 2 {
            return Err(QueryError::NotATreeCq(format!(
                "`{}` is not binary",
                self.schema.name(role.rel)
            )));
        }
        let node = self.labels.len();
        self.labels.push(BTreeSet::new());
        self.children.push(Vec::new());
        self.parent.push(Some((role, parent)));
        self.children[parent].push((role, node));
        Ok(node)
    }

    /// Adds a child by relation name; `inverse = true` gives the converse
    /// role.
    ///
    /// # Errors
    /// Fails if the relation does not exist or is not binary.
    pub fn add_child_by_name(&mut self, parent: usize, rel: &str, inverse: bool) -> Result<usize> {
        let rel = self
            .schema
            .rel(rel)
            .ok_or_else(|| QueryError::UnknownRelation(rel.to_string()))?;
        self.add_child(parent, Role { rel, inverse })
    }

    /// The unary labels of a node.
    pub fn labels(&self, node: usize) -> &BTreeSet<RelId> {
        &self.labels[node]
    }

    /// The children of a node with their connecting roles.
    pub fn children(&self, node: usize) -> &[(Role, usize)] {
        &self.children[node]
    }

    /// The parent of a node, with the role connecting the parent to it.
    pub fn parent(&self, node: usize) -> Option<(Role, usize)> {
        self.parent[node]
    }

    /// All nodes in breadth-first order starting from the root.
    pub fn nodes(&self) -> Vec<usize> {
        let mut order = vec![self.root()];
        let mut i = 0;
        while i < order.len() {
            let n = order[i];
            for &(_, c) in &self.children[n] {
                order.push(c);
            }
            i += 1;
        }
        order
    }

    /// The depth of the tree (a single node has depth 0).
    pub fn depth(&self) -> usize {
        fn go(t: &RootedTree, n: usize) -> usize {
            t.children[n]
                .iter()
                .map(|&(_, c)| 1 + go(t, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root())
    }

    /// The maximum number of atoms incident to a single node (unary labels
    /// plus incident edges) — the degree of the corresponding tree CQ.
    pub fn degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|n| {
                self.labels[n].len()
                    + self.children[n].len()
                    + usize::from(self.parent[n].is_some())
            })
            .max()
            .unwrap_or(0)
    }

    /// Converts the tree to a conjunctive query with the root as answer
    /// variable.
    ///
    /// # Errors
    /// Fails if the query would be unsafe (a single unlabeled node).
    pub fn to_cq(&self) -> Result<Cq> {
        let mut builder = Cq::builder(self.schema.clone());
        let vars: Vec<_> = (0..self.num_nodes())
            .map(|n| builder.var(format!("v{n}")))
            .collect();
        builder.answer(&[vars[self.root()]]);
        for n in 0..self.num_nodes() {
            for &rel in &self.labels[n] {
                builder.atom_vars(rel, &[vars[n]])?;
            }
            if let Some((role, p)) = self.parent[n] {
                let args = if role.inverse {
                    [vars[n], vars[p]]
                } else {
                    [vars[p], vars[n]]
                };
                builder.atom_vars(role.rel, &args)?;
            }
        }
        builder.build()
    }

    /// Converts the tree to a pointed instance with the root as the single
    /// distinguished element.  Unlike [`RootedTree::to_cq`], this never fails:
    /// a single unlabeled node yields a pointed instance that is not a data
    /// example.
    pub fn to_example(&self) -> Example {
        let mut inst = Instance::new(self.schema.clone());
        let vals: Vec<Value> = (0..self.num_nodes())
            .map(|n| inst.add_value(format!("v{n}")))
            .collect();
        for n in 0..self.num_nodes() {
            for &rel in &self.labels[n] {
                inst.add_fact(rel, &[vals[n]]).expect("unary label");
            }
            if let Some((role, p)) = self.parent[n] {
                let args = if role.inverse {
                    [vals[n], vals[p]]
                } else {
                    [vals[p], vals[n]]
                };
                inst.add_fact(role.rel, &args).expect("binary edge");
            }
        }
        Example::new(inst, vec![vals[self.root()]])
    }

    /// The subtree rooted at `node`, as a new tree.
    pub fn subtree(&self, node: usize) -> RootedTree {
        let mut out = RootedTree::new(self.schema.clone());
        out.labels[0] = self.labels[node].clone();
        self.copy_children(node, 0, &mut out);
        out
    }

    fn copy_children(&self, from: usize, to: usize, out: &mut RootedTree) {
        for &(role, c) in &self.children[from] {
            let nc = out.add_child(to, role).expect("same schema");
            out.labels[nc] = self.labels[c].clone();
            self.copy_children(c, nc, out);
        }
    }

    /// A copy of the tree without the subtree rooted at `node`.
    ///
    /// # Errors
    /// Fails if `node` is the root.
    pub fn without_subtree(&self, node: usize) -> Result<RootedTree> {
        if node == self.root() {
            return Err(QueryError::NotATreeCq(
                "cannot remove the root subtree".into(),
            ));
        }
        let mut out = RootedTree::new(self.schema.clone());
        out.labels[0] = self.labels[self.root()].clone();
        self.copy_children_excluding(self.root(), 0, node, &mut out);
        Ok(out)
    }

    fn copy_children_excluding(&self, from: usize, to: usize, skip: usize, out: &mut RootedTree) {
        for &(role, c) in &self.children[from] {
            if c == skip {
                continue;
            }
            let nc = out.add_child(to, role).expect("same schema");
            out.labels[nc] = self.labels[c].clone();
            self.copy_children_excluding(c, nc, skip, out);
        }
    }

    /// A copy of the tree with one unary label removed from one node.
    pub fn without_label(&self, node: usize, rel: RelId) -> RootedTree {
        let mut out = self.clone();
        out.labels[node].remove(&rel);
        out
    }

    /// Grafts `other` (its root merges with `node`: labels are united and
    /// `other`'s children become children of `node`).
    pub fn graft(&mut self, node: usize, other: &RootedTree) {
        let labels: Vec<RelId> = other.labels[other.root()].iter().copied().collect();
        for rel in labels {
            self.labels[node].insert(rel);
        }
        self.graft_children(node, other, other.root());
    }

    fn graft_children(&mut self, node: usize, other: &RootedTree, other_node: usize) {
        for &(role, c) in &other.children[other_node] {
            let nc = self.add_child(node, role).expect("same schema");
            self.labels[nc] = other.labels[c].clone();
            self.graft_children(nc, other, c);
        }
    }

    /// A canonical string code of the tree, invariant under reordering of
    /// children; two trees are isomorphic (as labeled rooted trees) iff their
    /// codes are equal.
    pub fn canonical_code(&self) -> String {
        fn go(t: &RootedTree, n: usize) -> String {
            let labels: Vec<String> = t.labels[n].iter().map(|r| r.0.to_string()).collect();
            let mut kids: Vec<String> = t.children[n]
                .iter()
                .map(|&(role, c)| {
                    format!(
                        "{}{}>{}",
                        role.rel.0,
                        if role.inverse { "-" } else { "+" },
                        go(t, c)
                    )
                })
                .collect();
            kids.sort();
            format!("[{}|{}]", labels.join(","), kids.join(","))
        }
        go(self, self.root())
    }

    /// Builds a rooted tree from a unary, connected, Berge-acyclic CQ over a
    /// binary schema, rooted at the answer variable.
    ///
    /// # Errors
    /// Fails if the CQ does not have this shape.
    pub fn from_cq(cq: &Cq) -> Result<Self> {
        let schema = cq.schema().clone();
        if !schema.is_binary() {
            return Err(QueryError::NotATreeCq("schema is not binary".into()));
        }
        if cq.arity() != 1 {
            return Err(QueryError::NotATreeCq("tree CQs are unary".into()));
        }
        let canon = cq.canonical_example();
        // Connectivity of a tree CQ is connectivity of the Gaifman graph of
        // its canonical instance (the answer variable gets no special role
        // here, unlike the component notion of §2.2).
        if canon.instance().connected_components().len() > 1 {
            return Err(QueryError::NotATreeCq("query is not connected".into()));
        }
        if !crate::is_berge_acyclic(&canon) {
            return Err(QueryError::NotATreeCq("query is not Berge-acyclic".into()));
        }
        let n_vars = cq.num_variables();
        let root_var = cq.answer_vars()[0];
        // Adjacency via binary atoms.
        let mut adj: Vec<Vec<(Role, usize)>> = vec![Vec::new(); n_vars];
        let mut unary: Vec<Vec<RelId>> = vec![Vec::new(); n_vars];
        for atom in cq.atoms() {
            match atom.args.len() {
                1 => unary[atom.args[0].index()].push(atom.rel),
                2 => {
                    let (a, b) = (atom.args[0].index(), atom.args[1].index());
                    adj[a].push((Role::forward(atom.rel), b));
                    adj[b].push((Role::converse(atom.rel), a));
                }
                _ => unreachable!("binary schema"),
            }
        }
        let mut tree = RootedTree::new(schema);
        let mut node_of_var = vec![usize::MAX; n_vars];
        node_of_var[root_var.index()] = tree.root();
        let mut queue = vec![root_var.index()];
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            let node = node_of_var[v];
            for &rel in &unary[v] {
                tree.add_label(node, rel)?;
            }
            for &(role, w) in &adj[v] {
                if node_of_var[w] == usize::MAX {
                    let child = tree.add_child(node, role)?;
                    node_of_var[w] = child;
                    queue.push(w);
                }
            }
        }
        if queue.len() != n_vars {
            return Err(QueryError::NotATreeCq("query is not connected".into()));
        }
        Ok(tree)
    }
}

impl fmt::Display for RootedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &RootedTree, n: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "(")?;
            let labels: Vec<&str> = t.labels[n].iter().map(|r| t.schema.name(*r)).collect();
            write!(f, "{}", labels.join(","))?;
            for &(role, c) in &t.children[n] {
                write!(
                    f,
                    " {}{}",
                    t.schema.name(role.rel),
                    if role.inverse { "⁻" } else { "" }
                )?;
                go(t, c, f)?;
            }
            write!(f, ")")
        }
        go(self, self.root(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;

    fn schema() -> Arc<Schema> {
        Schema::binary_schema(["A", "P"], ["R", "S"])
    }

    #[test]
    fn build_and_convert() {
        let s = schema();
        let mut t = RootedTree::new(s.clone());
        let c1 = t.add_child_by_name(t.root(), "R", false).unwrap();
        let c2 = t.add_child_by_name(t.root(), "S", true).unwrap();
        t.add_label_by_name(c2, "A").unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.depth(), 1);
        let q = t.to_cq().unwrap();
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.arity(), 1);
        // Round-trip through from_cq preserves isomorphism type.
        let t2 = RootedTree::from_cq(&q).unwrap();
        assert_eq!(t.canonical_code(), t2.canonical_code());
        let _ = c1;
    }

    #[test]
    fn from_cq_rejects_non_trees() {
        let s = schema();
        let cyclic = parse_cq(&s, "q(x) :- R(x,y), S(x,y)").unwrap();
        assert!(RootedTree::from_cq(&cyclic).is_err());
        let disconnected = parse_cq(&s, "q(x) :- R(x,y), A(z)").unwrap();
        assert!(RootedTree::from_cq(&disconnected).is_err());
        let binary_answer = parse_cq(&s, "q(x,y) :- R(x,y)").unwrap();
        assert!(RootedTree::from_cq(&binary_answer).is_err());
        let self_loop = parse_cq(&s, "q(x) :- R(x,x)").unwrap();
        assert!(RootedTree::from_cq(&self_loop).is_err());
    }

    #[test]
    fn inverse_roles_preserved() {
        let s = schema();
        let q = parse_cq(&s, "q(x) :- R(y,x), A(y)").unwrap();
        let t = RootedTree::from_cq(&q).unwrap();
        assert_eq!(t.children(t.root()).len(), 1);
        let (role, child) = t.children(t.root())[0];
        assert!(role.inverse);
        assert_eq!(t.labels(child).len(), 1);
        let back = t.to_cq().unwrap();
        assert!(back.equivalent_to(&q).unwrap());
    }

    #[test]
    fn subtree_and_removal() {
        let s = schema();
        let mut t = RootedTree::new(s);
        let c1 = t.add_child_by_name(t.root(), "R", false).unwrap();
        let g1 = t.add_child_by_name(c1, "R", false).unwrap();
        t.add_label_by_name(g1, "A").unwrap();
        let c2 = t.add_child_by_name(t.root(), "S", false).unwrap();
        let sub = t.subtree(c1);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.depth(), 1);
        let rest = t.without_subtree(c1).unwrap();
        assert_eq!(rest.num_nodes(), 2);
        assert!(t.without_subtree(t.root()).is_err());
        let _ = c2;
    }

    #[test]
    fn canonical_code_is_order_invariant() {
        let s = schema();
        let mut t1 = RootedTree::new(s.clone());
        t1.add_child_by_name(t1.root(), "R", false).unwrap();
        t1.add_child_by_name(t1.root(), "S", false).unwrap();
        let mut t2 = RootedTree::new(s);
        t2.add_child_by_name(t2.root(), "S", false).unwrap();
        t2.add_child_by_name(t2.root(), "R", false).unwrap();
        assert_eq!(t1.canonical_code(), t2.canonical_code());
    }

    #[test]
    fn graft_merges_roots() {
        let s = schema();
        let mut t = RootedTree::new(s.clone());
        t.add_child_by_name(t.root(), "R", false).unwrap();
        let mut other = RootedTree::new(s);
        other.add_label_by_name(other.root(), "A").unwrap();
        other.add_child_by_name(other.root(), "S", false).unwrap();
        t.graft(t.root(), &other);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.labels(t.root()).len(), 1);
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn degree_counts_incident_atoms() {
        let s = schema();
        let mut t = RootedTree::new(s);
        t.add_label_by_name(t.root(), "A").unwrap();
        t.add_child_by_name(t.root(), "R", false).unwrap();
        t.add_child_by_name(t.root(), "R", false).unwrap();
        assert_eq!(t.degree(), 3);
    }

    #[test]
    fn single_unlabeled_node_is_unsafe() {
        let s = schema();
        let t = RootedTree::new(s);
        assert!(t.to_cq().is_err());
        assert!(!t.to_example().is_data_example());
    }
}
