//! Hand-written serde round-trips for queries (see
//! `cqfit_data::serde_impls` for the data-layer counterpart and the
//! rationale).
//!
//! Shapes:
//!
//! ```text
//! Cq   {"schema": …, "vars": ["x", …], "answer": [var, …], "atoms": [[rel, var…], …]}
//! Ucq  {"disjuncts": [Cq…]}
//! ```
//!
//! Atoms are flat integer arrays `[rel, arg0, arg1, …]` mirroring the fact
//! encoding of instances; variables are their dense indices.
//! Deserialization goes through the validating [`Cq::from_parts`] /
//! [`Ucq::new`] constructors, so a deserialized query always satisfies the
//! safety condition and schema/arity coherence.

use crate::{Atom, Cq, Ucq, Variable};
use cqfit_data::{RelId, Schema};
use serde::json::{JsonError, Value as Json};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

impl Serialize for Variable {
    fn to_json(&self) -> Json {
        Json::Int(i64::from(self.0))
    }
}

impl Deserialize for Variable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(Variable)
    }
}

impl Serialize for Atom {
    fn to_json(&self) -> Json {
        let mut row = Vec::with_capacity(self.args.len() + 1);
        row.push(Json::Int(i64::from(self.rel.0)));
        row.extend(self.args.iter().map(|v| Json::Int(i64::from(v.0))));
        Json::Arr(row)
    }
}

impl Deserialize for Atom {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let row = v
            .as_arr()
            .ok_or_else(|| JsonError::mismatch("atom array", v))?;
        if row.is_empty() {
            return Err(JsonError::semantic("empty atom array"));
        }
        Ok(Atom {
            rel: RelId(u32::from_json(&row[0])?),
            args: row[1..]
                .iter()
                .map(Variable::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Serialize for Cq {
    fn to_json(&self) -> Json {
        let vars: Vec<String> = self
            .variables()
            .map(|v| self.var_name(v).to_string())
            .collect();
        Json::obj([
            ("schema", self.schema().as_ref().to_json()),
            ("vars", vars.to_json()),
            ("answer", self.answer_vars().to_vec().to_json()),
            ("atoms", self.atoms().to_vec().to_json()),
        ])
    }
}

impl Deserialize for Cq {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = Arc::new(Schema::from_json(v.req("schema")?)?);
        let vars = Vec::<String>::from_json(v.req("vars")?)?;
        let answer = Vec::<Variable>::from_json(v.req("answer")?)?;
        let atoms = Vec::<Atom>::from_json(v.req("atoms")?)?;
        Cq::from_parts(schema, vars, answer, atoms)
            .map_err(|e| JsonError::semantic(format!("invalid CQ: {e}")))
    }
}

impl Serialize for Ucq {
    fn to_json(&self) -> Json {
        Json::obj([("disjuncts", self.disjuncts().to_vec().to_json())])
    }
}

impl Deserialize for Ucq {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let disjuncts = Vec::<Cq>::from_json(v.req("disjuncts")?)?;
        Ucq::new(disjuncts).map_err(|e| JsonError::semantic(format!("invalid UCQ: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;

    #[test]
    fn cq_round_trip_is_identical() {
        let schema = Schema::binary_schema(["P"], ["R"]);
        let q = parse_cq(&schema, "q(x,y) :- R(x,z), R(z,y), P(x)").unwrap();
        let back: Cq = serde::from_str(&serde::to_string(&q)).unwrap();
        assert_eq!(back, q, "round trip preserves the exact representation");
        assert!(back.equivalent_to(&q).unwrap());
    }

    #[test]
    fn repeated_var_names_stay_distinct() {
        // Two distinct variables that share a display name must not merge.
        let schema = Schema::digraph();
        let r = schema.rel("R").unwrap();
        let q = Cq::from_parts(
            schema,
            vec!["x".into(), "x".into()],
            vec![],
            vec![Atom {
                rel: r,
                args: vec![Variable(0), Variable(1)],
            }],
        )
        .unwrap();
        let back: Cq = serde::from_str(&serde::to_string(&q)).unwrap();
        assert_eq!(back.num_variables(), 2);
        assert_eq!(back, q);
    }

    #[test]
    fn ucq_round_trip() {
        let schema = Schema::digraph();
        let q1 = parse_cq(&schema, "q() :- R(x,x)").unwrap();
        let q2 = parse_cq(&schema, "q() :- R(x,y), R(y,x)").unwrap();
        let u = Ucq::new(vec![q1, q2]).unwrap();
        let back: Ucq = serde::from_str(&serde::to_string(&u)).unwrap();
        assert_eq!(back, u);
        assert!(back.equivalent_to(&u).unwrap());
    }

    #[test]
    fn invalid_queries_rejected() {
        // Unsafe: answer variable not occurring in any atom.
        let text = r#"{"schema":{"relations":[{"name":"R","arity":2}]},"vars":["x","y"],"answer":[1],"atoms":[[0,0,0]]}"#;
        assert!(serde::from_str::<Cq>(text).is_err());
        // Atom arity mismatch.
        let text = r#"{"schema":{"relations":[{"name":"R","arity":2}]},"vars":["x"],"answer":[],"atoms":[[0,0]]}"#;
        assert!(serde::from_str::<Cq>(text).is_err());
        // Empty UCQ.
        assert!(serde::from_str::<Ucq>(r#"{"disjuncts":[]}"#).is_err());
    }
}
