//! A textual syntax for conjunctive queries.
//!
//! ```text
//! q(x, y) :- R(x, z), S(z, y), P(z)
//! ```
//!
//! The head lists the answer variables (possibly repeated, possibly empty for
//! Boolean queries); the body is a comma-separated list of atoms.  An empty
//! body can be written as `true` (the resulting query must still satisfy the
//! safety condition, so only Boolean queries may have an empty body).

use crate::{Cq, QueryError, Result};
use cqfit_data::Schema;
use std::sync::Arc;

/// Parses a CQ in the `q(x̄) :- body` syntax.
pub fn parse_cq(schema: &Arc<Schema>, text: &str) -> Result<Cq> {
    let text = text.trim();
    let (head, body) = text
        .split_once(":-")
        .ok_or_else(|| QueryError::Parse("missing `:-`".into()))?;
    let head = head.trim();
    let open = head
        .find('(')
        .ok_or_else(|| QueryError::Parse("missing `(` in head".into()))?;
    if !head.ends_with(')') {
        return Err(QueryError::Parse("missing `)` in head".into()));
    }
    let answer_vars: Vec<&str> = head[open + 1..head.len() - 1]
        .split(',')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .collect();

    let mut builder = Cq::builder(schema.clone());
    // Pre-create the answer variables so their indices come first.
    let answer: Vec<_> = answer_vars.iter().map(|n| builder.var(*n)).collect();
    builder.answer(&answer);

    let body = body.trim();
    if !body.is_empty() && body != "true" {
        for atom_text in split_atoms(body)? {
            let atom_text = atom_text.trim();
            let open = atom_text
                .find('(')
                .ok_or_else(|| QueryError::Parse(format!("missing `(` in atom `{atom_text}`")))?;
            if !atom_text.ends_with(')') {
                return Err(QueryError::Parse(format!(
                    "missing `)` in atom `{atom_text}`"
                )));
            }
            let rel = atom_text[..open].trim();
            let args: Vec<&str> = atom_text[open + 1..atom_text.len() - 1]
                .split(',')
                .map(|s| s.trim())
                .filter(|s| !s.is_empty())
                .collect();
            builder.atom(rel, &args)?;
        }
    }
    builder.build()
}

/// Splits a query body at top-level commas (commas inside parentheses belong
/// to atoms).
fn split_atoms(body: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| QueryError::Parse("unbalanced parentheses".into()))?;
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if depth != 0 {
        return Err(QueryError::Parse("unbalanced parentheses".into()));
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let q = parse_cq(&Schema::digraph(), "q(x) :- R(x,y), R(y,z)").unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.num_variables(), 3);
    }

    #[test]
    fn parse_boolean_true_body() {
        let q = parse_cq(&Schema::digraph(), "q() :- true").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.num_atoms(), 0);
    }

    #[test]
    fn parse_multi_relation() {
        let schema = Schema::binary_schema(["P"], ["R", "S"]);
        let q = parse_cq(&schema, "q(x, y) :- R(x, z), S(z, y), P(z)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.num_atoms(), 3);
    }

    #[test]
    fn parse_errors() {
        let s = Schema::digraph();
        assert!(parse_cq(&s, "q(x) R(x,y)").is_err());
        assert!(parse_cq(&s, "q(x :- R(x,y)").is_err());
        assert!(parse_cq(&s, "q(x) :- R(x,y").is_err());
        assert!(parse_cq(&s, "q(x) :- S(x,y)").is_err());
        assert!(parse_cq(&s, "q(x) :- true").is_err(), "unsafe query");
        assert!(parse_cq(&s, "q(x) :- R(x)").is_err(), "arity mismatch");
    }
}
