//! Tree CQs (Section 5): unary, connected, Berge-acyclic CQs over binary
//! schemas, corresponding to ELI concept expressions.

use crate::{Cq, QueryError, Result, RootedTree};
use cqfit_data::Example;
use cqfit_hom::simulates;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tree CQ: a unary CQ over a binary schema whose incidence graph is
/// acyclic and connected, kept together with its rooted-tree view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeCq {
    cq: Cq,
    tree: RootedTree,
}

impl TreeCq {
    /// Validates a CQ as a tree CQ.
    ///
    /// # Errors
    /// Fails with [`QueryError::NotATreeCq`] if the CQ is not unary,
    /// connected, Berge-acyclic, or over a binary schema.
    pub fn try_new(cq: Cq) -> Result<Self> {
        let tree = RootedTree::from_cq(&cq)?;
        Ok(TreeCq { cq, tree })
    }

    /// Builds a tree CQ from its rooted-tree view.
    ///
    /// # Errors
    /// Fails if the tree corresponds to an unsafe query (a single unlabeled
    /// node).
    pub fn from_rooted(tree: RootedTree) -> Result<Self> {
        let cq = tree.to_cq()?;
        Ok(TreeCq { cq, tree })
    }

    /// The underlying conjunctive query.
    pub fn as_cq(&self) -> &Cq {
        &self.cq
    }

    /// The rooted-tree view.
    pub fn rooted(&self) -> &RootedTree {
        &self.tree
    }

    /// The canonical example of the query (a tree-shaped data example).
    pub fn canonical_example(&self) -> Example {
        self.cq.canonical_example()
    }

    /// Size: number of variables plus number of atoms.
    pub fn size(&self) -> usize {
        self.cq.size()
    }

    /// Number of variables (nodes of the tree).
    pub fn num_variables(&self) -> usize {
        self.cq.num_variables()
    }

    /// Degree: the largest number of atoms a single variable occurs in.
    pub fn degree(&self) -> usize {
        self.cq.degree()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// True if the example satisfies the query at its distinguished element,
    /// decided in polynomial time via simulations (Lemma 5.3).
    pub fn is_satisfied_in(&self, example: &Example) -> bool {
        simulates(&self.canonical_example(), example)
            .expect("tree CQs and their examples live over binary schemas")
    }

    /// Containment `self ⊆ other` between tree CQs, decided in polynomial
    /// time via simulations (Lemma 5.3: `q1 ⊆ q2` iff `e_{q2} ⪯ e_{q1}`).
    pub fn is_contained_in(&self, other: &TreeCq) -> Result<bool> {
        if self.cq.schema().as_ref() != other.cq.schema().as_ref() {
            return Err(QueryError::Incompatible);
        }
        Ok(
            simulates(&other.canonical_example(), &self.canonical_example())
                .expect("binary schemas"),
        )
    }

    /// Equivalence of tree CQs.
    pub fn equivalent_to(&self, other: &TreeCq) -> Result<bool> {
        Ok(self.is_contained_in(other)? && other.is_contained_in(self)?)
    }

    /// Strict containment `self ⊊ other`.
    pub fn strictly_contained_in(&self, other: &TreeCq) -> Result<bool> {
        Ok(self.is_contained_in(other)? && !other.is_contained_in(self)?)
    }

    /// Reduces the tree CQ to an equivalent, irredundant tree CQ: repeatedly
    /// drops subtrees and unary labels whose removal preserves equivalence.
    /// (Removal always yields a more general query; equivalence is preserved
    /// exactly when the original still simulates into the reduced query.)
    pub fn reduce(&self) -> TreeCq {
        let mut tree = self.tree.clone();
        let original = tree.to_example();
        loop {
            let mut changed = false;
            // Try to drop a subtree.
            for node in tree.nodes() {
                if node == tree.root() {
                    continue;
                }
                let candidate = tree.without_subtree(node).expect("non-root node");
                let cand_ex = candidate.to_example();
                if simulates(&original, &cand_ex).expect("binary schema") {
                    tree = candidate;
                    changed = true;
                    break;
                }
            }
            if changed {
                continue;
            }
            // Try to drop a unary label.
            'labels: for node in tree.nodes() {
                for &rel in tree.labels(node).clone().iter() {
                    let candidate = tree.without_label(node, rel);
                    let cand_ex = candidate.to_example();
                    if simulates(&original, &cand_ex).expect("binary schema") {
                        tree = candidate;
                        changed = true;
                        break 'labels;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        TreeCq::from_rooted(tree).expect("reduction preserves equivalence, hence safety")
    }
}

impl fmt::Display for TreeCq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;
    use cqfit_data::{parse_example, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::binary_schema(["A", "P", "Q"], ["R", "S"])
    }

    fn tree_cq(text: &str) -> TreeCq {
        TreeCq::try_new(parse_cq(&schema(), text).unwrap()).unwrap()
    }

    #[test]
    fn paper_example_tree_and_non_tree() {
        // From §5: q(x) :- R(x,y), S(x,z), A(z) is a tree CQ;
        // q(x) :- R(x,y), S(x,y) is not.
        assert!(
            TreeCq::try_new(parse_cq(&schema(), "q(x) :- R(x,y), S(x,z), A(z)").unwrap()).is_ok()
        );
        assert!(TreeCq::try_new(parse_cq(&schema(), "q(x) :- R(x,y), S(x,y)").unwrap()).is_err());
    }

    #[test]
    fn satisfaction_via_simulation() {
        // Example 5.1: q(x) :- R(x,x) is not a tree CQ, but its unraveling
        // behaviour shows up through simulation: the tree CQ R(x,y) is
        // satisfied at a on the loop {R(a,a)}.
        let q = tree_cq("q(x) :- R(x,y), R(y,z)");
        let loop_ex = parse_example(&schema(), "R(a,a)\n* a").unwrap();
        assert!(q.is_satisfied_in(&loop_ex));
        let edge_ex = parse_example(&schema(), "R(a,b)\n* a").unwrap();
        assert!(!q.is_satisfied_in(&edge_ex));
    }

    #[test]
    fn containment_is_polynomial_simulation() {
        let more_specific = tree_cq("q(x) :- R(x,y), A(y)");
        let more_general = tree_cq("q(x) :- R(x,y)");
        assert!(more_specific.is_contained_in(&more_general).unwrap());
        assert!(!more_general.is_contained_in(&more_specific).unwrap());
        assert!(more_specific.strictly_contained_in(&more_general).unwrap());
    }

    #[test]
    fn containment_agrees_with_cq_containment() {
        let q1 = tree_cq("q(x) :- R(x,y), R(y,z), A(z)");
        let q2 = tree_cq("q(x) :- R(x,y)");
        assert_eq!(
            q1.is_contained_in(&q2).unwrap(),
            q1.as_cq().is_contained_in(q2.as_cq()).unwrap()
        );
        assert_eq!(
            q2.is_contained_in(&q1).unwrap(),
            q2.as_cq().is_contained_in(q1.as_cq()).unwrap()
        );
    }

    #[test]
    fn reduce_drops_redundant_sibling() {
        // R(x,y) ∧ R(x,z) ∧ A(z): the unlabeled sibling y is redundant.
        let q = tree_cq("q(x) :- R(x,y), R(x,z), A(z)");
        let r = q.reduce();
        assert_eq!(r.num_variables(), 2);
        assert!(r.equivalent_to(&q).unwrap());
    }

    #[test]
    fn reduce_folds_backward_edge() {
        // R(x,y) ∧ R(z,y): the second atom (a sibling of x below y via R⁻)
        // is redundant because z can be simulated by x.
        let q = tree_cq("q(x) :- R(x,y), R(z,y)");
        let r = q.reduce();
        assert_eq!(r.num_variables(), 2);
        assert!(r.equivalent_to(&q).unwrap());
    }

    #[test]
    fn reduce_keeps_irredundant_queries() {
        let q = tree_cq("q(x) :- R(x,y), A(y), R(x,z), P(z)");
        let r = q.reduce();
        assert_eq!(r.num_variables(), 3);
        assert!(r.equivalent_to(&q).unwrap());
    }

    #[test]
    fn reduce_drops_redundant_label_never_happens_without_reason() {
        let q = tree_cq("q(x) :- A(x), R(x,y)");
        let r = q.reduce();
        assert_eq!(r.size(), q.size());
    }

    #[test]
    fn depth_and_degree() {
        let q = tree_cq("q(x) :- R(x,y), R(y,z), S(y,w)");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.degree(), 3);
    }
}
