//! Unions of conjunctive queries (Section 4).

use crate::{Cq, QueryError, Result};
use cqfit_data::{Example, Instance, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// A union of conjunctive queries `q = q1 ∪ … ∪ qn` over a common schema and
/// arity (n ≥ 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Creates a UCQ from its disjuncts.
    ///
    /// # Errors
    /// Fails if the list is empty or the disjuncts disagree on schema or
    /// arity.
    pub fn new(disjuncts: Vec<Cq>) -> Result<Self> {
        let first = disjuncts.first().ok_or(QueryError::Incompatible)?;
        for d in &disjuncts[1..] {
            if d.schema().as_ref() != first.schema().as_ref() || d.arity() != first.arity() {
                return Err(QueryError::Incompatible);
            }
        }
        Ok(Ucq { disjuncts })
    }

    /// Builds the UCQ `⋃_{e ∈ examples} q_e` of canonical CQs of the given
    /// data examples — the canonical most-specific fitting candidate of
    /// Proposition 4.3.
    ///
    /// # Errors
    /// Fails if the list is empty or some example is not a data example.
    pub fn from_examples(examples: &[Example]) -> Result<Self> {
        let disjuncts: Result<Vec<Cq>> = examples.iter().map(Cq::from_example).collect();
        Ucq::new(disjuncts?)
    }

    /// The disjuncts of the union.
    pub fn disjuncts(&self) -> &[Cq] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// A UCQ always has at least one disjunct.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The schema of the query.
    pub fn schema(&self) -> &Arc<Schema> {
        self.disjuncts[0].schema()
    }

    /// The arity of the query.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Total size (sum of disjunct sizes).
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(Cq::size).sum()
    }

    /// Evaluates the UCQ on an instance: `q(I) = ⋃ q_i(I)`.
    pub fn evaluate(&self, instance: &Instance) -> Vec<Vec<Value>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for d in &self.disjuncts {
            for t in d.evaluate(instance) {
                if seen.insert(t.clone()) {
                    out.push(t);
                }
            }
        }
        out.sort();
        out
    }

    /// True if the example is a positive example for the UCQ (some disjunct
    /// is satisfied).
    pub fn is_satisfied_in(&self, example: &Example) -> bool {
        self.disjuncts.iter().any(|d| d.is_satisfied_in(example))
    }

    /// The paper's homomorphism relation on UCQs: `q → q'` iff for every
    /// disjunct `q'_i` of `q'` there is a disjunct `q_j` of `q` with
    /// `q_j → q'_i`.  Under this definition `q → q'` holds precisely when
    /// `q' ⊆ q`.
    pub fn maps_to(&self, other: &Ucq) -> bool {
        other
            .disjuncts
            .iter()
            .all(|oi| self.disjuncts.iter().any(|sj| sj.maps_to(oi)))
    }

    /// UCQ containment `q ⊆ q'`: every disjunct of `q` is contained in some
    /// disjunct of `q'`.
    pub fn is_contained_in(&self, other: &Ucq) -> Result<bool> {
        if self.schema().as_ref() != other.schema().as_ref() || self.arity() != other.arity() {
            return Err(QueryError::Incompatible);
        }
        Ok(other.maps_to(self))
    }

    /// UCQ equivalence.
    pub fn equivalent_to(&self, other: &Ucq) -> Result<bool> {
        Ok(self.is_contained_in(other)? && other.is_contained_in(self)?)
    }

    /// Minimizes the union: cores every disjunct with the mask-based core
    /// engine ([`Cq::minimized`]), then removes disjuncts contained in
    /// another disjunct.  The result is an equivalent, irredundant union of
    /// cores whose surviving disjuncts are pairwise incomparable under
    /// containment.
    ///
    /// Coring first makes the quadratic containment-pruning pass run on the
    /// smallest equivalent disjuncts (each containment check is a
    /// homomorphism search on their canonical examples).
    pub fn minimized(&self) -> Ucq {
        self.minimized_with(None)
    }

    /// [`Ucq::minimized`] with the core computations and the pairwise
    /// containment checks routed through a [`cqfit_hom::HomCache`] when
    /// one is given (`None` behaves exactly like `minimized`).  Used by
    /// the incremental fitting path so that repeated minimizations across
    /// requests and sessions are cache hits; there is exactly one copy of
    /// the pruning logic (including the equivalence tie-break) for the
    /// cached and uncached paths.
    pub fn minimized_with(&self, cache: Option<&cqfit_hom::HomCache>) -> Ucq {
        let disjuncts: Vec<Cq> = self
            .disjuncts
            .iter()
            .map(|d| match cache {
                Some(c) => Cq::from_example(&c.core_of(&d.canonical_example()))
                    .expect("core of a canonical example is a data example"),
                None => d.minimized(),
            })
            .collect();
        // Containment `q_i ⊆ q_j` is a homomorphism `e_{q_j} → e_{q_i}`
        // between the canonical examples of the cored disjuncts; they are
        // materialized once here instead of per pairwise check.
        let canon: Vec<Example> = disjuncts.iter().map(Cq::canonical_example).collect();
        let contained = |i: usize, j: usize| match cache {
            Some(c) => c.hom_exists(&canon[j], &canon[i]),
            None => cqfit_hom::hom_exists(&canon[j], &canon[i]),
        };
        let mut keep: Vec<bool> = vec![true; disjuncts.len()];
        for i in 0..disjuncts.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..disjuncts.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Drop disjunct i if it is contained in disjunct j (and, on
                // equivalence, keep the earlier one).
                let i_in_j = contained(i, j);
                let j_in_i = contained(j, i);
                if i_in_j && (!j_in_i || j < i) {
                    keep[i] = false;
                    break;
                }
            }
        }
        Ucq {
            disjuncts: disjuncts
                .into_iter()
                .zip(keep)
                .filter(|&(_, k)| k)
                .map(|(d, _)| d)
                .collect(),
        }
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∪  ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;
    use cqfit_data::parse_instance;

    fn unary_schema() -> Arc<Schema> {
        Schema::binary_schema(["P", "Q", "R"], [])
    }

    /// Example 4.1 of the paper: q = (P∧Q) ∪ (P∧R).
    fn example_4_1_ucq() -> Ucq {
        let s = unary_schema();
        let q1 = parse_cq(&s, "q() :- P(x), Q(x)").unwrap();
        let q2 = parse_cq(&s, "q() :- P(x), R(x)").unwrap();
        Ucq::new(vec![q1, q2]).unwrap()
    }

    #[test]
    fn evaluation_is_union() {
        let s = unary_schema();
        let q = example_4_1_ucq();
        let i = parse_instance(&s, "P(a)\nQ(a)\nP(b)\nR(b)\nP(c)").unwrap();
        // Boolean query: satisfied because some disjunct is satisfied.
        assert_eq!(q.evaluate(&i).len(), 1);
        let neg = parse_instance(&s, "P(a)\nQ(b)\nR(b)").unwrap();
        assert!(q.evaluate(&neg).is_empty());
    }

    #[test]
    fn containment_and_equivalence() {
        let s = unary_schema();
        let q = example_4_1_ucq();
        let p_only = Ucq::new(vec![parse_cq(&s, "q() :- P(x)").unwrap()]).unwrap();
        assert!(q.is_contained_in(&p_only).unwrap());
        assert!(!p_only.is_contained_in(&q).unwrap());
        assert!(q.equivalent_to(&q.clone()).unwrap());
    }

    #[test]
    fn maps_to_matches_containment_direction() {
        let s = unary_schema();
        let q = example_4_1_ucq();
        let p_only = Ucq::new(vec![parse_cq(&s, "q() :- P(x)").unwrap()]).unwrap();
        // q ⊆ p_only iff p_only → q.
        assert!(p_only.maps_to(&q));
        assert!(!q.maps_to(&p_only));
    }

    #[test]
    fn minimization_drops_redundant_disjuncts() {
        let s = unary_schema();
        let q1 = parse_cq(&s, "q() :- P(x)").unwrap();
        let q2 = parse_cq(&s, "q() :- P(x), Q(x)").unwrap();
        let u = Ucq::new(vec![q1, q2]).unwrap();
        let m = u.minimized();
        assert_eq!(m.len(), 1);
        assert!(m.equivalent_to(&u).unwrap());
    }

    #[test]
    fn mismatched_disjuncts_rejected() {
        let s = Schema::digraph();
        let q1 = parse_cq(&s, "q(x) :- R(x,y)").unwrap();
        let q2 = parse_cq(&s, "q() :- R(x,y)").unwrap();
        assert!(Ucq::new(vec![q1, q2]).is_err());
        assert!(Ucq::new(vec![]).is_err());
    }

    #[test]
    fn from_examples_builds_canonical_union() {
        let s = Schema::digraph();
        let e1 = {
            let i = parse_instance(&s, "R(a,b)").unwrap();
            Example::boolean(i)
        };
        let e2 = {
            let i = parse_instance(&s, "R(a,a)").unwrap();
            Example::boolean(i)
        };
        let u = Ucq::from_examples(&[e1.clone(), e2]).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.is_satisfied_in(&e1));
    }
}
