//! Conjunctive queries.

use crate::{QueryError, Result};
use cqfit_data::{Example, Instance, RelId, Schema, Value};
use cqfit_hom::{find_all_homomorphisms, find_homomorphism, hom_exists};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A query variable, represented as a dense index local to its [`Cq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub u32);

impl Variable {
    /// The index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An atom `R(x1,…,xn)` in the body of a CQ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation symbol.
    pub rel: RelId,
    /// Argument variables; length equals the arity of `rel`.
    pub args: Vec<Variable>,
}

/// A conjunctive query `q(x̄) :- α1 ∧ … ∧ αn` (§2.1).
///
/// The *answer variables* `x̄` may repeat; every answer variable must occur
/// in at least one atom (the safety condition).  A CQ of arity 0 is Boolean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    schema: Arc<Schema>,
    var_names: Vec<String>,
    answer_vars: Vec<Variable>,
    atoms: Vec<Atom>,
}

impl Cq {
    /// Builds a CQ directly from its parts: variable display names (their
    /// positions fix the [`Variable`] indices; names may repeat), answer
    /// variables, and atoms.  This is the validated counterpart of the
    /// name-deduplicating [`CqBuilder`], used by deserialization, where
    /// repeated display names must *not* merge distinct variables.
    ///
    /// # Errors
    /// Fails on atoms with out-of-range variables or wrong arities, on
    /// out-of-range answer variables, and on safety violations (an answer
    /// variable occurring in no atom).
    pub fn from_parts(
        schema: Arc<Schema>,
        var_names: Vec<String>,
        answer_vars: Vec<Variable>,
        atoms: Vec<Atom>,
    ) -> Result<Cq> {
        for a in &atoms {
            if a.rel.index() >= schema.len() {
                return Err(QueryError::UnknownRelation(format!("#{}", a.rel.0)));
            }
            let arity = schema.arity(a.rel);
            if a.args.len() != arity {
                return Err(QueryError::ArityMismatch {
                    relation: schema.name(a.rel).to_string(),
                    expected: arity,
                    got: a.args.len(),
                });
            }
            for v in &a.args {
                if v.index() >= var_names.len() {
                    return Err(QueryError::UnknownVariable(v.0));
                }
            }
        }
        let occurring: HashSet<Variable> =
            atoms.iter().flat_map(|a| a.args.iter().copied()).collect();
        for v in &answer_vars {
            if v.index() >= var_names.len() {
                return Err(QueryError::UnknownVariable(v.0));
            }
            if !occurring.contains(v) {
                return Err(QueryError::Unsafe(var_names[v.index()].clone()));
            }
        }
        Ok(Cq {
            schema,
            var_names,
            answer_vars,
            atoms,
        })
    }

    /// Starts building a CQ over the given schema.
    pub fn builder(schema: Arc<Schema>) -> CqBuilder {
        CqBuilder {
            schema,
            var_names: Vec::new(),
            answer_vars: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// The schema of the query.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The arity (number of answer variables, with repetitions).
    pub fn arity(&self) -> usize {
        self.answer_vars.len()
    }

    /// True if the query is Boolean (arity 0).
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// The answer variables `x̄`.
    pub fn answer_vars(&self) -> &[Variable] {
        &self.answer_vars
    }

    /// All variables of the query, in index order.
    pub fn variables(&self) -> impl Iterator<Item = Variable> {
        (0..self.var_names.len() as u32).map(Variable)
    }

    /// The existential variables: those that are not answer variables.
    pub fn existential_vars(&self) -> Vec<Variable> {
        let ans: HashSet<Variable> = self.answer_vars.iter().copied().collect();
        self.variables().filter(|v| !ans.contains(v)).collect()
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Variable) -> &str {
        &self.var_names[v.index()]
    }

    /// The atoms (conjuncts) of the query body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of variables (answer and existential).
    pub fn num_variables(&self) -> usize {
        self.var_names.len()
    }

    /// Size of the query: number of variables plus number of atoms (the
    /// measure used in the paper's size bounds).
    pub fn size(&self) -> usize {
        self.num_variables() + self.num_atoms()
    }

    /// The degree of the query: the largest number of atom occurrences of any
    /// single variable (§2.1).
    pub fn degree(&self) -> usize {
        let mut count = vec![0usize; self.var_names.len()];
        for a in &self.atoms {
            for v in &a.args {
                count[v.index()] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// True if the CQ has the Unique Names Property: no repeated answer
    /// variables (§2.1).
    pub fn has_unp(&self) -> bool {
        let mut seen = HashSet::new();
        self.answer_vars.iter().all(|v| seen.insert(*v))
    }

    /// The canonical example `e_q = (I_q, x̄)` of the query (§2.1): one value
    /// per variable, one fact per atom, distinguished tuple = answer
    /// variables.
    pub fn canonical_example(&self) -> Example {
        let mut inst = Instance::new(self.schema.clone());
        let vals: Vec<Value> = self
            .var_names
            .iter()
            .map(|n| inst.add_value(n.clone()))
            .collect();
        for a in &self.atoms {
            let args: Vec<Value> = a.args.iter().map(|v| vals[v.index()]).collect();
            inst.add_fact(a.rel, &args)
                .expect("atom arity checked at build time");
        }
        let dist = self.answer_vars.iter().map(|v| vals[v.index()]).collect();
        Example::new(inst, dist)
    }

    /// The canonical CQ of a data example (§2.1): a variable per active
    /// value, an atom per fact, answer variables for the distinguished tuple.
    ///
    /// # Errors
    /// Fails with [`QueryError::NotADataExample`] if some distinguished value
    /// is outside the active domain (the result would violate safety).
    pub fn from_example(example: &Example) -> Result<Cq> {
        if !example.is_data_example() {
            return Err(QueryError::NotADataExample);
        }
        let inst = example.instance();
        let mut var_of_value = vec![None; inst.num_values()];
        let mut var_names = Vec::new();
        for v in inst.values() {
            if inst.is_active(v) {
                var_of_value[v.index()] = Some(Variable(var_names.len() as u32));
                var_names.push(format!("x_{}", inst.label(v)));
            }
        }
        let atoms = inst
            .facts()
            .iter()
            .map(|f| Atom {
                rel: f.rel,
                args: f
                    .args
                    .iter()
                    .map(|a| var_of_value[a.index()].expect("fact values are active"))
                    .collect(),
            })
            .collect();
        let answer_vars = example
            .distinguished()
            .iter()
            .map(|d| var_of_value[d.index()].expect("data example distinguished are active"))
            .collect();
        Ok(Cq {
            schema: inst.schema().clone(),
            var_names,
            answer_vars,
            atoms,
        })
    }

    /// Evaluates the query on an instance, returning the set of answer
    /// tuples `q(I)` (Chandra–Merlin: answers correspond to homomorphisms of
    /// the canonical example into `(I, ·)`).
    ///
    /// The result may be exponentially large in the worst case; use
    /// [`Cq::contains`] for single-tuple membership tests.
    pub fn evaluate(&self, instance: &Instance) -> Vec<Vec<Value>> {
        let canon = self.canonical_example();
        let src = Example::boolean(canon.instance().clone());
        let dst = Example::boolean(instance.clone());
        let homs = find_all_homomorphisms(&src, &dst, usize::MAX);
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for h in homs {
            let tuple: Vec<Value> = canon.distinguished().iter().map(|d| h.apply(*d)).collect();
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
        out.sort();
        out
    }

    /// True if `tuple ∈ q(I)`.
    pub fn contains(&self, instance: &Instance, tuple: &[Value]) -> bool {
        if tuple.len() != self.arity() {
            return false;
        }
        let e = Example::new(instance.clone(), tuple.to_vec());
        self.is_satisfied_in(&e)
    }

    /// True if the example is a *positive example* for the query: its
    /// distinguished tuple is an answer, i.e. `e_q → e`.
    pub fn is_satisfied_in(&self, example: &Example) -> bool {
        hom_exists(&self.canonical_example(), example)
    }

    /// True if there is a homomorphism `q → q'` between the canonical
    /// examples (the paper's notation `q → q'`).
    pub fn maps_to(&self, other: &Cq) -> bool {
        hom_exists(&self.canonical_example(), &other.canonical_example())
    }

    /// Query containment `q ⊆ q'`: every answer of `q` is an answer of `q'`
    /// on every instance.  By Chandra–Merlin this holds iff `e_{q'} → e_q`.
    pub fn is_contained_in(&self, other: &Cq) -> Result<bool> {
        if self.schema.as_ref() != other.schema.as_ref() || self.arity() != other.arity() {
            return Err(QueryError::Incompatible);
        }
        Ok(other.maps_to(self))
    }

    /// Query equivalence `q ≡ q'`.
    pub fn equivalent_to(&self, other: &Cq) -> Result<bool> {
        Ok(self.is_contained_in(other)? && other.is_contained_in(self)?)
    }

    /// Strict containment `q ⊊ q'`.
    pub fn strictly_contained_in(&self, other: &Cq) -> Result<bool> {
        Ok(self.is_contained_in(other)? && !other.is_contained_in(self)?)
    }

    /// The homomorphism core of the query: the canonical CQ of the core of
    /// its canonical example.  The result is equivalent to the original.
    ///
    /// Alias of [`Cq::minimized`].
    pub fn core(&self) -> Cq {
        self.minimized()
    }

    /// The minimized (cored) equivalent query, computed by running the
    /// mask-based core engine ([`cqfit_hom::core_of`]) on the canonical
    /// example: an equivalent CQ with the fewest variables and atoms among
    /// all retracts.
    pub fn minimized(&self) -> Cq {
        let core = cqfit_hom::core_of(&self.canonical_example());
        Cq::from_example(&core).expect("core of a canonical example is a data example")
    }

    /// True if the query is connected in the sense of §2.2 (its canonical
    /// example is connected).
    pub fn is_connected(&self) -> bool {
        self.canonical_example().is_connected()
    }

    /// The number of connected components of the canonical example.
    pub fn num_connected_components(&self) -> usize {
        self.canonical_example().connected_components().len()
    }

    /// A homomorphism witnessing `self → other`, if one exists.
    pub fn homomorphism_to(&self, other: &Cq) -> Option<cqfit_hom::Homomorphism> {
        find_homomorphism(&self.canonical_example(), &other.canonical_example())
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        if self.atoms.is_empty() {
            write!(f, "true")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.schema.name(a.rel))?;
            for (j, v) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.var_name(*v))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Cq`].
#[derive(Debug, Clone)]
pub struct CqBuilder {
    schema: Arc<Schema>,
    var_names: Vec<String>,
    answer_vars: Vec<Variable>,
    atoms: Vec<Atom>,
}

impl CqBuilder {
    /// Returns the variable with the given name, creating it if necessary.
    pub fn var(&mut self, name: impl Into<String>) -> Variable {
        let name = name.into();
        match self.var_names.iter().position(|n| *n == name) {
            Some(i) => Variable(i as u32),
            None => {
                let v = Variable(self.var_names.len() as u32);
                self.var_names.push(name);
                v
            }
        }
    }

    /// Declares the answer variables (in order, possibly with repetitions).
    pub fn answer(&mut self, vars: &[Variable]) -> &mut Self {
        self.answer_vars = vars.to_vec();
        self
    }

    /// Declares the answer variables by name.
    pub fn answer_named(&mut self, names: &[&str]) -> &mut Self {
        let vars: Vec<Variable> = names.iter().map(|n| self.var(*n)).collect();
        self.answer_vars = vars;
        self
    }

    /// Adds an atom by relation name and variable names.
    ///
    /// # Errors
    /// Fails on unknown relations or arity mismatches.
    pub fn atom(&mut self, rel: &str, args: &[&str]) -> Result<&mut Self> {
        let rel_id = self
            .schema
            .rel(rel)
            .ok_or_else(|| QueryError::UnknownRelation(rel.to_string()))?;
        let arity = self.schema.arity(rel_id);
        if args.len() != arity {
            return Err(QueryError::ArityMismatch {
                relation: rel.to_string(),
                expected: arity,
                got: args.len(),
            });
        }
        let vars: Vec<Variable> = args.iter().map(|a| self.var(*a)).collect();
        self.atoms.push(Atom {
            rel: rel_id,
            args: vars,
        });
        Ok(self)
    }

    /// Adds an atom from pre-created variables.
    ///
    /// # Errors
    /// Fails on arity mismatches or variables not created by this builder.
    pub fn atom_vars(&mut self, rel: RelId, args: &[Variable]) -> Result<&mut Self> {
        let arity = self.schema.arity(rel);
        if args.len() != arity {
            return Err(QueryError::ArityMismatch {
                relation: self.schema.name(rel).to_string(),
                expected: arity,
                got: args.len(),
            });
        }
        for v in args {
            if v.index() >= self.var_names.len() {
                return Err(QueryError::UnknownVariable(v.0));
            }
        }
        self.atoms.push(Atom {
            rel,
            args: args.to_vec(),
        });
        Ok(self)
    }

    /// Finishes the query, checking the safety condition.
    ///
    /// # Errors
    /// Fails with [`QueryError::Unsafe`] if some answer variable occurs in no
    /// atom.
    pub fn build(&self) -> Result<Cq> {
        let occurring: HashSet<Variable> = self
            .atoms
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .collect();
        for v in &self.answer_vars {
            if !occurring.contains(v) {
                return Err(QueryError::Unsafe(self.var_names[v.index()].clone()));
            }
        }
        Ok(Cq {
            schema: self.schema.clone(),
            var_names: self.var_names.clone(),
            answer_vars: self.answer_vars.clone(),
            atoms: self.atoms.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::parse_instance;

    fn digraph() -> Arc<Schema> {
        Schema::digraph()
    }

    fn cq(text: &str) -> Cq {
        crate::parse_cq(&digraph(), text).unwrap()
    }

    #[test]
    fn builder_and_safety() {
        let schema = digraph();
        let mut b = Cq::builder(schema.clone());
        let x = b.var("x");
        let y = b.var("y");
        b.answer(&[x]);
        b.atom("R", &["x", "y"]).unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(q.num_variables(), 2);
        assert_eq!(q.existential_vars(), vec![y]);
        assert!(q.has_unp());

        let mut b = Cq::builder(schema);
        let z = b.var("z");
        b.answer(&[z]);
        assert!(matches!(b.build(), Err(QueryError::Unsafe(_))));
    }

    #[test]
    fn canonical_example_roundtrip() {
        let q = cq("q(x) :- R(x,y), R(y,z), R(z,x)");
        let e = q.canonical_example();
        assert_eq!(e.size(), 3);
        assert_eq!(e.arity(), 1);
        let q2 = Cq::from_example(&e).unwrap();
        assert!(q.equivalent_to(&q2).unwrap());
    }

    #[test]
    fn canonical_cq_requires_data_example() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let c = i.add_value("c");
        let e = Example::new(i, vec![c]);
        assert_eq!(
            Cq::from_example(&e).unwrap_err(),
            QueryError::NotADataExample
        );
    }

    #[test]
    fn evaluation_on_small_graph() {
        // q(x) :- R(x,y), R(y,x): elements on a 2-cycle.
        let q = cq("q(x) :- R(x,y), R(y,x)");
        let i = parse_instance(&digraph(), "R(a,b)\nR(b,a)\nR(b,c)").unwrap();
        let answers = q.evaluate(&i);
        let a = i.value_by_label("a").unwrap();
        let b = i.value_by_label("b").unwrap();
        assert_eq!(answers, vec![vec![a], vec![b]]);
        assert!(q.contains(&i, &[a]));
        let c = i.value_by_label("c").unwrap();
        assert!(!q.contains(&i, &[c]));
    }

    #[test]
    fn boolean_evaluation() {
        let q = cq("q() :- R(x,x)");
        let yes = parse_instance(&digraph(), "R(a,a)").unwrap();
        let no = parse_instance(&digraph(), "R(a,b)").unwrap();
        assert_eq!(q.evaluate(&yes), vec![Vec::<Value>::new()]);
        assert!(q.evaluate(&no).is_empty());
    }

    #[test]
    fn containment_via_chandra_merlin() {
        // q1(x) :- R(x,y),R(y,z) (path of length 2 from x)
        // q2(x) :- R(x,y)        (edge from x)
        // q1 ⊆ q2 but not conversely.
        let q1 = cq("q(x) :- R(x,y), R(y,z)");
        let q2 = cq("q(x) :- R(x,y)");
        assert!(q1.is_contained_in(&q2).unwrap());
        assert!(!q2.is_contained_in(&q1).unwrap());
        assert!(q1.strictly_contained_in(&q2).unwrap());
        assert!(!q1.equivalent_to(&q2).unwrap());
    }

    #[test]
    fn equivalence_of_redundant_query() {
        let q1 = cq("q(x) :- R(x,y), R(x,z)");
        let q2 = cq("q(x) :- R(x,y)");
        assert!(q1.equivalent_to(&q2).unwrap());
        let core = q1.core();
        assert_eq!(core.num_atoms(), 1);
        assert!(core.equivalent_to(&q1).unwrap());
    }

    #[test]
    fn degree_and_components() {
        let q = cq("q(x) :- R(x,y), R(x,z), R(u,v)");
        assert_eq!(q.degree(), 2);
        // Components of the pointed instance are taken modulo distinguished
        // elements (§2.2, Example 2.3): R(x,y) and R(x,z) only share the
        // answer variable x, so they are separate components.
        assert_eq!(q.num_connected_components(), 3);
        assert!(!q.is_connected());
        let q2 = cq("q(x) :- R(x,y)");
        assert!(q2.is_connected());
    }

    #[test]
    fn display_format() {
        let q = cq("q(x) :- R(x,y), R(y,y)");
        assert_eq!(q.to_string(), "q(x) :- R(x,y), R(y,y)");
    }

    #[test]
    fn incompatible_containment_rejected() {
        let q1 = cq("q(x) :- R(x,y)");
        let q2 = cq("q() :- R(x,y)");
        assert_eq!(
            q1.is_contained_in(&q2).unwrap_err(),
            QueryError::Incompatible
        );
    }

    #[test]
    fn repeated_answer_variables() {
        let q = cq("q(x,x) :- R(x,y)");
        assert_eq!(q.arity(), 2);
        assert!(!q.has_unp());
        let i = parse_instance(&digraph(), "R(a,b)").unwrap();
        let a = i.value_by_label("a").unwrap();
        let b = i.value_by_label("b").unwrap();
        assert!(q.contains(&i, &[a, a]));
        assert!(!q.contains(&i, &[a, b]));
    }
}
