//! # cqfit-query
//!
//! Conjunctive queries (CQs), unions of conjunctive queries (UCQs) and tree
//! CQs as studied in *Extremal Fitting Problems for Conjunctive Queries*
//! (PODS 2023), together with:
//!
//! * the canonical example ↔ canonical CQ correspondence (§2.1),
//! * query evaluation and the Chandra–Merlin theorem,
//! * query containment and equivalence via the homomorphism pre-order (§2.2),
//! * incidence graphs, degree, connectedness and c-acyclicity (§2.2),
//! * tree CQs over binary schemas and their rooted-tree view (§5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclic;
mod cq;
mod error;
mod parse;
mod rooted;
mod serde_impls;
mod tree;
mod ucq;

pub use acyclic::{is_berge_acyclic, is_c_acyclic, is_c_acyclic_example, IncidenceGraph};
pub use cq::{Atom, Cq, CqBuilder, Variable};
pub use error::QueryError;
pub use parse::parse_cq;
pub use rooted::{Role, RootedTree};
pub use tree::TreeCq;
pub use ucq::Ucq;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
