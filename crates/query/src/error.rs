//! Error type for the query layer.

use cqfit_data::DataError;
use std::fmt;

/// Errors raised while building or transforming queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An answer variable does not occur in any atom (violates the safety
    /// condition of §2.1).
    Unsafe(String),
    /// An atom has the wrong number of arguments for its relation.
    ArityMismatch {
        /// Relation involved.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// An unknown relation was referenced.
    UnknownRelation(String),
    /// A variable id outside of the query was referenced.
    UnknownVariable(u32),
    /// The canonical CQ of a pointed instance that is not a data example was
    /// requested (the result would be unsafe).
    NotADataExample,
    /// A tree CQ was requested from a CQ that is not unary, not connected,
    /// not Berge-acyclic, or not over a binary schema.
    NotATreeCq(String),
    /// Two queries over different schemas or of different arities were
    /// combined.
    Incompatible,
    /// Error from the data layer.
    Data(DataError),
    /// Error while parsing the textual query syntax.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Unsafe(v) => write!(
                f,
                "answer variable `{v}` does not occur in any atom (safety violation)"
            ),
            QueryError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {got} arguments were supplied"
            ),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            QueryError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            QueryError::NotADataExample => write!(
                f,
                "the canonical CQ is only defined for data examples (distinguished elements must be active)"
            ),
            QueryError::NotATreeCq(msg) => write!(f, "not a tree CQ: {msg}"),
            QueryError::Incompatible => {
                write!(f, "queries have different schemas or arities")
            }
            QueryError::Data(e) => write!(f, "{e}"),
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<DataError> for QueryError {
    fn from(e: DataError) -> Self {
        QueryError::Data(e)
    }
}
