//! Incidence graphs, c-acyclicity and Berge-acyclicity (§2.2, Definition
//! 2.10).

use crate::Cq;
use cqfit_data::{Example, Value};
use std::collections::HashSet;

/// The incidence (multi)graph of an example: a bipartite multigraph between
/// active-domain values and facts, with one edge per occurrence of a value in
/// a fact.
#[derive(Debug, Clone)]
pub struct IncidenceGraph {
    /// For each value index, the number of occurrences in facts.
    occurrence_count: Vec<usize>,
}

impl IncidenceGraph {
    /// Builds the incidence graph of an example.
    pub fn of_example(e: &Example) -> Self {
        let mut occurrence_count = vec![0usize; e.instance().num_values()];
        for f in e.instance().facts() {
            for a in &f.args {
                occurrence_count[a.index()] += 1;
            }
        }
        IncidenceGraph { occurrence_count }
    }

    /// The degree (number of occurrences) of a value.
    pub fn value_degree(&self, v: Value) -> usize {
        self.occurrence_count[v.index()]
    }

    /// The maximum degree over all values.
    pub fn max_value_degree(&self) -> usize {
        self.occurrence_count.iter().copied().max().unwrap_or(0)
    }
}

/// Checks whether the incidence multigraph restricted to non-distinguished
/// values is acyclic, i.e. every cycle of the incidence graph (including
/// length-2 multi-edge cycles) passes through a distinguished element.
fn acyclic_modulo(e: &Example, excluded: &HashSet<Value>) -> bool {
    // Union-find over (non-excluded values) ∪ facts; every occurrence of a
    // non-excluded value in a fact is an edge.  A cycle exists iff some edge
    // connects two already-connected nodes.
    let inst = e.instance();
    let n_vals = inst.num_values();
    let n_facts = inst.num_facts();
    let mut parent: Vec<usize> = (0..n_vals + n_facts).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (fi, fact) in inst.facts().iter().enumerate() {
        let fact_node = n_vals + fi;
        for a in &fact.args {
            if excluded.contains(a) {
                continue;
            }
            let ra = find(&mut parent, a.index());
            let rf = find(&mut parent, fact_node);
            if ra == rf {
                return false;
            }
            parent[ra] = rf;
        }
    }
    true
}

/// True if the example is c-acyclic (Definition 2.10): every cycle of its
/// incidence graph passes through a distinguished element.
pub fn is_c_acyclic_example(e: &Example) -> bool {
    let excluded: HashSet<Value> = e.distinguished().iter().copied().collect();
    acyclic_modulo(e, &excluded)
}

/// True if the CQ is c-acyclic (its canonical example is).
pub fn is_c_acyclic(q: &Cq) -> bool {
    is_c_acyclic_example(&q.canonical_example())
}

/// True if the example is Berge-acyclic: its incidence graph has no cycle at
/// all (distinguished elements get no special treatment).  Together with
/// connectedness and unarity this characterises tree CQs (§5).
pub fn is_berge_acyclic(e: &Example) -> bool {
    acyclic_modulo(e, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;
    use cqfit_data::Schema;

    /// Example 2.13 of the paper: q1, q2 are c-acyclic, q3 is not.
    #[test]
    fn paper_example_2_13() {
        let schema = Schema::binary_schema([], ["R", "S"]);
        let q1 = parse_cq(&schema, "q(x) :- R(x,y), R(y,z)").unwrap();
        let q2 = parse_cq(&schema, "q(x) :- R(x,x), S(u,v), S(v,w)").unwrap();
        let q3 = parse_cq(&schema, "q(x) :- R(x,y), R(y,y)").unwrap();
        assert!(is_c_acyclic(&q1));
        assert!(is_c_acyclic(&q2));
        assert!(!is_c_acyclic(&q3));
    }

    /// Example 2.9/2.11: a directed path is c-acyclic, a loop is not (as a
    /// Boolean example).
    #[test]
    fn paper_example_2_11() {
        let schema = Schema::digraph();
        let path = parse_cq(&schema, "q() :- R(a,b), R(b,c), R(c,d)").unwrap();
        let looped = parse_cq(&schema, "q() :- R(a,a)").unwrap();
        assert!(is_c_acyclic(&path));
        assert!(!is_c_acyclic(&looped));
    }

    #[test]
    fn repeated_occurrence_in_one_atom_is_a_cycle() {
        let schema = Schema::digraph();
        // R(x,x) with x existential: multi-edge cycle of length 2.
        let q = parse_cq(&schema, "q() :- R(x,x)").unwrap();
        assert!(!is_c_acyclic(&q));
        // …but if x is an answer variable the cycle passes through a
        // distinguished element.
        let q = parse_cq(&schema, "q(x) :- R(x,x)").unwrap();
        assert!(is_c_acyclic(&q));
        assert!(!is_berge_acyclic(&q.canonical_example()));
    }

    #[test]
    fn two_atoms_sharing_two_variables() {
        let schema = Schema::binary_schema([], ["R", "S"]);
        let q = parse_cq(&schema, "q() :- R(x,y), S(x,y)").unwrap();
        assert!(!is_c_acyclic(&q));
        // If x is an answer variable, the unique cycle x–R–y–S–x passes
        // through the distinguished element x, so the query is c-acyclic.
        let q = parse_cq(&schema, "q(x) :- R(x,y), S(x,y)").unwrap();
        assert!(is_c_acyclic(&q));
    }

    #[test]
    fn berge_acyclic_tree() {
        let schema = Schema::binary_schema(["A"], ["R", "S"]);
        let q = parse_cq(&schema, "q(x) :- R(x,y), S(x,z), A(z)").unwrap();
        assert!(is_berge_acyclic(&q.canonical_example()));
        let q2 = parse_cq(&schema, "q(x) :- R(x,y), S(x,y)").unwrap();
        assert!(!is_berge_acyclic(&q2.canonical_example()));
    }

    #[test]
    fn incidence_degrees() {
        let schema = Schema::digraph();
        let q = parse_cq(&schema, "q(x) :- R(x,y), R(x,z), R(x,x)").unwrap();
        let g = IncidenceGraph::of_example(&q.canonical_example());
        assert_eq!(g.max_value_degree(), 4);
    }
}
