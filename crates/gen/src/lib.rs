//! # cqfit-gen
//!
//! Workload generators used by the `cqfit` benchmarks, examples and tests:
//!
//! * the size-lower-bound families of the paper (prime cycles for
//!   Theorem 3.40, the bit-string instances of Theorems 3.41/3.42, the
//!   L/R/A-family of Theorem 5.37),
//! * the exact-k-colorability examples of Theorem 3.1,
//! * the Gallai–Hasse–Roy–Vitaver path/order duality of Example 2.14,
//! * the EmpInfo Query-By-Example database of Figure 1 / Example 1.1,
//! * random instances, examples and tree CQs for property tests and
//!   benchmarks,
//! * fixed-seed churn workloads (long randomized add/remove sequences)
//!   for the engine's write-ahead log and recovery paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod families;
mod random;

pub use families::{
    bitstring_family, bitstring_family_z, directed_cycle, directed_path, empinfo_database,
    exact_colorability, ghrv_examples, linear_order, lra_family, prime_cycles_family, primes,
    symmetric_clique,
};
pub use random::{
    churn_workload, random_example, random_labeled_examples, random_tree_cq, resolve_churn,
    ChurnOp, RandomConfig, ResolvedChurnOp,
};
