//! The deterministic example families used in the paper's constructions.

use cqfit_data::{Example, Instance, LabeledExamples, Schema, Value};
use std::sync::Arc;

/// The first `n` prime numbers (2, 3, 5, …).
pub fn primes(n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut candidate = 2usize;
    while out.len() < n {
        if (2..candidate).all(|d| d * d > candidate || !candidate.is_multiple_of(d)) {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

/// A directed cycle of the given length as a Boolean example over the
/// single-binary-relation schema.
pub fn directed_cycle(schema: &Arc<Schema>, len: usize) -> Example {
    let rel = schema.binary_rels().next().expect("binary relation");
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..len).map(|i| inst.add_value(format!("c{i}"))).collect();
    for i in 0..len {
        inst.add_fact(rel, &[vs[i], vs[(i + 1) % len]])
            .expect("cycle");
    }
    Example::boolean(inst)
}

/// A directed path with `len` edges as a Boolean example.
pub fn directed_path(schema: &Arc<Schema>, len: usize) -> Example {
    let rel = schema.binary_rels().next().expect("binary relation");
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..=len).map(|i| inst.add_value(format!("p{i}"))).collect();
    for i in 0..len {
        inst.add_fact(rel, &[vs[i], vs[i + 1]]).expect("path");
    }
    Example::boolean(inst)
}

/// The transitive tournament (linear order) on `n` vertices as a Boolean
/// example.
pub fn linear_order(schema: &Arc<Schema>, n: usize) -> Example {
    let rel = schema.binary_rels().next().expect("binary relation");
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..n).map(|i| inst.add_value(format!("o{i}"))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            inst.add_fact(rel, &[vs[i], vs[j]]).expect("order");
        }
    }
    Example::boolean(inst)
}

/// The symmetric clique `K_n` (an irreflexive symmetric relation) as a
/// Boolean example.
pub fn symmetric_clique(schema: &Arc<Schema>, n: usize) -> Example {
    let rel = schema.binary_rels().next().expect("binary relation");
    let mut inst = Instance::new(schema.clone());
    let vs: Vec<Value> = (0..n).map(|i| inst.add_value(format!("k{i}"))).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                inst.add_fact(rel, &[vs[i], vs[j]]).expect("clique");
            }
        }
    }
    Example::boolean(inst)
}

/// Theorem 3.40: a collection of labeled Boolean examples of combined size
/// polynomial in `n` whose smallest fitting CQ has at least `2ⁿ` atoms —
/// positives are the directed cycles of the 2nd to `n`-th prime lengths,
/// the negative is the 2-cycle.
pub fn prime_cycles_family(n: usize) -> LabeledExamples {
    let schema = Schema::digraph();
    let ps = primes(n.max(1));
    let positives = ps[1..]
        .iter()
        .map(|&p| directed_cycle(&schema, p))
        .collect();
    let negatives = vec![directed_cycle(&schema, ps[0])];
    LabeledExamples::new(positives, negatives).expect("well-formed family")
}

/// Theorem 3.1: the exact-k-colorability verification examples — positives
/// `{K_{k+1}}`, negatives `{K_k}`.  The canonical CQ of a graph `G` fits iff
/// `G` is (k+1)-colorable but not k-colorable.
pub fn exact_colorability(k: usize) -> LabeledExamples {
    let schema = Schema::digraph();
    LabeledExamples::new(
        vec![symmetric_clique(&schema, k + 1)],
        vec![symmetric_clique(&schema, k)],
    )
    .expect("well-formed family")
}

/// Example 2.14 (Gallai–Hasse–Roy–Vitaver): the directed path with `n` edges
/// and the linear order on `n` vertices, which form a homomorphism duality
/// `({P_n}, {T_{n-1}})`.
pub fn ghrv_examples(n: usize) -> (Example, Example) {
    let schema = Schema::digraph();
    (directed_path(&schema, n), linear_order(&schema, n))
}

/// The schema of the bit-string family of Theorems 3.41/3.42:
/// unary `T1..Tn, F1..Fn` (plus optionally `Z0, Z1`) and binary `R1..Rn`.
fn bitstring_schema(n: usize, with_z: bool) -> Arc<Schema> {
    let mut b = Schema::builder();
    for i in 1..=n {
        b = b.relation(format!("T{i}"), 1).expect("fresh");
        b = b.relation(format!("F{i}"), 1).expect("fresh");
    }
    if with_z {
        b = b.relation("Z0", 1).expect("fresh");
        b = b.relation("Z1", 1).expect("fresh");
    }
    for i in 1..=n {
        b = b.relation(format!("R{i}"), 2).expect("fresh");
    }
    Arc::new(b.build())
}

/// Builds the positive example `P_i` of Theorem 3.41 over the given schema.
fn bitstring_positive(schema: &Arc<Schema>, n: usize, i: usize, with_z: bool) -> Example {
    let mut inst = Instance::new(schema.clone());
    let zero = inst.add_value("0");
    let one = inst.add_value("1");
    let both = [zero, one];
    let t = |j: usize| schema.rel(&format!("T{j}")).expect("unary");
    let f = |j: usize| schema.rel(&format!("F{j}")).expect("unary");
    let r = |j: usize| schema.rel(&format!("R{j}")).expect("binary");
    // F_i(0), T_i(1).
    inst.add_fact(f(i), &[zero]).unwrap();
    inst.add_fact(t(i), &[one]).unwrap();
    // All unary facts for T_j, F_j with j ≠ i.
    for j in 1..=n {
        if j != i {
            for &v in &both {
                inst.add_fact(t(j), &[v]).unwrap();
                inst.add_fact(f(j), &[v]).unwrap();
            }
        }
    }
    // Z0/Z1 everywhere (Theorem 3.42 variant).
    if with_z {
        for name in ["Z0", "Z1"] {
            let rel = schema.rel(name).unwrap();
            for &v in &both {
                inst.add_fact(rel, &[v]).unwrap();
            }
        }
    }
    // R_j(0,0), R_j(1,1) for j < i; R_i(0,1); R_j(1,0) for j > i.
    for j in 1..=n {
        if j < i {
            inst.add_fact(r(j), &[zero, zero]).unwrap();
            inst.add_fact(r(j), &[one, one]).unwrap();
        } else if j == i {
            inst.add_fact(r(j), &[zero, one]).unwrap();
        } else {
            inst.add_fact(r(j), &[one, zero]).unwrap();
        }
    }
    Example::boolean(inst)
}

/// Builds the negative example `N` of Theorem 3.41 (with optional Z-cluster
/// element of Theorem 3.42).
fn bitstring_negative(schema: &Arc<Schema>, n: usize, with_z: bool) -> Example {
    let mut inst = Instance::new(schema.clone());
    let a: Vec<Value> = (1..=n).map(|i| inst.add_value(format!("a{i}"))).collect();
    let b: Vec<Value> = (1..=n).map(|i| inst.add_value(format!("b{i}"))).collect();
    let c: Vec<Value> = (1..=n).map(|i| inst.add_value(format!("c{i}"))).collect();
    let t = |j: usize| schema.rel(&format!("T{j}")).expect("unary");
    let f = |j: usize| schema.rel(&format!("F{j}")).expect("unary");
    let r = |j: usize| schema.rel(&format!("R{j}")).expect("binary");
    // Unary facts: A-cluster misses T_i(a_i), B-cluster misses F_i(b_i),
    // C-cluster misses both T_i(c_i) and F_i(c_i).
    for (i, &ai) in a.iter().enumerate() {
        for j in 1..=n {
            if j != i + 1 {
                inst.add_fact(t(j), &[ai]).unwrap();
            }
            inst.add_fact(f(j), &[ai]).unwrap();
        }
    }
    for (i, &bi) in b.iter().enumerate() {
        for j in 1..=n {
            inst.add_fact(t(j), &[bi]).unwrap();
            if j != i + 1 {
                inst.add_fact(f(j), &[bi]).unwrap();
            }
        }
    }
    for (i, &ci) in c.iter().enumerate() {
        for j in 1..=n {
            if j != i + 1 {
                inst.add_fact(t(j), &[ci]).unwrap();
                inst.add_fact(f(j), &[ci]).unwrap();
            }
        }
    }
    // Z0/Z1 everywhere on a, b, c clusters.
    if with_z {
        for name in ["Z0", "Z1"] {
            let rel = schema.rel(name).unwrap();
            for &v in a.iter().chain(&b).chain(&c) {
                inst.add_fact(rel, &[v]).unwrap();
            }
        }
    }
    // Binary facts.  "All facts over domain A/B/C" includes every binary
    // fact within the respective cluster; in addition all R_j(x,y) with
    // x ∈ B, y ∈ A, and all R_j(x,y) with x ∈ C or y ∈ C.
    let everyone: Vec<Value> = a.iter().chain(&b).chain(&c).copied().collect();
    for j in 1..=n {
        for cluster in [&a, &b, &c] {
            for &x in cluster.iter() {
                for &y in cluster.iter() {
                    inst.add_fact(r(j), &[x, y]).unwrap();
                }
            }
        }
        for &x in &b {
            for &y in &a {
                inst.add_fact(r(j), &[x, y]).unwrap();
            }
        }
        for &x in &c {
            for &y in &everyone {
                inst.add_fact(r(j), &[x, y]).unwrap();
                inst.add_fact(r(j), &[y, x]).unwrap();
            }
        }
    }
    // Theorem 3.42: one further value z with all unary facts except Z0, Z1
    // and all binary facts touching z.
    if with_z {
        let z = inst.add_value("z");
        for j in 1..=n {
            inst.add_fact(t(j), &[z]).unwrap();
            inst.add_fact(f(j), &[z]).unwrap();
        }
        for j in 1..=n {
            for &y in &everyone {
                inst.add_fact(r(j), &[z, y]).unwrap();
                inst.add_fact(r(j), &[y, z]).unwrap();
            }
            inst.add_fact(r(j), &[z, z]).unwrap();
        }
    }
    Example::boolean(inst)
}

/// Theorem 3.41: a collection of labeled Boolean examples of size polynomial
/// in `n` with a unique fitting CQ, every fitting CQ having at least `2ⁿ`
/// variables.
pub fn bitstring_family(n: usize) -> LabeledExamples {
    let schema = bitstring_schema(n, false);
    let positives = (1..=n)
        .map(|i| bitstring_positive(&schema, n, i, false))
        .collect();
    let negatives = vec![bitstring_negative(&schema, n, false)];
    LabeledExamples::new(positives, negatives).expect("well-formed family")
}

/// Theorem 3.42: the `Z0/Z1` extension of [`bitstring_family`], which has a
/// basis of most-general fitting CQs of cardinality `2^(2ⁿ)`.
pub fn bitstring_family_z(n: usize) -> LabeledExamples {
    let schema = bitstring_schema(n, true);
    let positives = (1..=n)
        .map(|i| bitstring_positive(&schema, n, i, true))
        .collect();
    let negatives = vec![bitstring_negative(&schema, n, true)];
    LabeledExamples::new(positives, negatives).expect("well-formed family")
}

/// Theorem 5.37 / Figure 5: unary examples over the schema `{A, L, R}` whose
/// fitting tree CQs are doubly exponentially large.  Positives are the cycle
/// instances `D_{p_1}, …, D_{p_n}` (pointed at 0), the negatives are the
/// instance `I` of Figure 5 pointed at `01` and `10`.
pub fn lra_family(n: usize) -> LabeledExamples {
    let schema = Schema::binary_schema(["A"], ["L", "R"]);
    let l = schema.rel("L").unwrap();
    let r = schema.rel("R").unwrap();
    let a_rel = schema.rel("A").unwrap();
    let mut positives = Vec::new();
    for &p in &primes(n) {
        let mut inst = Instance::new(schema.clone());
        let vs: Vec<Value> = (0..p).map(|k| inst.add_value(format!("d{k}"))).collect();
        for k in 0..p {
            let next = (k + 1) % p;
            inst.add_fact(r, &[vs[k], vs[next]]).unwrap();
            inst.add_fact(l, &[vs[k], vs[next]]).unwrap();
        }
        inst.add_fact(a_rel, &[vs[p - 1]]).unwrap();
        positives.push(Example::new(inst, vec![vs[0]]));
    }
    // The instance I of Figure 5, over values {01, 10, 11, b}.
    let mut i = Instance::new(schema.clone());
    let v01 = i.add_value("01");
    let v10 = i.add_value("10");
    let v11 = i.add_value("11");
    let vb = i.add_value("b");
    i.add_fact(l, &[v10, v11]).unwrap();
    for &x in &[v01, v10] {
        i.add_fact(r, &[v10, x]).unwrap();
    }
    i.add_fact(r, &[v01, v11]).unwrap();
    for &x in &[v01, v10] {
        i.add_fact(l, &[v01, x]).unwrap();
    }
    i.add_fact(r, &[vb, vb]).unwrap();
    i.add_fact(l, &[vb, vb]).unwrap();
    i.add_fact(a_rel, &[vb]).unwrap();
    for &x in &[v01, v10] {
        i.add_fact(r, &[vb, x]).unwrap();
        i.add_fact(l, &[vb, x]).unwrap();
    }
    i.add_fact(l, &[v11, v11]).unwrap();
    i.add_fact(r, &[v11, v11]).unwrap();
    i.add_fact(a_rel, &[v11]).unwrap();
    let negatives = vec![
        Example::new(i.clone(), vec![v01]),
        Example::new(i, vec![v10]),
    ];
    LabeledExamples::new(positives, negatives).expect("well-formed family")
}

/// The EmpInfo database of Figure 1 / Example 1.1, together with the labeled
/// tuples (Hilbert, +), (Turing, −), (Einstein, +) as unary data examples.
pub fn empinfo_database() -> (Arc<Schema>, Instance, LabeledExamples) {
    let schema = Arc::new(Schema::new([("EmpInfo", 3)]).unwrap());
    let mut inst = Instance::new(schema.clone());
    inst.add_fact_labels("EmpInfo", &["Hilbert", "Math", "Gauss"])
        .unwrap();
    inst.add_fact_labels("EmpInfo", &["Turing", "ComputerScience", "vonNeumann"])
        .unwrap();
    inst.add_fact_labels("EmpInfo", &["Einstein", "Physics", "Gauss"])
        .unwrap();
    let labeled = |name: &str| {
        let v = inst.value_by_label(name).unwrap();
        Example::new(inst.clone(), vec![v])
    };
    let examples = LabeledExamples::new(
        vec![labeled("Hilbert"), labeled("Einstein")],
        vec![labeled("Turing")],
    )
    .unwrap();
    (schema, inst, examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_hom::hom_exists;

    #[test]
    fn primes_are_prime() {
        assert_eq!(primes(5), vec![2, 3, 5, 7, 11]);
    }

    #[test]
    fn prime_cycles_sizes() {
        let e = prime_cycles_family(4);
        assert_eq!(e.positives().len(), 3);
        assert_eq!(e.negatives().len(), 1);
        assert_eq!(e.negatives()[0].size(), 2);
        assert_eq!(e.positives()[2].size(), 7);
    }

    #[test]
    fn exact_colorability_shapes() {
        let e = exact_colorability(3);
        // K4 is not 3-colorable: no homomorphism from the positive to the
        // negative example.
        assert!(!hom_exists(&e.positives()[0], &e.negatives()[0]));
    }

    #[test]
    fn ghrv_path_does_not_map_to_order() {
        let (path, order) = ghrv_examples(4);
        assert!(!hom_exists(&path, &order));
        let (short_path, _) = ghrv_examples(3);
        assert!(hom_exists(&short_path, &order));
    }

    #[test]
    fn bitstring_family_shapes() {
        let e = bitstring_family(2);
        assert_eq!(e.positives().len(), 2);
        assert_eq!(e.negatives().len(), 1);
        // The negative has 3n = 6 values.
        assert_eq!(e.negatives()[0].instance().num_values(), 6);
        // The product of the positives must not map to the negative
        // (Theorem 3.41: a fitting exists).
        let schema = e.schema().unwrap().clone();
        let product = cqfit_hom::product_of(&schema, 0, e.positives()).unwrap();
        assert!(!hom_exists(&product, &e.negatives()[0]));
        // Z-variant adds two relations and one value.
        let ez = bitstring_family_z(2);
        assert_eq!(ez.negatives()[0].instance().num_values(), 7);
    }

    #[test]
    fn lra_family_shapes() {
        let e = lra_family(2);
        assert_eq!(e.positives().len(), 2);
        assert_eq!(e.negatives().len(), 2);
        assert_eq!(e.negatives()[0].instance().num_values(), 4);
        assert!(e.validate().is_ok());
    }

    #[test]
    fn empinfo_has_three_rows() {
        let (_, inst, examples) = empinfo_database();
        assert_eq!(inst.num_facts(), 3);
        assert_eq!(examples.positives().len(), 2);
        assert_eq!(examples.negatives().len(), 1);
    }
}
