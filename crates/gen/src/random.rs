//! Random instances, examples and tree CQs for property tests and
//! benchmarks.

use cqfit_data::{Example, Instance, LabeledExamples, Schema, Value};
use cqfit_query::{Role, RootedTree, TreeCq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of the random generators.
///
/// Generation is **deterministic**: every generator derives its randomness
/// from [`RandomConfig::seed`] via `StdRng::seed_from_u64`, so two runs
/// with identical configurations produce identical workloads.  This is what
/// makes `tests/properties.rs` and the size-family benchmarks reproducible
/// run-to-run; never draw from an OS-seeded source here.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Number of domain elements per instance.
    pub num_values: usize,
    /// Probability of including each possible fact.
    pub density: f64,
    /// Arity of the generated examples.
    pub arity: usize,
    /// Number of positive / negative examples for labeled collections.
    pub num_positive: usize,
    /// Number of negative examples for labeled collections.
    pub num_negative: usize,
    /// Seed for the deterministic generator (`StdRng::seed_from_u64`).
    ///
    /// Defaults to `42`; keep a fixed value to make test and benchmark
    /// workloads reproducible run-to-run.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            num_values: 5,
            density: 0.3,
            arity: 1,
            num_positive: 2,
            num_negative: 2,
            seed: 42,
        }
    }
}

/// Generates one random data example; re-samples until it has at least one
/// fact.
pub fn random_example(schema: &Arc<Schema>, cfg: &RandomConfig, rng: &mut StdRng) -> Example {
    loop {
        let mut inst = Instance::new(schema.clone());
        let vs: Vec<Value> = (0..cfg.num_values)
            .map(|i| inst.add_value(format!("v{i}")))
            .collect();
        for rel in schema.rel_ids() {
            let arity = schema.arity(rel);
            let mut tuple = vec![0usize; arity];
            loop {
                if rng.gen_bool(cfg.density) {
                    let args: Vec<Value> = tuple.iter().map(|&i| vs[i]).collect();
                    inst.add_fact(rel, &args).expect("valid fact");
                }
                let mut pos = 0;
                loop {
                    if pos == arity {
                        break;
                    }
                    tuple[pos] += 1;
                    if tuple[pos] < cfg.num_values {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if pos == arity {
                    break;
                }
            }
        }
        if inst.is_empty() {
            continue;
        }
        let active = inst.active_domain();
        let dist: Vec<Value> = (0..cfg.arity)
            .map(|_| active[rng.gen_range(0..active.len())])
            .collect();
        return Example::new(inst, dist);
    }
}

/// Generates a random collection of labeled examples.
pub fn random_labeled_examples(schema: &Arc<Schema>, cfg: &RandomConfig) -> LabeledExamples {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let positives = (0..cfg.num_positive)
        .map(|_| random_example(schema, cfg, &mut rng))
        .collect();
    let negatives = (0..cfg.num_negative)
        .map(|_| random_example(schema, cfg, &mut rng))
        .collect();
    LabeledExamples::new(positives, negatives).expect("consistent schema and arity")
}

/// Generates a random tree CQ over a binary schema with the given maximum
/// depth and branching factor.
pub fn random_tree_cq(
    schema: &Arc<Schema>,
    max_depth: usize,
    max_branching: usize,
    rng: &mut StdRng,
) -> TreeCq {
    assert!(schema.is_binary(), "tree CQs need a binary schema");
    let unaries: Vec<_> = schema.unary_rels().collect();
    let binaries: Vec<_> = schema.binary_rels().collect();
    loop {
        let mut tree = RootedTree::new(schema.clone());
        grow(
            &mut tree,
            0,
            max_depth,
            max_branching,
            &unaries,
            &binaries,
            rng,
        );
        if let Ok(q) = TreeCq::from_rooted(tree) {
            return q;
        }
        // A single unlabeled node is unsafe; retry.
    }
}

fn grow(
    tree: &mut RootedTree,
    node: usize,
    depth: usize,
    max_branching: usize,
    unaries: &[cqfit_data::RelId],
    binaries: &[cqfit_data::RelId],
    rng: &mut StdRng,
) {
    for &u in unaries {
        if rng.gen_bool(0.4) {
            tree.add_label(node, u).expect("unary");
        }
    }
    if depth == 0 || binaries.is_empty() {
        return;
    }
    let children = rng.gen_range(0..=max_branching);
    for _ in 0..children {
        let rel = binaries[rng.gen_range(0..binaries.len())];
        let role = if rng.gen_bool(0.5) {
            Role::forward(rel)
        } else {
            Role::converse(rel)
        };
        let child = tree.add_child(node, role).expect("binary");
        grow(
            tree,
            child,
            depth - 1,
            max_branching,
            unaries,
            binaries,
            rng,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_examples_are_valid() {
        let schema = Schema::binary_schema(["A"], ["R"]);
        let cfg = RandomConfig::default();
        let e = random_labeled_examples(&schema, &cfg);
        assert!(e.validate().is_ok());
        assert_eq!(e.positives().len(), 2);
        assert_eq!(e.negatives().len(), 2);
    }

    #[test]
    fn random_generation_is_deterministic_per_seed() {
        let schema = Schema::digraph();
        let cfg = RandomConfig {
            arity: 0,
            ..RandomConfig::default()
        };
        let a = random_labeled_examples(&schema, &cfg);
        let b = random_labeled_examples(&schema, &cfg);
        assert_eq!(a.total_size(), b.total_size());
    }

    #[test]
    fn random_tree_cqs_are_trees() {
        let schema = Schema::binary_schema(["A", "B"], ["R", "S"]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let q = random_tree_cq(&schema, 3, 2, &mut rng);
            assert!(q.num_variables() >= 1);
            assert_eq!(q.as_cq().arity(), 1);
        }
    }
}
