//! Random instances, examples and tree CQs for property tests and
//! benchmarks.

use cqfit_data::{Example, Instance, LabeledExamples, Schema, Value};
use cqfit_query::{Role, RootedTree, TreeCq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of the random generators.
///
/// Generation is **deterministic**: every generator derives its randomness
/// from [`RandomConfig::seed`] via `StdRng::seed_from_u64`, so two runs
/// with identical configurations produce identical workloads.  This is what
/// makes `tests/properties.rs` and the size-family benchmarks reproducible
/// run-to-run; never draw from an OS-seeded source here.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Number of domain elements per instance.
    pub num_values: usize,
    /// Probability of including each possible fact.
    pub density: f64,
    /// Arity of the generated examples.
    pub arity: usize,
    /// Number of positive / negative examples for labeled collections.
    pub num_positive: usize,
    /// Number of negative examples for labeled collections.
    pub num_negative: usize,
    /// Seed for the deterministic generator (`StdRng::seed_from_u64`).
    ///
    /// Defaults to `42`; keep a fixed value to make test and benchmark
    /// workloads reproducible run-to-run.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            num_values: 5,
            density: 0.3,
            arity: 1,
            num_positive: 2,
            num_negative: 2,
            seed: 42,
        }
    }
}

/// Generates one random data example; re-samples until it has at least one
/// fact.
pub fn random_example(schema: &Arc<Schema>, cfg: &RandomConfig, rng: &mut StdRng) -> Example {
    loop {
        let mut inst = Instance::new(schema.clone());
        let vs: Vec<Value> = (0..cfg.num_values)
            .map(|i| inst.add_value(format!("v{i}")))
            .collect();
        for rel in schema.rel_ids() {
            let arity = schema.arity(rel);
            let mut tuple = vec![0usize; arity];
            loop {
                if rng.gen_bool(cfg.density) {
                    let args: Vec<Value> = tuple.iter().map(|&i| vs[i]).collect();
                    inst.add_fact(rel, &args).expect("valid fact");
                }
                let mut pos = 0;
                loop {
                    if pos == arity {
                        break;
                    }
                    tuple[pos] += 1;
                    if tuple[pos] < cfg.num_values {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if pos == arity {
                    break;
                }
            }
        }
        if inst.is_empty() {
            continue;
        }
        let active = inst.active_domain();
        let dist: Vec<Value> = (0..cfg.arity)
            .map(|_| active[rng.gen_range(0..active.len())])
            .collect();
        return Example::new(inst, dist);
    }
}

/// One step of a [`churn_workload`]: an add carrying its example, or a
/// removal naming a *live index* — the position of the victim among the
/// currently live examples of that polarity, in ascending-id order.
/// Consumers resolve the index against their own live-id list at apply
/// time, so the workload stays deterministic without the generator
/// needing to know engine-assigned ids.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Add a positive example.
    AddPositive(Example),
    /// Add a negative example.
    AddNegative(Example),
    /// Remove the live positive example at this index (ascending-id
    /// order).  The generator only emits in-range indices.
    RemovePositive(usize),
    /// Remove the live negative example at this index (ascending-id
    /// order).  The generator only emits in-range indices.
    RemoveNegative(usize),
}

/// A long randomized add/remove sequence with a fixed seed — the natural
/// stressor for write-ahead-log growth and snapshot compaction (the pr5
/// bench stage and the recovery differential suite replay these).
///
/// [`RandomConfig::num_positive`] / [`RandomConfig::num_negative`] act as
/// **caps on the live population**: at the cap the generator forces a
/// removal, at zero it forces an add, in between it adds with probability
/// 60%.  Keeping the live positive set small keeps the maintained product
/// `Π E⁺` tractable while the *log* still grows one record per step.
///
/// Determinism: everything derives from [`RandomConfig::seed`], so the
/// same config yields the same workload in every consumer.
pub fn churn_workload(schema: &Arc<Schema>, cfg: &RandomConfig, steps: usize) -> Vec<ChurnOp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pos_cap = cfg.num_positive.max(1);
    let neg_cap = cfg.num_negative.max(1);
    let (mut live_pos, mut live_neg) = (0usize, 0usize);
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Pick the polarity first so add/remove pressure spreads over both.
        let positive = rng.gen_bool(0.5);
        let (live, cap) = if positive {
            (&mut live_pos, pos_cap)
        } else {
            (&mut live_neg, neg_cap)
        };
        let add = if *live == 0 {
            true
        } else if *live >= cap {
            false
        } else {
            rng.gen_bool(0.6)
        };
        let op = if add {
            let e = random_example(schema, cfg, &mut rng);
            *live += 1;
            if positive {
                ChurnOp::AddPositive(e)
            } else {
                ChurnOp::AddNegative(e)
            }
        } else {
            let victim = rng.gen_range(0..*live);
            *live -= 1;
            if positive {
                ChurnOp::RemovePositive(victim)
            } else {
                ChurnOp::RemoveNegative(victim)
            }
        };
        ops.push(op);
    }
    ops
}

/// A [`ChurnOp`] with its removal index resolved to a concrete example
/// id — see [`resolve_churn`].
#[derive(Debug, Clone)]
pub enum ResolvedChurnOp {
    /// Add an example (`positive` selects `E⁺` vs `E⁻`).
    Add {
        /// `true` for `E⁺`, `false` for `E⁻`.
        positive: bool,
        /// The example to add (boxed: the variant is much larger than
        /// `Remove` otherwise).
        example: Box<Example>,
    },
    /// Remove the example with this id.
    Remove {
        /// `true` for `E⁺`, `false` for `E⁻`.
        positive: bool,
        /// The id assigned to the victim by its add.
        id: u64,
    },
}

/// Resolves a churn workload's live removal indices into concrete
/// example ids, assuming ids are assigned sequentially from `first_id`
/// in op order — the engine's behavior for a fresh workspace.  One
/// resolver shared by every consumer (the pr5 bench stage, the recovery
/// differential suite) keeps the index contract in a single place.
pub fn resolve_churn(ops: &[ChurnOp], first_id: u64) -> Vec<ResolvedChurnOp> {
    let mut live_pos: Vec<u64> = Vec::new();
    let mut live_neg: Vec<u64> = Vec::new();
    let mut next_id = first_id;
    ops.iter()
        .map(|op| match op {
            ChurnOp::AddPositive(e) => {
                live_pos.push(next_id);
                next_id += 1;
                ResolvedChurnOp::Add {
                    positive: true,
                    example: Box::new(e.clone()),
                }
            }
            ChurnOp::AddNegative(e) => {
                live_neg.push(next_id);
                next_id += 1;
                ResolvedChurnOp::Add {
                    positive: false,
                    example: Box::new(e.clone()),
                }
            }
            ChurnOp::RemovePositive(i) => ResolvedChurnOp::Remove {
                positive: true,
                id: live_pos.remove(*i),
            },
            ChurnOp::RemoveNegative(i) => ResolvedChurnOp::Remove {
                positive: false,
                id: live_neg.remove(*i),
            },
        })
        .collect()
}

/// Generates a random collection of labeled examples.
pub fn random_labeled_examples(schema: &Arc<Schema>, cfg: &RandomConfig) -> LabeledExamples {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let positives = (0..cfg.num_positive)
        .map(|_| random_example(schema, cfg, &mut rng))
        .collect();
    let negatives = (0..cfg.num_negative)
        .map(|_| random_example(schema, cfg, &mut rng))
        .collect();
    LabeledExamples::new(positives, negatives).expect("consistent schema and arity")
}

/// Generates a random tree CQ over a binary schema with the given maximum
/// depth and branching factor.
pub fn random_tree_cq(
    schema: &Arc<Schema>,
    max_depth: usize,
    max_branching: usize,
    rng: &mut StdRng,
) -> TreeCq {
    assert!(schema.is_binary(), "tree CQs need a binary schema");
    let unaries: Vec<_> = schema.unary_rels().collect();
    let binaries: Vec<_> = schema.binary_rels().collect();
    loop {
        let mut tree = RootedTree::new(schema.clone());
        grow(
            &mut tree,
            0,
            max_depth,
            max_branching,
            &unaries,
            &binaries,
            rng,
        );
        if let Ok(q) = TreeCq::from_rooted(tree) {
            return q;
        }
        // A single unlabeled node is unsafe; retry.
    }
}

fn grow(
    tree: &mut RootedTree,
    node: usize,
    depth: usize,
    max_branching: usize,
    unaries: &[cqfit_data::RelId],
    binaries: &[cqfit_data::RelId],
    rng: &mut StdRng,
) {
    for &u in unaries {
        if rng.gen_bool(0.4) {
            tree.add_label(node, u).expect("unary");
        }
    }
    if depth == 0 || binaries.is_empty() {
        return;
    }
    let children = rng.gen_range(0..=max_branching);
    for _ in 0..children {
        let rel = binaries[rng.gen_range(0..binaries.len())];
        let role = if rng.gen_bool(0.5) {
            Role::forward(rel)
        } else {
            Role::converse(rel)
        };
        let child = tree.add_child(node, role).expect("binary");
        grow(
            tree,
            child,
            depth - 1,
            max_branching,
            unaries,
            binaries,
            rng,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_examples_are_valid() {
        let schema = Schema::binary_schema(["A"], ["R"]);
        let cfg = RandomConfig::default();
        let e = random_labeled_examples(&schema, &cfg);
        assert!(e.validate().is_ok());
        assert_eq!(e.positives().len(), 2);
        assert_eq!(e.negatives().len(), 2);
    }

    #[test]
    fn random_generation_is_deterministic_per_seed() {
        let schema = Schema::digraph();
        let cfg = RandomConfig {
            arity: 0,
            ..RandomConfig::default()
        };
        let a = random_labeled_examples(&schema, &cfg);
        let b = random_labeled_examples(&schema, &cfg);
        assert_eq!(a.total_size(), b.total_size());
    }

    #[test]
    fn churn_workload_is_deterministic_and_respects_caps() {
        let schema = Schema::digraph();
        let cfg = RandomConfig {
            arity: 0,
            num_positive: 3,
            num_negative: 2,
            ..RandomConfig::default()
        };
        let a = churn_workload(&schema, &cfg, 200);
        let b = churn_workload(&schema, &cfg, 200);
        assert_eq!(a.len(), 200);
        // Determinism: identical op kinds and removal indices per step.
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (ChurnOp::AddPositive(e1), ChurnOp::AddPositive(e2))
                | (ChurnOp::AddNegative(e1), ChurnOp::AddNegative(e2)) => {
                    assert!(e1.instance().same_facts(e2.instance()));
                }
                (ChurnOp::RemovePositive(i), ChurnOp::RemovePositive(j))
                | (ChurnOp::RemoveNegative(i), ChurnOp::RemoveNegative(j)) => {
                    assert_eq!(i, j);
                }
                other => panic!("ops diverge: {other:?}"),
            }
        }
        // Replaying the op kinds respects the caps and never removes from
        // an empty population, and removal indices are always in range.
        let (mut pos, mut neg) = (0usize, 0usize);
        let mut removals = 0;
        for op in &a {
            match op {
                ChurnOp::AddPositive(_) => {
                    pos += 1;
                    assert!(pos <= 3);
                }
                ChurnOp::AddNegative(_) => {
                    neg += 1;
                    assert!(neg <= 2);
                }
                ChurnOp::RemovePositive(i) => {
                    assert!(*i < pos);
                    pos -= 1;
                    removals += 1;
                }
                ChurnOp::RemoveNegative(i) => {
                    assert!(*i < neg);
                    neg -= 1;
                    removals += 1;
                }
            }
        }
        assert!(removals > 20, "churn must actually churn ({removals})");
        // A different seed yields a different sequence.
        let c = churn_workload(
            &schema,
            &RandomConfig {
                seed: 7,
                ..cfg.clone()
            },
            200,
        );
        let same = a.iter().zip(&c).all(|(x, y)| {
            matches!(
                (x, y),
                (ChurnOp::AddPositive(_), ChurnOp::AddPositive(_))
                    | (ChurnOp::AddNegative(_), ChurnOp::AddNegative(_))
                    | (ChurnOp::RemovePositive(_), ChurnOp::RemovePositive(_))
                    | (ChurnOp::RemoveNegative(_), ChurnOp::RemoveNegative(_))
            )
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn random_tree_cqs_are_trees() {
        let schema = Schema::binary_schema(["A", "B"], ["R", "S"]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let q = random_tree_cq(&schema, 3, 2, &mut rng);
            assert!(q.num_variables() >= 1);
            assert_eq!(q.as_cq().arity(), 1);
        }
    }
}
