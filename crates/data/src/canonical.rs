//! Canonical structural hashing of schemas, instances and examples.
//!
//! The hashes are the cache keys of the `cqfit_hom` result cache: two
//! objects with equal canonical hashes are (with overwhelming probability)
//! *structurally identical* — same schema, same number of declared values,
//! same fact set over the same value indices, same distinguished tuple.
//! Every homomorphism-level question is invariant under structural
//! identity, so equal keys may share answers.
//!
//! Properties:
//!
//! * **Insertion-order independent** — fact encodings are sorted before
//!   being absorbed, so the same fact set built in any order hashes equal
//!   (facts are deduplicated by [`crate::Instance::add_fact`], values are
//!   part of the encoding).
//! * **Label independent** — display labels are *excluded*: instances that
//!   differ only in labels hash equal, because labels never influence
//!   homomorphism answers.  Callers that cache label-carrying artifacts
//!   (e.g. cores, whose labels surface in constructed queries) should mix
//!   in [`CanonicalHasher::absorb_str`] of the labels themselves.
//! * **Process independent** — no randomized hasher state; equal inputs
//!   hash equal across runs and across machines, so captures and
//!   differential tests are reproducible.
//!
//! The hash is 128 bits built from two independent 64-bit mixers (FNV-1a
//! and a rotate-xor-multiply stream), which keeps accidental collisions
//! out of reach for cache-sized key populations; it is *not* designed to
//! resist adversarial collision construction.

use crate::{Example, Instance, Schema};

/// A 128-bit canonical structural hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalHash(pub u128);

/// Streaming hasher behind [`CanonicalHash`]; exposed so that callers can
/// derive compound keys (e.g. hash-of-hashes, or structure plus labels).
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    fnv: u64,
    mix: u64,
}

impl CanonicalHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    const MIX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
    const MIX_MULT: u64 = 0xff51_afd7_ed55_8ccd;

    /// A fresh hasher.
    pub fn new() -> Self {
        CanonicalHasher {
            fnv: Self::FNV_OFFSET,
            mix: Self::MIX_SEED,
        }
    }

    /// Absorbs one byte into both mixers.
    fn absorb_byte(&mut self, b: u8) {
        self.fnv = (self.fnv ^ u64::from(b)).wrapping_mul(Self::FNV_PRIME);
        self.mix = (self.mix.rotate_left(13) ^ u64::from(b)).wrapping_mul(Self::MIX_MULT);
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn absorb_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.absorb_byte(b);
        }
    }

    /// Absorbs a `u32`.
    pub fn absorb_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.absorb_byte(b);
        }
    }

    /// Absorbs a length-prefixed string (prefixing makes concatenations
    /// unambiguous).
    pub fn absorb_str(&mut self, s: &str) {
        self.absorb_u64(s.len() as u64);
        for b in s.bytes() {
            self.absorb_byte(b);
        }
    }

    /// Absorbs another canonical hash (for compound keys).
    pub fn absorb_hash(&mut self, h: CanonicalHash) {
        self.absorb_u64(h.0 as u64);
        self.absorb_u64((h.0 >> 64) as u64);
    }

    /// Finishes the hash.
    pub fn finish(&self) -> CanonicalHash {
        // A final avalanche round decorrelates the two lanes from short
        // inputs before they are concatenated.
        let mut a = self.fnv ^ self.mix.rotate_left(32);
        a ^= a >> 33;
        a = a.wrapping_mul(Self::MIX_MULT);
        a ^= a >> 29;
        let mut b = self.mix;
        b ^= b >> 31;
        b = b.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        b ^= b >> 27;
        CanonicalHash((u128::from(a) << 64) | u128::from(b))
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        CanonicalHasher::new()
    }
}

impl Schema {
    /// Canonical hash of the schema: relation names and arities in
    /// declaration order (declaration order is structural — it fixes the
    /// [`crate::RelId`] assignment).
    pub fn canonical_hash(&self) -> CanonicalHash {
        let mut h = CanonicalHasher::new();
        h.absorb_u64(self.relations().len() as u64);
        for r in self.relations() {
            h.absorb_str(&r.name);
            h.absorb_u64(r.arity as u64);
        }
        h.finish()
    }
}

impl Instance {
    /// Canonical structural hash of the instance: schema, number of
    /// declared values, and the sorted fact set.  Labels are excluded; see
    /// the module documentation for the exact invariance guarantees.
    ///
    /// The hash is memoized on the instance (structural mutations reset
    /// the memo), so repeated cache lookups on the same — potentially
    /// large — instance sort and hash its fact set only once.
    pub fn canonical_hash(&self) -> CanonicalHash {
        *self.structural_hash_cell().get_or_init(|| {
            let mut h = CanonicalHasher::new();
            h.absorb_hash(self.schema().canonical_hash());
            h.absorb_u64(self.num_values() as u64);
            let mut encodings: Vec<(u32, &[crate::Value])> = self
                .facts()
                .iter()
                .map(|f| (f.rel.0, f.args.as_slice()))
                .collect();
            encodings.sort_unstable();
            h.absorb_u64(encodings.len() as u64);
            for (rel, args) in encodings {
                h.absorb_u32(rel);
                for a in args {
                    h.absorb_u32(a.0);
                }
            }
            h.finish()
        })
    }
}

impl Example {
    /// Canonical structural hash of the pointed instance: the instance
    /// hash plus the distinguished tuple.
    pub fn canonical_hash(&self) -> CanonicalHash {
        let mut h = CanonicalHasher::new();
        h.absorb_hash(self.instance().canonical_hash());
        h.absorb_u64(self.distinguished().len() as u64);
        for d in self.distinguished() {
            h.absorb_u32(d.0);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn insertion_order_does_not_matter() {
        let schema = Schema::digraph();
        let mut a = Instance::new(schema.clone());
        a.add_fact_labels("R", &["x", "y"]).unwrap();
        a.add_fact_labels("R", &["y", "z"]).unwrap();
        let mut b = Instance::new(schema);
        b.add_value("x");
        b.add_value("y");
        b.add_value("z");
        let (y, z) = (Value(1), Value(2));
        let x = Value(0);
        let r = b.schema().rel("R").unwrap();
        b.add_fact(r, &[y, z]).unwrap();
        b.add_fact(r, &[x, y]).unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn labels_do_not_matter_but_structure_does() {
        let schema = Schema::digraph();
        let mut a = Instance::new(schema.clone());
        a.add_fact_labels("R", &["x", "y"]).unwrap();
        let mut b = Instance::new(schema.clone());
        b.add_fact_labels("R", &["u", "v"]).unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        // One more declared (isolated) value changes the structure.
        let mut c = Instance::new(schema.clone());
        c.add_fact_labels("R", &["x", "y"]).unwrap();
        c.add_value("iso");
        assert_ne!(a.canonical_hash(), c.canonical_hash());
        // A reversed edge changes the structure.
        let mut d = Instance::new(schema);
        d.add_value("x");
        d.add_value("y");
        let r = d.schema().rel("R").unwrap();
        d.add_fact(r, &[Value(1), Value(0)]).unwrap();
        assert_ne!(a.canonical_hash(), d.canonical_hash());
    }

    #[test]
    fn distinguished_tuple_matters() {
        let schema = Schema::digraph();
        let mut i = Instance::new(schema);
        i.add_fact_labels("R", &["x", "y"]).unwrap();
        let x = i.value_by_label("x").unwrap();
        let y = i.value_by_label("y").unwrap();
        let ex = Example::new(i.clone(), vec![x]);
        let ey = Example::new(i.clone(), vec![y]);
        let eb = Example::boolean(i);
        assert_ne!(ex.canonical_hash(), ey.canonical_hash());
        assert_ne!(ex.canonical_hash(), eb.canonical_hash());
        assert_ne!(
            ex.canonical_hash(),
            Example::new(ex.instance().clone(), vec![x, x]).canonical_hash()
        );
    }

    #[test]
    fn schema_identity_matters() {
        let mut a = Instance::new(Schema::digraph());
        a.add_fact_labels("R", &["x", "y"]).unwrap();
        let other = Schema::binary_schema([], ["R", "S"]);
        let mut b = Instance::new(other);
        b.add_fact_labels("R", &["x", "y"]).unwrap();
        assert_ne!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn memoized_hash_resets_on_structural_mutation() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let h1 = i.canonical_hash();
        assert_eq!(i.canonical_hash(), h1, "memo answers repeat lookups");
        i.add_fact_labels("R", &["b", "a"]).unwrap();
        assert_ne!(i.canonical_hash(), h1, "add_fact resets the memo");
        let v = i.add_value("iso");
        let h2 = i.canonical_hash();
        i.set_label(v, "renamed");
        assert_eq!(
            i.canonical_hash(),
            h2,
            "labels are excluded from the hash, so relabeling keeps it"
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let schema = Schema::digraph();
        let mut i = Instance::new(schema);
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        assert_eq!(i.canonical_hash(), i.clone().canonical_hash());
    }
}
