//! Relational schemas (signatures).

use crate::{DataError, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a relation symbol within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The index of this relation in [`Schema::relations`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single relation symbol together with its arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Name of the relation symbol.
    pub name: String,
    /// Arity (number of arguments), at least 1.
    pub arity: usize,
}

/// A relational schema: a finite set of relation symbols with arities.
///
/// Schemas are cheap to clone (shared internally via [`Arc`] by
/// [`crate::Instance`]); equality is structural.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            relations: Vec::new(),
        }
    }

    /// Builds a schema directly from `(name, arity)` pairs.
    ///
    /// # Errors
    /// Fails on duplicate names or zero arities.
    pub fn new<S: Into<String>>(relations: impl IntoIterator<Item = (S, usize)>) -> Result<Self> {
        let mut b = Schema::builder();
        for (name, arity) in relations {
            b = b.relation(name, arity)?;
        }
        Ok(b.build())
    }

    /// Convenience constructor: a schema with a single binary relation named
    /// `R` (directed graphs), used pervasively in the paper's hardness and
    /// size-bound constructions.
    pub fn digraph() -> Arc<Self> {
        Arc::new(Schema::new([("R", 2)]).expect("static schema"))
    }

    /// Convenience constructor: unary relations `names` plus binary relations
    /// `binaries` — the "binary schemas" of Section 5 (tree CQs / ELI).
    pub fn binary_schema(
        unaries: impl IntoIterator<Item = &'static str>,
        binaries: impl IntoIterator<Item = &'static str>,
    ) -> Arc<Self> {
        let mut b = Schema::builder();
        for u in unaries {
            b = b.relation(u, 1).expect("unary");
        }
        for r in binaries {
            b = b.relation(r, 2).expect("binary");
        }
        Arc::new(b.build())
    }

    /// All relations, indexable by [`RelId::index`].
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the schema has no relation symbols.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Looks a relation up by name.
    pub fn rel(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Looks a relation up by name, failing with [`DataError::UnknownRelation`].
    pub fn rel_checked(&self, name: &str) -> Result<RelId> {
        self.rel(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// The arity of a relation.
    pub fn arity(&self, rel: RelId) -> usize {
        self.relations[rel.index()].arity
    }

    /// The name of a relation.
    pub fn name(&self, rel: RelId) -> &str {
        &self.relations[rel.index()].name
    }

    /// Maximum arity over all relations (0 for the empty schema).
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(|r| r.arity).max().unwrap_or(0)
    }

    /// Iterator over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// True if every relation has arity 1 or 2 (a "binary schema", §5).
    pub fn is_binary(&self) -> bool {
        self.relations.iter().all(|r| r.arity <= 2)
    }

    /// Ids of all unary relations.
    pub fn unary_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rel_ids().filter(|r| self.arity(*r) == 1)
    }

    /// Ids of all binary relations.
    pub fn binary_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rel_ids().filter(|r| self.arity(*r) == 2)
    }

    fn rebuild_index(&mut self) {
        self.by_name = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RelId(i as u32)))
            .collect();
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", r.name, r.arity)?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    relations: Vec<Relation>,
}

impl SchemaBuilder {
    /// Adds a relation with the given name and arity.
    ///
    /// # Errors
    /// Fails if the name is already used or the arity is 0.
    pub fn relation(mut self, name: impl Into<String>, arity: usize) -> Result<Self> {
        let name = name.into();
        if arity == 0 {
            return Err(DataError::ZeroArity(name));
        }
        if self.relations.iter().any(|r| r.name == name) {
            return Err(DataError::DuplicateRelation(name));
        }
        self.relations.push(Relation { name, arity });
        Ok(self)
    }

    /// Finishes the schema.
    pub fn build(self) -> Schema {
        let mut s = Schema {
            relations: self.relations,
            by_name: HashMap::new(),
        };
        s.rebuild_index();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new([("EmpInfo", 3), ("P", 1)]).unwrap();
        assert_eq!(s.len(), 2);
        let e = s.rel("EmpInfo").unwrap();
        assert_eq!(s.arity(e), 3);
        assert_eq!(s.name(e), "EmpInfo");
        assert!(s.rel("Q").is_none());
        assert_eq!(s.max_arity(), 3);
        assert!(!s.is_binary());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let err = Schema::new([("R", 2), ("R", 3)]).unwrap_err();
        assert_eq!(err, DataError::DuplicateRelation("R".into()));
    }

    #[test]
    fn zero_arity_rejected() {
        let err = Schema::new([("R", 0)]).unwrap_err();
        assert_eq!(err, DataError::ZeroArity("R".into()));
    }

    #[test]
    fn digraph_schema() {
        let s = Schema::digraph();
        assert_eq!(s.len(), 1);
        assert_eq!(s.arity(s.rel("R").unwrap()), 2);
        assert!(s.is_binary());
    }

    #[test]
    fn binary_schema_helper() {
        let s = Schema::binary_schema(["P", "Q"], ["R", "S"]);
        assert!(s.is_binary());
        assert_eq!(s.unary_rels().count(), 2);
        assert_eq!(s.binary_rels().count(), 2);
    }

    #[test]
    fn display() {
        let s = Schema::new([("R", 2), ("P", 1)]).unwrap();
        assert_eq!(s.to_string(), "{R/2, P/1}");
    }
}
