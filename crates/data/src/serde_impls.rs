//! Hand-written serde round-trips for the data model.
//!
//! The vendored `serde` stand-in exposes functional `Serialize::to_json` /
//! `Deserialize::from_json` traits over a JSON value model (its no-op
//! derives expand to nothing), so the impls here are explicit.  The JSON
//! shapes are stable and documented per type; deserialization goes through
//! the same validating constructors as programmatic building
//! ([`Instance::add_fact`], [`Example::new`], [`LabeledExamples::new`]), so
//! a deserialized object is always internally consistent — including the
//! rebuilt fact indexes.
//!
//! Shapes:
//!
//! ```text
//! Schema          {"relations": [{"name": "R", "arity": 2}, …]}
//! Instance        {"schema": …, "labels": ["a", …], "facts": [[rel, v…], …]}
//! Example         {"instance": …, "distinguished": [v, …]}
//! LabeledExamples {"positives": [Example…], "negatives": [Example…]}
//! ```
//!
//! Facts are flat integer arrays `[rel, arg0, arg1, …]`; values are their
//! dense indices.

use crate::{Example, Instance, LabeledExamples, Relation, Schema, Value};
use serde::json::{JsonError, Value as Json};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

impl Serialize for Value {
    fn to_json(&self) -> Json {
        Json::Int(i64::from(self.0))
    }
}

impl Deserialize for Value {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(Value)
    }
}

impl Serialize for Relation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("arity", Json::Int(self.arity as i64)),
        ])
    }
}

impl Deserialize for Relation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Relation {
            name: String::from_json(v.req("name")?)?,
            arity: usize::from_json(v.req("arity")?)?,
        })
    }
}

impl Serialize for Schema {
    fn to_json(&self) -> Json {
        Json::obj([("relations", self.relations().to_vec().to_json())])
    }
}

impl Deserialize for Schema {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let relations = Vec::<Relation>::from_json(v.req("relations")?)?;
        Schema::new(relations.into_iter().map(|r| (r.name, r.arity)))
            .map_err(|e| JsonError::semantic(format!("invalid schema: {e}")))
    }
}

impl Serialize for Instance {
    fn to_json(&self) -> Json {
        let labels: Vec<String> = self.values().map(|v| self.label(v).to_string()).collect();
        let facts: Vec<Json> = self
            .facts()
            .iter()
            .map(|f| {
                let mut row = Vec::with_capacity(f.args.len() + 1);
                row.push(Json::Int(i64::from(f.rel.0)));
                row.extend(f.args.iter().map(|a| Json::Int(i64::from(a.0))));
                Json::Arr(row)
            })
            .collect();
        Json::obj([
            ("schema", self.schema().as_ref().to_json()),
            ("labels", labels.to_json()),
            ("facts", Json::Arr(facts)),
        ])
    }
}

impl Deserialize for Instance {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = Arc::new(Schema::from_json(v.req("schema")?)?);
        let labels = Vec::<String>::from_json(v.req("labels")?)?;
        let mut inst = Instance::new(schema);
        for label in labels {
            inst.add_value(label);
        }
        let facts_json = v.req("facts")?;
        let facts = facts_json
            .as_arr()
            .ok_or_else(|| JsonError::mismatch("array", facts_json))?;
        for fact in facts {
            let row = fact
                .as_arr()
                .ok_or_else(|| JsonError::mismatch("fact array", fact))?;
            if row.is_empty() {
                return Err(JsonError::semantic("empty fact array"));
            }
            let rel = crate::RelId(u32::from_json(&row[0])?);
            if rel.index() >= inst.schema().len() {
                return Err(JsonError::semantic(format!(
                    "fact references unknown relation id {}",
                    rel.0
                )));
            }
            let args: Vec<Value> = row[1..]
                .iter()
                .map(Value::from_json)
                .collect::<Result<_, _>>()?;
            inst.add_fact(rel, &args)
                .map_err(|e| JsonError::semantic(format!("invalid fact: {e}")))?;
        }
        Ok(inst)
    }
}

impl Serialize for Example {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instance", self.instance().to_json()),
            ("distinguished", self.distinguished().to_vec().to_json()),
        ])
    }
}

impl Deserialize for Example {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let instance = Instance::from_json(v.req("instance")?)?;
        let distinguished = Vec::<Value>::from_json(v.req("distinguished")?)?;
        for d in &distinguished {
            if d.index() >= instance.num_values() {
                return Err(JsonError::semantic(format!(
                    "distinguished value {} outside the instance domain",
                    d.0
                )));
            }
        }
        Ok(Example::new(instance, distinguished))
    }
}

impl Serialize for LabeledExamples {
    fn to_json(&self) -> Json {
        Json::obj([
            ("positives", self.positives().to_vec().to_json()),
            ("negatives", self.negatives().to_vec().to_json()),
        ])
    }
}

impl Deserialize for LabeledExamples {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let positives = Vec::<Example>::from_json(v.req("positives")?)?;
        let negatives = Vec::<Example>::from_json(v.req("negatives")?)?;
        LabeledExamples::new(positives, negatives)
            .map_err(|e| JsonError::semantic(format!("invalid labeled examples: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_example;

    #[test]
    fn schema_round_trip() {
        let s = Schema::new([("EmpInfo", 3), ("P", 1)]).unwrap();
        let back: Schema = serde::from_str(&serde::to_string(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.rel("P"), s.rel("P"), "by-name index rebuilt");
    }

    #[test]
    fn instance_round_trip_preserves_structure_and_index() {
        let schema = Schema::digraph();
        let mut i = Instance::new(schema);
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        i.add_fact_labels("R", &["b", "c"]).unwrap();
        i.add_value("isolated");
        let back: Instance = serde::from_str(&serde::to_string(&i)).unwrap();
        assert!(back.same_facts(&i));
        assert_eq!(back.num_values(), i.num_values());
        assert_eq!(back.label(Value(3)), "isolated");
        // The rebuilt index answers lookups.
        let r = back.schema().rel("R").unwrap();
        let b = back.value_by_label("b").unwrap();
        assert_eq!(back.facts_with_rel_pos_value(r, 0, b).len(), 1);
        assert_eq!(back.canonical_hash(), i.canonical_hash());
    }

    #[test]
    fn example_round_trip() {
        let schema = Schema::digraph();
        let e = parse_example(&schema, "R(a,b)\nR(b,c)\n* a, c").unwrap();
        let back: Example = serde::from_str(&serde::to_string(&e)).unwrap();
        assert_eq!(back.distinguished(), e.distinguished());
        assert!(back.instance().same_facts(e.instance()));
        assert_eq!(back.canonical_hash(), e.canonical_hash());
    }

    #[test]
    fn labeled_round_trip_validates() {
        let schema = Schema::digraph();
        let pos = parse_example(&schema, "R(a,b)\n* a").unwrap();
        let neg = parse_example(&schema, "R(c,c)\n* c").unwrap();
        let col = LabeledExamples::new(vec![pos], vec![neg]).unwrap();
        let back: LabeledExamples = serde::from_str(&serde::to_string(&col)).unwrap();
        assert_eq!(back.positives().len(), 1);
        assert_eq!(back.negatives().len(), 1);
        assert_eq!(back.arity(), Some(1));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(serde::from_str::<Instance>("{\"labels\": []}").is_err());
        // Unknown relation id in a fact.
        let text =
            r#"{"schema":{"relations":[{"name":"R","arity":2}]},"labels":["a"],"facts":[[5,0,0]]}"#;
        assert!(serde::from_str::<Instance>(text).is_err());
        // Wrong arity.
        let text =
            r#"{"schema":{"relations":[{"name":"R","arity":2}]},"labels":["a"],"facts":[[0,0]]}"#;
        assert!(serde::from_str::<Instance>(text).is_err());
        // Distinguished value out of range.
        let text = r#"{"instance":{"schema":{"relations":[{"name":"R","arity":2}]},"labels":["a"],"facts":[[0,0,0]]},"distinguished":[9]}"#;
        assert!(serde::from_str::<Example>(text).is_err());
    }
}
