//! # cqfit-data
//!
//! Relational data model for the `cqfit` workspace: schemas, instances,
//! pointed instances, data examples and labeled example collections, exactly
//! as defined in Section 2.1 of
//! *ten Cate, Dalmau, Funk, Lutz — Extremal Fitting Problems for Conjunctive
//! Queries (PODS 2023)*.
//!
//! The terminology follows the paper:
//!
//! * A **schema** is a finite set of relation symbols, each with an arity.
//! * A **fact** is `R(a1,…,an)` for values `a1,…,an`.
//! * An **instance** is a finite set of facts over a schema.
//! * A **pointed instance** `(I, ā)` pairs an instance with a tuple of
//!   distinguished values, which may lie outside the active domain.
//! * A **data example** is a pointed instance whose distinguished values all
//!   belong to the active domain.
//! * A **collection of labeled examples** `E = (E⁺, E⁻)` is a pair of finite
//!   sets of data examples of the same schema and arity.
//!
//! Values are dense `u32` indices local to an instance; every value carries a
//! human-readable label used only for display and debugging, so that derived
//! instances (direct products, unravelings, …) remain self-describing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod error;
mod example;
mod index;
mod instance;
mod labeled;
mod parse;
mod schema;
mod serde_impls;

pub use canonical::{CanonicalHash, CanonicalHasher};
pub use error::DataError;
pub use example::Example;
pub use instance::{Fact, FactId, Instance, Value};
pub use labeled::LabeledExamples;
pub use parse::{parse_example, parse_instance};
pub use schema::{RelId, Relation, Schema, SchemaBuilder};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
