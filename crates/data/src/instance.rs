//! Instances: finite sets of facts over a schema.

use crate::index::FactIndex;
use crate::{DataError, RelId, Result, Schema};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A value (domain element) of an [`Instance`], represented as a dense index
/// local to that instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

impl Value {
    /// The index of this value in the instance's domain.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a fact within an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

impl FactId {
    /// The index of this fact in [`Instance::facts`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fact `R(a1,…,an)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Relation symbol.
    pub rel: RelId,
    /// Arguments; length equals the arity of `rel`.
    pub args: Vec<Value>,
}

/// A finite relational instance: a set of facts over a schema together with a
/// domain of values.
///
/// The *domain* of an instance is the set of declared values; the *active
/// domain* (`adom` in the paper) is the subset of values that occur in at
/// least one fact.  Facts are deduplicated: adding an existing fact returns
/// the existing [`FactId`].
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    labels: Vec<String>,
    facts: Vec<Fact>,
    /// Secondary access paths into `facts` (exact lookup, per-relation,
    /// per-value and per-`(relation, position, value)` posting lists),
    /// maintained incrementally by [`Instance::add_fact`].
    index: FactIndex,
    /// Memoized structural hash ([`Instance::canonical_hash`]); reset by
    /// every structural mutation (labels are excluded from the hash, so
    /// [`Instance::set_label`] does not reset it).  Cached because cache
    /// lookups in `cqfit_hom` hash the same (potentially large) instances
    /// on every request.
    structural_hash: std::sync::OnceLock<crate::CanonicalHash>,
}

impl Instance {
    /// Creates an empty instance over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let index = FactIndex::new(&schema);
        Instance {
            schema,
            labels: Vec::new(),
            facts: Vec::new(),
            index,
            structural_hash: std::sync::OnceLock::new(),
        }
    }

    /// The memo cell of the structural hash (filled by
    /// [`Instance::canonical_hash`] in the `canonical` module).
    pub(crate) fn structural_hash_cell(&self) -> &std::sync::OnceLock<crate::CanonicalHash> {
        &self.structural_hash
    }

    /// The schema of this instance.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Adds a fresh value with the given display label.
    pub fn add_value(&mut self, label: impl Into<String>) -> Value {
        let v = Value(self.labels.len() as u32);
        self.labels.push(label.into());
        self.index.add_value();
        self.structural_hash = std::sync::OnceLock::new();
        v
    }

    /// Adds `n` fresh values labeled `prefix0 … prefix{n-1}` and returns them.
    pub fn add_values(&mut self, prefix: &str, n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| self.add_value(format!("{prefix}{i}")))
            .collect()
    }

    /// Looks up a value by label (linear scan; intended for small, hand-built
    /// instances and the textual parser).
    pub fn value_by_label(&self, label: &str) -> Option<Value> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| Value(i as u32))
    }

    /// Returns the value with the given label, adding it if absent.
    pub fn value_or_add(&mut self, label: &str) -> Value {
        match self.value_by_label(label) {
            Some(v) => v,
            None => self.add_value(label),
        }
    }

    /// Number of declared values (domain size).
    pub fn num_values(&self) -> usize {
        self.labels.len()
    }

    /// Iterator over all declared values.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        (0..self.labels.len() as u32).map(Value)
    }

    /// The display label of a value.
    pub fn label(&self, v: Value) -> &str {
        &self.labels[v.index()]
    }

    /// Overwrites the display label of a value.
    pub fn set_label(&mut self, v: Value, label: impl Into<String>) {
        self.labels[v.index()] = label.into();
    }

    /// Adds a fact; returns its id.  Adding an already-present fact is a
    /// no-op returning the existing id.
    ///
    /// # Errors
    /// Fails if the argument count does not match the relation arity or if an
    /// argument value does not belong to this instance.
    pub fn add_fact(&mut self, rel: RelId, args: &[Value]) -> Result<FactId> {
        let arity = self.schema.arity(rel);
        if args.len() != arity {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name(rel).to_string(),
                expected: arity,
                got: args.len(),
            });
        }
        for &a in args {
            if a.index() >= self.labels.len() {
                return Err(DataError::UnknownValue(a.0));
            }
        }
        if let Some(id) = self.index.lookup(&self.facts, rel, args) {
            return Ok(id);
        }
        let id = FactId(self.facts.len() as u32);
        let fact = Fact {
            rel,
            args: args.to_vec(),
        };
        self.index.insert(&fact, id);
        self.facts.push(fact);
        self.structural_hash = std::sync::OnceLock::new();
        Ok(id)
    }

    /// Adds a fact by relation name.
    pub fn add_fact_by_name(&mut self, rel: &str, args: &[Value]) -> Result<FactId> {
        let rel = self.schema.rel_checked(rel)?;
        self.add_fact(rel, args)
    }

    /// Adds a fact whose arguments are given as labels, creating values on
    /// demand.  Convenient for building small hand-written instances.
    pub fn add_fact_labels(&mut self, rel: &str, args: &[&str]) -> Result<FactId> {
        let vals: Vec<Value> = args.iter().map(|a| self.value_or_add(a)).collect();
        self.add_fact_by_name(rel, &vals)
    }

    /// All facts of the instance.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.index()]
    }

    /// Number of facts — the paper's notion of the *size* `|e|` of an example.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// True if the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// True if the instance contains the given fact.
    pub fn contains_fact(&self, rel: RelId, args: &[Value]) -> bool {
        self.index.lookup(&self.facts, rel, args).is_some()
    }

    /// Ids of all facts using relation `rel`.
    pub fn facts_with_rel(&self, rel: RelId) -> &[FactId] {
        self.index.with_rel(rel)
    }

    /// Ids of all facts of relation `rel` whose argument at position `pos`
    /// is the value `v` (empty for unknown keys).
    ///
    /// This is the index access path that makes homomorphism propagation
    /// enumerate only the facts consistent with an already-narrowed
    /// candidate set, instead of scanning all of [`Instance::facts_with_rel`].
    pub fn facts_with_rel_pos_value(&self, rel: RelId, pos: usize, v: Value) -> &[FactId] {
        self.index.with_rel_pos_value(rel, pos, v)
    }

    /// Ids of all facts in which value `v` occurs (each fact listed once).
    pub fn facts_containing(&self, v: Value) -> &[FactId] {
        self.index.containing_value(v)
    }

    /// True if `v` occurs in at least one fact.
    pub fn is_active(&self, v: Value) -> bool {
        !self.index.containing_value(v).is_empty()
    }

    /// The active domain: all values occurring in at least one fact, in index
    /// order.
    pub fn active_domain(&self) -> Vec<Value> {
        self.values().filter(|&v| self.is_active(v)).collect()
    }

    /// Number of active-domain elements.
    pub fn active_domain_size(&self) -> usize {
        self.values().filter(|&v| self.is_active(v)).count()
    }

    /// The Gaifman neighbours of `v`: all values co-occurring with `v` in some
    /// fact (excluding `v` itself), without duplicates.
    pub fn neighbours(&self, v: Value) -> Vec<Value> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &fid in self.facts_containing(v) {
            for &w in &self.fact(fid).args {
                if w != v && seen.insert(w) {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Connected components of the Gaifman graph restricted to the active
    /// domain (isolated declared values are not reported).
    pub fn connected_components(&self) -> Vec<Vec<Value>> {
        let mut seen: HashSet<Value> = HashSet::new();
        let mut comps = Vec::new();
        for v in self.values() {
            if !self.is_active(v) || seen.contains(&v) {
                continue;
            }
            let mut stack = vec![v];
            let mut comp = Vec::new();
            seen.insert(v);
            while let Some(x) = stack.pop() {
                comp.push(x);
                for w in self.neighbours(x) {
                    if seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }

    /// The sub-instance induced by `keep`: keeps exactly the facts all of
    /// whose arguments lie in `keep`.  Returns the new instance together with
    /// the mapping from old values to new values (only for kept values).
    pub fn induced(&self, keep: &HashSet<Value>) -> (Instance, HashMap<Value, Value>) {
        let mut out = Instance::new(self.schema.clone());
        let mut map = HashMap::new();
        for v in self.values() {
            if keep.contains(&v) {
                let nv = out.add_value(self.label(v));
                map.insert(v, nv);
            }
        }
        for f in &self.facts {
            if f.args.iter().all(|a| keep.contains(a)) {
                let args: Vec<Value> = f.args.iter().map(|a| map[a]).collect();
                out.add_fact(f.rel, &args).expect("valid fact");
            }
        }
        (out, map)
    }

    /// The sub-instance obtained by removing a single value (and every fact
    /// mentioning it).
    pub fn without_value(&self, v: Value) -> (Instance, HashMap<Value, Value>) {
        let keep: HashSet<Value> = self.values().filter(|&w| w != v).collect();
        self.induced(&keep)
    }

    /// Imports every value and every fact of `other` into `self`, returning
    /// the mapping from `other`'s values to the freshly created values.
    ///
    /// # Errors
    /// Fails if the schemas differ.
    pub fn import(&mut self, other: &Instance) -> Result<Vec<Value>> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(DataError::SchemaMismatch);
        }
        let map: Vec<Value> = other
            .values()
            .map(|v| self.add_value(other.label(v)))
            .collect();
        for f in other.facts() {
            let args: Vec<Value> = f.args.iter().map(|a| map[a.index()]).collect();
            self.add_fact(f.rel, &args)?;
        }
        Ok(map)
    }

    /// True if `self` and `other` have literally the same fact set under the
    /// identity mapping of value indices (not isomorphism).
    pub fn same_facts(&self, other: &Instance) -> bool {
        if self.schema.as_ref() != other.schema.as_ref() || self.num_facts() != other.num_facts() {
            return false;
        }
        self.facts
            .iter()
            .all(|f| other.contains_fact(f.rel, &f.args))
    }

    /// Formats one fact for display.
    pub fn fact_to_string(&self, f: &Fact) -> String {
        let args: Vec<&str> = f.args.iter().map(|a| self.label(*a)).collect();
        format!("{}({})", self.schema.name(f.rel), args.join(","))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.fact_to_string(fact))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph() -> Arc<Schema> {
        Schema::digraph()
    }

    #[test]
    fn add_values_and_facts() {
        let mut i = Instance::new(digraph());
        let a = i.add_value("a");
        let b = i.add_value("b");
        let r = i.schema().rel("R").unwrap();
        let f1 = i.add_fact(r, &[a, b]).unwrap();
        let f2 = i.add_fact(r, &[a, b]).unwrap();
        assert_eq!(f1, f2, "facts are deduplicated");
        assert_eq!(i.num_facts(), 1);
        assert_eq!(i.num_values(), 2);
        assert!(i.contains_fact(r, &[a, b]));
        assert!(!i.contains_fact(r, &[b, a]));
    }

    #[test]
    fn arity_checked() {
        let mut i = Instance::new(digraph());
        let a = i.add_value("a");
        let r = i.schema().rel("R").unwrap();
        assert!(matches!(
            i.add_fact(r, &[a]),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_value_rejected() {
        let mut i = Instance::new(digraph());
        let r = i.schema().rel("R").unwrap();
        let a = i.add_value("a");
        assert!(matches!(
            i.add_fact(r, &[a, Value(7)]),
            Err(DataError::UnknownValue(7))
        ));
    }

    #[test]
    fn active_domain_excludes_isolated_values() {
        let mut i = Instance::new(digraph());
        let a = i.add_value("a");
        let b = i.add_value("b");
        let _c = i.add_value("c");
        i.add_fact_by_name("R", &[a, b]).unwrap();
        assert_eq!(i.active_domain(), vec![a, b]);
        assert_eq!(i.num_values(), 3);
        assert_eq!(i.active_domain_size(), 2);
    }

    #[test]
    fn neighbours_and_components() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        i.add_fact_labels("R", &["b", "c"]).unwrap();
        i.add_fact_labels("R", &["x", "y"]).unwrap();
        let b = i.value_by_label("b").unwrap();
        let mut nb = i.neighbours(b);
        nb.sort();
        assert_eq!(nb.len(), 2);
        assert_eq!(i.connected_components().len(), 2);
    }

    #[test]
    fn induced_subinstance() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        i.add_fact_labels("R", &["b", "c"]).unwrap();
        let a = i.value_by_label("a").unwrap();
        let b = i.value_by_label("b").unwrap();
        let keep: HashSet<Value> = [a, b].into_iter().collect();
        let (sub, map) = i.induced(&keep);
        assert_eq!(sub.num_facts(), 1);
        assert_eq!(sub.num_values(), 2);
        assert_eq!(sub.label(map[&a]), "a");
    }

    #[test]
    fn import_merges_domains() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let mut j = Instance::new(digraph());
        j.add_fact_labels("R", &["x", "y"]).unwrap();
        let map = i.import(&j).unwrap();
        assert_eq!(i.num_values(), 4);
        assert_eq!(i.num_facts(), 2);
        assert_eq!(i.label(map[0]), "x");
    }

    #[test]
    fn display_lists_facts() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        assert_eq!(i.to_string(), "{R(a,b)}");
    }

    #[test]
    fn without_value_drops_incident_facts() {
        let mut i = Instance::new(digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        i.add_fact_labels("R", &["b", "c"]).unwrap();
        let b = i.value_by_label("b").unwrap();
        let (sub, _) = i.without_value(b);
        assert_eq!(sub.num_facts(), 0);
        assert_eq!(sub.num_values(), 2);
    }
}
