//! The fact index of an [`Instance`](crate::Instance): every secondary
//! access path into the fact table, maintained incrementally by
//! `Instance::add_fact` and rebuilt wholesale after deserialization.
//!
//! The index exists because the homomorphism engine (`cqfit-hom`) drives
//! all of the paper's fitting algorithms, and its propagation loop needs to
//! enumerate *only* the target facts consistent with a small candidate set
//! instead of scanning every fact of a relation.  The per-`(relation,
//! position, value)` posting lists below make that enumeration proportional
//! to the answer size.
//!
//! Everything is stored in dense, offset-addressed vectors — no hashing on
//! any lookup path — because the engine performs millions of lookups per
//! search: exact-fact membership resolves through the *shortest* posting
//! list of the fact's argument positions, which for graph-like instances is
//! the smaller of the two endpoint degrees.

use crate::{Fact, FactId, RelId, Schema, Value};

/// Empty posting list returned for keys that were never inserted.
const NO_FACTS: &[FactId] = &[];

/// Secondary indexes over the fact table of an instance.
///
/// Access paths:
/// * exact-fact lookup (`lookup`) for membership and deduplication,
/// * per-relation posting lists (`with_rel`),
/// * per-value posting lists (`containing_value`),
/// * per-`(relation, position, value)` posting lists (`with_rel_pos_value`),
///   the workhorse of index-accelerated homomorphism propagation.
#[derive(Debug, Clone, Default)]
pub(crate) struct FactIndex {
    /// All facts of each relation, in insertion order.
    by_rel: Vec<Vec<FactId>>,
    /// All facts mentioning each value (each fact listed once), in insertion
    /// order.
    by_value: Vec<Vec<FactId>>,
    /// Flattened `(relation, position)` slots: slot `slot_of[rel] + pos`
    /// holds the value-indexed posting lists of that argument position.
    /// The value dimension grows lazily on insert, so declaring values is
    /// free and absent keys read as empty.
    by_rel_pos: Vec<Vec<Vec<FactId>>>,
    /// Start of each relation's slot range in `by_rel_pos` (prefix sums of
    /// the arities).
    slot_of: Vec<usize>,
}

impl FactIndex {
    /// An empty index ready for the relations of `schema`.
    pub fn new(schema: &Schema) -> Self {
        let mut index = FactIndex::default();
        index.reset(schema, 0);
        index
    }

    /// Clears everything and re-sizes for `schema` and `num_values` values.
    pub fn reset(&mut self, schema: &Schema, num_values: usize) {
        self.by_rel.clear();
        self.by_rel.resize(schema.len(), Vec::new());
        self.by_value.clear();
        self.by_value.resize(num_values, Vec::new());
        self.slot_of.clear();
        let mut slots = 0;
        for rel in schema.rel_ids() {
            self.slot_of.push(slots);
            slots += schema.arity(rel);
        }
        self.by_rel_pos.clear();
        self.by_rel_pos.resize(slots, Vec::new());
    }

    /// Registers a freshly declared value (appends an empty posting list).
    pub fn add_value(&mut self) {
        self.by_value.push(Vec::new());
    }

    /// The id of the identical fact, if already present.
    ///
    /// Resolves through the shortest per-position posting list of the
    /// argument values (the full per-relation list for nullary facts) and
    /// verifies candidates against the fact table — no hashing, no
    /// allocation.
    ///
    /// Complexity trade-off: a membership probe costs O(min positional
    /// degree) instead of the O(1) of a hash map, but performs zero heap
    /// allocations (the hash map needed an owned key per probe) and no
    /// SipHash work.  The probe is the inner loop of forward checking and
    /// of fact deduplication during instance construction; at the instance
    /// sizes this library handles (paper families, products of examples)
    /// the short-posting-list scan wins by a wide margin — see
    /// `BENCH_pr2.json`.  For pathologically dense instances (complete
    /// graphs with tens of thousands of values) construction would degrade
    /// to O(Σ degree) per insert; revisit with a hash-free open-addressing
    /// table if such workloads ever appear.
    pub fn lookup(&self, facts: &[Fact], rel: RelId, args: &[Value]) -> Option<FactId> {
        let postings = if args.is_empty() {
            self.with_rel(rel)
        } else {
            (0..args.len())
                .map(|pos| self.with_rel_pos_value(rel, pos, args[pos]))
                .min_by_key(|list| list.len())
                .expect("non-empty args")
        };
        postings
            .iter()
            .copied()
            .find(|&fid| facts[fid.index()].args == args)
    }

    /// Inserts a (known to be fresh) fact into every access path.
    pub fn insert(&mut self, fact: &Fact, id: FactId) {
        self.by_rel[fact.rel.index()].push(id);
        let base = self.slot_of[fact.rel.index()];
        for (pos, &a) in fact.args.iter().enumerate() {
            let slot = &mut self.by_rel_pos[base + pos];
            if slot.len() <= a.index() {
                slot.resize(a.index() + 1, Vec::new());
            }
            slot[a.index()].push(id);
        }
        for (pos, &a) in fact.args.iter().enumerate() {
            // Each fact is listed once per value, even when the value
            // repeats across positions.
            if fact.args[..pos].contains(&a) {
                continue;
            }
            self.by_value[a.index()].push(id);
        }
    }

    /// All facts of relation `rel`.
    pub fn with_rel(&self, rel: RelId) -> &[FactId] {
        &self.by_rel[rel.index()]
    }

    /// All facts mentioning value `v`.
    pub fn containing_value(&self, v: Value) -> &[FactId] {
        &self.by_value[v.index()]
    }

    /// All facts of relation `rel` whose argument at position `pos` is `v`.
    #[inline]
    pub fn with_rel_pos_value(&self, rel: RelId, pos: usize, v: Value) -> &[FactId] {
        self.by_rel_pos[self.slot_of[rel.index()] + pos]
            .get(v.index())
            .map_or(NO_FACTS, Vec::as_slice)
    }
}
