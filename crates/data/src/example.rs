//! Pointed instances and data examples.

use crate::{DataError, Instance, Result, Value};
use std::fmt;

/// A pointed instance `(I, ā)`: an instance together with a tuple of
/// distinguished values.
///
/// When every distinguished value lies in the active domain the pointed
/// instance is a *data example* (see [`Example::is_data_example`]).  Boolean
/// examples have an empty tuple of distinguished values.
#[derive(Debug, Clone)]
pub struct Example {
    instance: Instance,
    distinguished: Vec<Value>,
}

impl Example {
    /// Creates a pointed instance; no active-domain requirement is imposed.
    pub fn new(instance: Instance, distinguished: Vec<Value>) -> Self {
        for &d in &distinguished {
            assert!(
                d.index() < instance.num_values(),
                "distinguished value outside the instance domain"
            );
        }
        Example {
            instance,
            distinguished,
        }
    }

    /// Creates a Boolean (0-ary) example.
    pub fn boolean(instance: Instance) -> Self {
        Example::new(instance, Vec::new())
    }

    /// Creates a data example, checking that each distinguished value occurs
    /// in at least one fact.
    ///
    /// # Errors
    /// Returns [`DataError::DistinguishedOutsideActiveDomain`] otherwise.
    pub fn data_example(instance: Instance, distinguished: Vec<Value>) -> Result<Self> {
        for &d in &distinguished {
            if !instance.is_active(d) {
                return Err(DataError::DistinguishedOutsideActiveDomain(
                    instance.label(d).to_string(),
                ));
            }
        }
        Ok(Example::new(instance, distinguished))
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Mutable access to the underlying instance.
    ///
    /// Note that removing facts may invalidate the data-example property;
    /// callers should re-check with [`Example::is_data_example`] if needed.
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// Consumes the example, returning its parts.
    pub fn into_parts(self) -> (Instance, Vec<Value>) {
        (self.instance, self.distinguished)
    }

    /// The tuple of distinguished values.
    pub fn distinguished(&self) -> &[Value] {
        &self.distinguished
    }

    /// The arity of the example (length of the distinguished tuple).
    pub fn arity(&self) -> usize {
        self.distinguished.len()
    }

    /// True if this is a Boolean example.
    pub fn is_boolean(&self) -> bool {
        self.distinguished.is_empty()
    }

    /// True if every distinguished value occurs in some fact, i.e. the
    /// pointed instance is a data example in the sense of §2.1.
    pub fn is_data_example(&self) -> bool {
        self.distinguished
            .iter()
            .all(|&d| self.instance.is_active(d))
    }

    /// True if the example has the Unique Names Property: no value repeats in
    /// the distinguished tuple.
    pub fn has_unp(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.distinguished.iter().all(|d| seen.insert(*d))
    }

    /// The equality type of the distinguished tuple: for each position, the
    /// first position holding the same value.  Two examples have compatible
    /// distinguished tuples (for e.g. products) iff their equality types are
    /// comparable; examples with the UNP have equality type `[0,1,…,k-1]`.
    pub fn equality_type(&self) -> Vec<usize> {
        self.distinguished
            .iter()
            .enumerate()
            .map(|(i, d)| {
                self.distinguished[..i]
                    .iter()
                    .position(|e| e == d)
                    .unwrap_or(i)
            })
            .collect()
    }

    /// The size of the example measured, as in the paper, by the number of
    /// facts.
    pub fn size(&self) -> usize {
        self.instance.num_facts()
    }

    /// Whether the example is connected in the sense of §2.2: it cannot be
    /// written as the disjoint union of two non-empty pointed instances.
    /// Equivalently, the facts form a single connected component of the
    /// Gaifman graph once all distinguished elements are contracted into one
    /// node.
    pub fn is_connected(&self) -> bool {
        let comps = self.connected_components();
        comps.len() <= 1
    }

    /// Groups the facts into the connected components of the example, where
    /// (as in Example 2.3 of the paper) distinguished elements do not merge
    /// components on their own: two facts are in the same component iff they
    /// are linked by a path of shared *non-distinguished* values.
    ///
    /// Returns, for each component, the list of fact ids it contains.
    pub fn connected_components(&self) -> Vec<Vec<crate::FactId>> {
        use std::collections::HashMap;
        let n = self.instance.num_facts();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let distinguished: std::collections::HashSet<Value> =
            self.distinguished.iter().copied().collect();
        // Link facts sharing a non-distinguished value.
        let mut first_fact_of_value: HashMap<Value, usize> = HashMap::new();
        for (fi, fact) in self.instance.facts().iter().enumerate() {
            for &a in &fact.args {
                if distinguished.contains(&a) {
                    continue;
                }
                match first_fact_of_value.get(&a) {
                    Some(&fj) => union(&mut parent, fi, fj),
                    None => {
                        first_fact_of_value.insert(a, fi);
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<crate::FactId>> = HashMap::new();
        for fi in 0..n {
            let root = find(&mut parent, fi);
            groups
                .entry(root)
                .or_default()
                .push(crate::FactId(fi as u32));
        }
        let mut out: Vec<Vec<crate::FactId>> = groups.into_values().collect();
        out.sort_by_key(|g| g.first().copied());
        out
    }

    /// Extracts the connected component containing the given fact ids as a
    /// pointed instance with the same distinguished tuple (Example 2.3: the
    /// result is a pointed instance but not necessarily a data example).
    pub fn component_example(&self, fact_ids: &[crate::FactId]) -> Example {
        let mut keep: std::collections::HashSet<Value> =
            self.distinguished.iter().copied().collect();
        let wanted: std::collections::HashSet<crate::FactId> = fact_ids.iter().copied().collect();
        for &fid in fact_ids {
            for &a in &self.instance.fact(fid).args {
                keep.insert(a);
            }
        }
        let mut out = Instance::new(self.instance.schema().clone());
        let mut map = std::collections::HashMap::new();
        for v in self.instance.values() {
            if keep.contains(&v) {
                map.insert(v, out.add_value(self.instance.label(v)));
            }
        }
        for (fi, fact) in self.instance.facts().iter().enumerate() {
            if wanted.contains(&crate::FactId(fi as u32)) {
                let args: Vec<Value> = fact.args.iter().map(|a| map[a]).collect();
                out.add_fact(fact.rel, &args).expect("valid fact");
            }
        }
        let dist = self.distinguished.iter().map(|d| map[d]).collect();
        Example::new(out, dist)
    }
}

impl fmt::Display for Example {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, ⟨", self.instance)?;
        for (i, d) in self.distinguished.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.instance.label(*d))?;
        }
        write!(f, "⟩)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn simple() -> Example {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let a = i.value_by_label("a").unwrap();
        Example::new(i, vec![a])
    }

    #[test]
    fn arity_and_unp() {
        let e = simple();
        assert_eq!(e.arity(), 1);
        assert!(e.has_unp());
        assert!(e.is_data_example());
        assert_eq!(e.size(), 1);
    }

    #[test]
    fn data_example_requires_active_distinguished() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let c = i.add_value("c");
        assert!(Example::data_example(i, vec![c]).is_err());
    }

    #[test]
    fn boolean_example() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "a"]).unwrap();
        let e = Example::boolean(i);
        assert!(e.is_boolean());
        assert!(e.is_data_example());
    }

    #[test]
    fn equality_type_detects_repeats() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let a = i.value_by_label("a").unwrap();
        let b = i.value_by_label("b").unwrap();
        let e = Example::new(i, vec![a, b, a]);
        assert_eq!(e.equality_type(), vec![0, 1, 0]);
        assert!(!e.has_unp());
    }

    /// Example 2.3 of the paper: (I, ⟨a,b⟩) with I = {R(a,b), S(a,c), S(c,b),
    /// P(b)} has three connected components.
    #[test]
    fn paper_example_2_3_components() {
        let schema = Schema::binary_schema(["P"], ["R", "S"]);
        let mut i = Instance::new(schema);
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        i.add_fact_labels("S", &["a", "c"]).unwrap();
        i.add_fact_labels("S", &["c", "b"]).unwrap();
        i.add_fact_labels("P", &["b"]).unwrap();
        let a = i.value_by_label("a").unwrap();
        let b = i.value_by_label("b").unwrap();
        let e = Example::new(i, vec![a, b]);
        let comps = e.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(!e.is_connected());
        // The component containing only P(b) is a pointed instance but not a
        // data example (a does not occur in it).
        let p_comp = comps
            .iter()
            .find(|c| c.len() == 1 && e.instance().fact(c[0]).args.len() == 1)
            .unwrap();
        let sub = e.component_example(p_comp);
        assert!(!sub.is_data_example());
        assert_eq!(sub.arity(), 2);
    }

    #[test]
    fn connected_single_component() {
        let e = simple();
        assert!(e.is_connected());
    }
}
