//! Collections of labeled examples.

use crate::{DataError, Example, Result, Schema};
use std::sync::Arc;

/// A collection of labeled examples `E = (E⁺, E⁻)`: finite sets of positive
/// and negative data examples of a common schema and arity (§2.1).
///
/// The *fitting problem* asks for a query that returns every positive example
/// and no negative example.
#[derive(Debug, Clone, Default)]
pub struct LabeledExamples {
    positives: Vec<Example>,
    negatives: Vec<Example>,
}

impl LabeledExamples {
    /// Creates a collection, checking schema and arity consistency and that
    /// every member is a data example.
    pub fn new(positives: Vec<Example>, negatives: Vec<Example>) -> Result<Self> {
        let col = LabeledExamples {
            positives,
            negatives,
        };
        col.validate()?;
        Ok(col)
    }

    /// Creates an empty collection (fits every query; useful as a builder
    /// seed).
    pub fn empty() -> Self {
        LabeledExamples::default()
    }

    /// Adds a positive example.
    pub fn add_positive(&mut self, e: Example) {
        self.positives.push(e);
    }

    /// Adds a negative example.
    pub fn add_negative(&mut self, e: Example) {
        self.negatives.push(e);
    }

    /// The positive examples `E⁺`.
    pub fn positives(&self) -> &[Example] {
        &self.positives
    }

    /// The negative examples `E⁻`.
    pub fn negatives(&self) -> &[Example] {
        &self.negatives
    }

    /// All examples, positives first.
    pub fn all(&self) -> impl Iterator<Item = (&Example, bool)> {
        self.positives
            .iter()
            .map(|e| (e, true))
            .chain(self.negatives.iter().map(|e| (e, false)))
    }

    /// The common arity of the examples, if the collection is non-empty.
    pub fn arity(&self) -> Option<usize> {
        self.all().next().map(|(e, _)| e.arity())
    }

    /// The common schema, if the collection is non-empty.
    pub fn schema(&self) -> Option<&Arc<Schema>> {
        self.positives
            .first()
            .or_else(|| self.negatives.first())
            .map(|e| e.instance().schema())
    }

    /// The combined size `‖E‖ = Σ_e |e|` (total number of facts).
    pub fn total_size(&self) -> usize {
        self.all().map(|(e, _)| e.size()).sum()
    }

    /// The combined size of the negative examples, `‖E⁻‖`.
    pub fn negative_size(&self) -> usize {
        self.negatives.iter().map(|e| e.size()).sum()
    }

    /// The combined size of the positive examples, `‖E⁺‖`.
    pub fn positive_size(&self) -> usize {
        self.positives.iter().map(|e| e.size()).sum()
    }

    /// Checks that all examples share one schema and one arity and that every
    /// example is a data example.
    pub fn validate(&self) -> Result<()> {
        let mut schema: Option<&Arc<Schema>> = None;
        let mut arity: Option<usize> = None;
        for (e, _) in self.all() {
            if !e.is_data_example() {
                return Err(DataError::DistinguishedOutsideActiveDomain(format!("{e}")));
            }
            match schema {
                None => schema = Some(e.instance().schema()),
                Some(s) => {
                    if s.as_ref() != e.instance().schema().as_ref() {
                        return Err(DataError::SchemaMismatch);
                    }
                }
            }
            match arity {
                None => arity = Some(e.arity()),
                Some(k) => {
                    if k != e.arity() {
                        return Err(DataError::ExampleArityMismatch {
                            left: k,
                            right: e.arity(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instance, Schema};

    fn example(edge: (&str, &str), dist: &str) -> Example {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &[edge.0, edge.1]).unwrap();
        let d = i.value_by_label(dist).unwrap();
        Example::new(i, vec![d])
    }

    #[test]
    fn sizes_and_accessors() {
        let e = LabeledExamples::new(
            vec![example(("a", "b"), "a")],
            vec![example(("c", "c"), "c")],
        )
        .unwrap();
        assert_eq!(e.arity(), Some(1));
        assert_eq!(e.total_size(), 2);
        assert_eq!(e.positive_size(), 1);
        assert_eq!(e.negative_size(), 1);
        assert_eq!(e.positives().len(), 1);
        assert_eq!(e.negatives().len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let boolean = Example::boolean(i);
        let err = LabeledExamples::new(vec![example(("a", "b"), "a")], vec![boolean]).unwrap_err();
        assert!(matches!(err, DataError::ExampleArityMismatch { .. }));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut i = Instance::new(Schema::digraph());
        i.add_fact_labels("R", &["a", "b"]).unwrap();
        let e1 = Example::boolean(i);
        let mut j = Instance::new(Schema::binary_schema(["P"], ["R"]));
        j.add_fact_labels("P", &["a"]).unwrap();
        let e2 = Example::boolean(j);
        let err = LabeledExamples::new(vec![e1], vec![e2]).unwrap_err();
        assert!(matches!(err, DataError::SchemaMismatch));
    }

    #[test]
    fn empty_collection_valid() {
        let e = LabeledExamples::empty();
        assert!(e.validate().is_ok());
        assert_eq!(e.arity(), None);
        assert_eq!(e.total_size(), 0);
    }
}
