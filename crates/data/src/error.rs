//! Error type for the data layer.

use std::fmt;

/// Errors raised while constructing or validating schemas, instances and
/// examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation name was declared twice in the same schema.
    DuplicateRelation(String),
    /// A relation was declared with arity zero (the paper requires arity ≥ 1).
    ZeroArity(String),
    /// A relation name that does not exist in the schema was referenced.
    UnknownRelation(String),
    /// A fact was created with the wrong number of arguments.
    ArityMismatch {
        /// Relation involved.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A value identifier outside of the instance domain was referenced.
    UnknownValue(u32),
    /// A data example was constructed whose distinguished elements are not
    /// all in the active domain.
    DistinguishedOutsideActiveDomain(String),
    /// Two objects over different schemas were combined.
    SchemaMismatch,
    /// Two objects of different arities were combined.
    ExampleArityMismatch {
        /// Arity of the first object.
        left: usize,
        /// Arity of the second object.
        right: usize,
    },
    /// Error while parsing the textual instance/example format.
    Parse(String),
    /// Error while parsing the textual instance/example format, with the
    /// offending line and token attached (1-based line numbers).  Produced
    /// by [`crate::parse_instance`] / [`crate::parse_example`] so that
    /// malformed requests can be answered with an actionable position.
    ParseAt {
        /// 1-based line number of the offending input line.
        line: usize,
        /// The offending token (relation name, value label, or line
        /// fragment).
        token: String,
        /// What went wrong.
        message: String,
    },
}

impl DataError {
    /// Attaches a position to a (position-less) error, turning it into
    /// [`DataError::ParseAt`]; errors that already carry a position are
    /// returned unchanged.
    pub fn at_line(self, line: usize, token: &str) -> DataError {
        match self {
            DataError::ParseAt { .. } => self,
            DataError::Parse(message) => DataError::ParseAt {
                line,
                token: token.to_string(),
                message,
            },
            other => DataError::ParseAt {
                line,
                token: token.to_string(),
                message: other.to_string(),
            },
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            DataError::ZeroArity(name) => {
                write!(f, "relation `{name}` must have arity at least 1")
            }
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {got} arguments were supplied"
            ),
            DataError::UnknownValue(v) => write!(f, "value id {v} is not part of the instance"),
            DataError::DistinguishedOutsideActiveDomain(label) => write!(
                f,
                "distinguished element `{label}` does not occur in any fact (not a data example)"
            ),
            DataError::SchemaMismatch => write!(f, "objects are defined over different schemas"),
            DataError::ExampleArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::ParseAt {
                line,
                token,
                message,
            } => write!(f, "parse error at line {line}, near `{token}`: {message}"),
        }
    }
}

impl std::error::Error for DataError {}
