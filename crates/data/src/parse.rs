//! A small textual format for instances and examples, used by the examples
//! and tests.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! R(a,b)
//! EmpInfo(Hilbert, Math, Gauss)
//! * a, b        <- optional: distinguished tuple (for examples)
//! ```
//!
//! Facts are `Relation(value, value, …)`.  Value and relation names may
//! contain any characters except whitespace, commas, and parentheses.

use crate::{DataError, Example, Instance, Result, Schema};
use std::sync::Arc;

/// Parses an instance from the textual format, ignoring any `*` line.
pub fn parse_instance(schema: &Arc<Schema>, text: &str) -> Result<Instance> {
    let (inst, _, _) = parse_inner(schema, text)?;
    Ok(inst)
}

/// Parses an example from the textual format.  The distinguished tuple is
/// given on a line starting with `*`; if absent, the example is Boolean.
///
/// # Errors
/// All parse errors are [`DataError::ParseAt`] values carrying the 1-based
/// line number and the offending token, so callers (notably the
/// `cqfit-serve` request handler) can answer with an actionable position.
pub fn parse_example(schema: &Arc<Schema>, text: &str) -> Result<Example> {
    let (inst, dist_labels, dist_line) = parse_inner(schema, text)?;
    let mut dist = Vec::new();
    for label in dist_labels {
        let v = inst.value_by_label(&label).ok_or_else(|| {
            DataError::Parse(format!(
                "unknown distinguished value `{label}` (it occurs in no fact)"
            ))
            .at_line(dist_line, &label)
        })?;
        dist.push(v);
    }
    Ok(Example::new(inst, dist))
}

fn parse_inner(schema: &Arc<Schema>, text: &str) -> Result<(Instance, Vec<String>, usize)> {
    let mut inst = Instance::new(schema.clone());
    let mut dist = Vec::new();
    let mut dist_line = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('*') {
            dist = rest
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            dist_line = lineno;
            continue;
        }
        let open = line.find('(').ok_or_else(|| DataError::ParseAt {
            line: lineno,
            token: line.to_string(),
            message: "expected a fact `Relation(value, …)` but found no `(`".into(),
        })?;
        if !line.ends_with(')') {
            return Err(DataError::ParseAt {
                line: lineno,
                token: line.to_string(),
                message: "missing closing `)`".into(),
            });
        }
        let rel_name = line[..open].trim();
        let args_str = &line[open + 1..line.len() - 1];
        let args: Vec<&str> = args_str
            .split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .collect();
        // Attach the line and the relation token to whatever the instance
        // builder rejects (unknown relation, wrong arity, …).
        inst.add_fact_labels(rel_name, &args)
            .map_err(|e| e.at_line(lineno, rel_name))?;
    }
    Ok((inst, dist, dist_line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_1_database() {
        // The EmpInfo database from Figure 1 / Example 1.1.
        let schema = Arc::new(Schema::new([("EmpInfo", 3)]).unwrap());
        let text = "
            # Figure 1
            EmpInfo(Hilbert, Math, Gauss)
            EmpInfo(Turing, ComputerScience, vonNeumann)
            EmpInfo(Einstein, Physics, Gauss)
        ";
        let inst = parse_instance(&schema, text).unwrap();
        assert_eq!(inst.num_facts(), 3);
        assert_eq!(inst.num_values(), 8);
    }

    #[test]
    fn parse_example_with_distinguished() {
        let schema = Schema::digraph();
        let e = parse_example(&schema, "R(a,b)\nR(b,c)\n* a, c").unwrap();
        assert_eq!(e.arity(), 2);
        assert_eq!(e.size(), 2);
        assert!(e.is_data_example());
    }

    #[test]
    fn parse_boolean_example() {
        let schema = Schema::digraph();
        let e = parse_example(&schema, "R(a,a)").unwrap();
        assert!(e.is_boolean());
    }

    #[test]
    fn parse_errors() {
        let schema = Schema::digraph();
        assert!(parse_example(&schema, "R a b").is_err());
        assert!(parse_example(&schema, "R(a,b").is_err());
        assert!(parse_example(&schema, "S(a,b)").is_err());
        assert!(parse_example(&schema, "R(a,b)\n* z").is_err());
    }

    #[test]
    fn parse_errors_report_line_and_token() {
        let schema = Schema::digraph();
        // Unknown relation on line 3 (line 1 is a comment).
        let err = parse_example(&schema, "# header\nR(a,b)\nS(a,b)").unwrap_err();
        match err {
            DataError::ParseAt { line, token, .. } => {
                assert_eq!(line, 3);
                assert_eq!(token, "S");
            }
            other => panic!("expected ParseAt, got {other:?}"),
        }
        // Arity mismatch keeps the relation token and line.
        let err = parse_example(&schema, "R(a,b)\nR(a)").unwrap_err();
        match err {
            DataError::ParseAt {
                line,
                token,
                ref message,
            } => {
                assert_eq!(line, 2);
                assert_eq!(token, "R");
                assert!(message.contains("arity"), "{message}");
            }
            ref other => panic!("expected ParseAt, got {other:?}"),
        }
        // Missing parenthesis names the offending line fragment.
        let err = parse_example(&schema, "R(a,b)\nR b c").unwrap_err();
        match err {
            DataError::ParseAt { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "R b c");
            }
            other => panic!("expected ParseAt, got {other:?}"),
        }
        // Unknown distinguished value points at the `*` line.
        let err = parse_example(&schema, "R(a,b)\n* z").unwrap_err();
        match err {
            DataError::ParseAt { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "z");
            }
            other => panic!("expected ParseAt, got {other:?}"),
        }
        // The rendered message is self-contained.
        let msg = parse_example(&schema, "Q(a)").unwrap_err().to_string();
        assert!(msg.contains("line 1") && msg.contains('Q'), "{msg}");
    }
}
