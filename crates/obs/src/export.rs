//! Timeline export: Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) and a plain-text per-trace waterfall.  Shared by
//! the `cqfit-trace` bin and the `cqfit-session trace` verb.

use serde::json::Value as Json;
use serde::Serialize;

use crate::trace::TraceSpan;

/// Renders spans as a Chrome `trace_event` JSON document: one complete
/// (`"ph": "X"`) event per span, timestamps and durations in
/// microseconds, one `tid` lane per trace (in order of first
/// appearance).  Trace and span ids ride in `args` as hex strings
/// alongside every annotation.
pub fn render_chrome_trace(spans: &[TraceSpan]) -> String {
    let mut lanes: Vec<u128> = Vec::new();
    let events: Vec<Json> = spans
        .iter()
        .map(|span| {
            let lane = match lanes.iter().position(|&t| t == span.trace_id) {
                Some(at) => at,
                None => {
                    lanes.push(span.trace_id);
                    lanes.len() - 1
                }
            };
            let mut args = vec![
                (
                    "trace_id".to_string(),
                    Json::str(format!("{:032x}", span.trace_id)),
                ),
                (
                    "span_id".to_string(),
                    Json::str(format!("{:016x}", span.span_id)),
                ),
                (
                    "parent_span_id".to_string(),
                    Json::str(format!("{:016x}", span.parent_span_id)),
                ),
            ];
            for (key, value) in &span.annotations {
                args.push((key.clone(), Json::str(value.clone())));
            }
            Json::obj([
                ("name", Json::str(span.name.clone())),
                ("cat", Json::str("cqfit")),
                ("ph", Json::str("X")),
                ("ts", Json::Float(span.start_ns as f64 / 1_000.0)),
                ("dur", Json::Float(span.duration_ns() as f64 / 1_000.0)),
                ("pid", 1u32.to_json()),
                ("tid", (lane + 1).to_json()),
                ("args", Json::Obj(args)),
            ])
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
    ])
    .to_string()
}

/// Renders spans as plain-text waterfalls, one block per trace: children
/// indented under their parent, siblings ordered by start time, each
/// line carrying the span's offset from the trace root, duration, and
/// annotations.  Orphans (parent missing from the set — e.g. evicted
/// from the ring) surface at top level rather than disappearing.
pub fn render_waterfall(spans: &[TraceSpan]) -> String {
    let mut out = String::new();
    let mut traces: Vec<u128> = Vec::new();
    for span in spans {
        if !traces.contains(&span.trace_id) {
            traces.push(span.trace_id);
        }
    }
    for trace_id in traces {
        let members: Vec<&TraceSpan> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
        let origin_ns = members.iter().map(|s| s.start_ns).min().unwrap_or(0);
        out.push_str(&format!(
            "trace {trace_id:032x} ({} spans)\n",
            members.len()
        ));
        let mut tops: Vec<usize> = (0..members.len())
            .filter(|&i| {
                members[i].parent_span_id == 0
                    || !members
                        .iter()
                        .any(|s| s.span_id == members[i].parent_span_id)
            })
            .collect();
        tops.sort_by_key(|&i| (members[i].start_ns, members[i].span_id));
        for top in tops {
            waterfall_line(&members, top, origin_ns, 1, &mut out);
        }
    }
    out
}

fn waterfall_line(
    members: &[&TraceSpan],
    at: usize,
    origin_ns: u64,
    depth: usize,
    out: &mut String,
) {
    let span = members[at];
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} +{}us {}us [{:016x}]",
        span.name,
        span.start_ns.saturating_sub(origin_ns) / 1_000,
        span.duration_ns() / 1_000,
        span.span_id,
    ));
    for (key, value) in &span.annotations {
        out.push_str(&format!(" {key}={value}"));
    }
    out.push('\n');
    let mut children: Vec<usize> = (0..members.len())
        .filter(|&i| i != at && members[i].parent_span_id == span.span_id)
        .collect();
    children.sort_by_key(|&i| (members[i].start_ns, members[i].span_id));
    for child in children {
        waterfall_line(members, child, origin_ns, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Vec<TraceSpan> {
        let span = |span_id, parent, name: &str, start, end| TraceSpan {
            trace_id: 0xFEED,
            span_id,
            parent_span_id: parent,
            name: name.to_string(),
            start_ns: start,
            end_ns: end,
            annotations: vec![("op".to_string(), "ping".to_string())],
        };
        vec![
            span(1, 0, "client.request", 1_000, 9_000),
            span(2, 1, "client.attempt", 1_500, 8_500),
            span(3, 2, "server.request", 2_000, 8_000),
            span(4, 3, "engine.handle", 3_000, 7_000),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_nested_pairs() {
        let text = render_chrome_trace(&tree());
        let v = Json::parse(&text).expect("valid chrome trace JSON");
        let events = v.req("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        for event in events {
            assert_eq!(event.req("ph").unwrap().as_str(), Some("X"));
            assert!(event.req("ts").unwrap().as_f64().is_some());
            assert!(event.req("dur").unwrap().as_f64().is_some());
            assert!(event.req("args").unwrap().get("trace_id").is_some());
        }
        // At least one nested parent/child pair is present.
        let nested = events.iter().any(|e| {
            let parent = e.req("args").unwrap().get("parent_span_id").unwrap();
            parent.as_str() != Some("0000000000000000")
                && events.iter().any(|other| {
                    other.req("args").unwrap().get("span_id").unwrap().as_str() == parent.as_str()
                })
        });
        assert!(nested, "expected a nested span pair");
    }

    #[test]
    fn waterfall_indents_children_under_parents() {
        let text = render_waterfall(&tree());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("trace "));
        assert!(lines[1].starts_with("  client.request +0us 8us"));
        assert!(lines[2].starts_with("    client.attempt"));
        assert!(lines[3].starts_with("      server.request"));
        assert!(lines[4].starts_with("        engine.handle"));
        assert!(lines[4].contains("op=ping"));

        // An orphan (parent outside the set) still renders at top level.
        let orphan = vec![TraceSpan {
            trace_id: 1,
            span_id: 7,
            parent_span_id: 99,
            name: "engine.handle".to_string(),
            start_ns: 0,
            end_ns: 1_000,
            annotations: Vec::new(),
        }];
        let text = render_waterfall(&orphan);
        assert!(text.contains("engine.handle"));
    }
}
