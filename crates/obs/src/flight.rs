//! The flight recorder: a bounded, crash-surviving journal of completed
//! trace spans.
//!
//! ## On-disk format (`trace.fr`)
//!
//! ```text
//! header (16 bytes):  "CQFITFR1" | slot_size u32 LE | slot_count u32 LE
//! slot   (512 bytes): seq u64 LE | len u32 LE | crc32 u32 LE
//!                     | len bytes of span JSON | zero padding
//! ```
//!
//! Slots are written strictly append-only through the `cqfit-env` `Fs`
//! seam (so the simulator's crash model applies verbatim): one
//! `write_all` + `flush` per slot, plus `sync_data` when fsync is on.
//! When the ring is full the file is truncated back to the header
//! (`set_len` + sync, the WAL rollback idiom) and writing resumes at
//! slot 0 — the journal holds the most recent *generation* of spans, a
//! bounded ring with the durability discipline of a log.
//!
//! ## Recovery
//!
//! [`decode_journal`] takes the longest valid slot prefix: slots must
//! carry a nonzero, strictly consecutive `seq`, an in-bounds length, and
//! a matching CRC over the payload.  A torn final slot (crash mid-write)
//! fails one of those checks and is dropped, along with any trailing
//! partial bytes — exactly the WAL's torn-tail truncation discipline.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use cqfit_env::{Env, FsFile, OpenMode};
use serde::Serialize;

use crate::trace::TraceSpan;

/// File name of the journal inside the flight-recorder directory.
pub const FR_FILE_NAME: &str = "trace.fr";

/// Journal magic: identifies the file and its format version.
pub const FR_MAGIC: &[u8; 8] = b"CQFITFR1";

/// Size of the journal header in bytes.
pub const FR_HEADER_BYTES: usize = 16;

/// Size of one slot in bytes (header + payload + padding).
pub const FR_SLOT_BYTES: usize = 512;

/// Size of the per-slot header (seq + len + crc).
const FR_SLOT_HEADER: usize = 16;

/// Maximum JSON payload bytes a slot can hold.
pub const FR_MAX_PAYLOAD: usize = FR_SLOT_BYTES - FR_SLOT_HEADER;

/// Default slot count used by `cqfit-serve` when `--fr-slots` is absent.
pub const FR_DEFAULT_SLOTS: usize = 1024;

/// CRC-32 (IEEE 802.3, reflected polynomial) — bitwise, no table; the
/// flight recorder writes a few hundred bytes per span, so throughput is
/// irrelevant next to the syscall it precedes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The live, append-only span journal.  See the module docs for format
/// and crash discipline.
#[derive(Debug)]
pub struct FlightRecorder {
    env: Arc<dyn Env>,
    path: PathBuf,
    fsync: bool,
    slot_count: u32,
    inner: Mutex<FrInner>,
}

#[derive(Debug)]
struct FrInner {
    file: Box<dyn FsFile>,
    next_slot: u32,
    seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Opens (and resets) the journal in `dir`, first recovering every
    /// span the previous incarnation persisted.
    ///
    /// Returns the recorder and the recovered spans (possibly empty).
    /// The file is rewritten fresh — header only — after recovery, with
    /// the sequence counter continuing where the recovered prefix ended,
    /// so slots from different process lifetimes never alias.
    ///
    /// # Errors
    /// Propagates filesystem errors from the `Fs` seam.
    pub fn open(
        env: Arc<dyn Env>,
        dir: &Path,
        slots: usize,
        fsync: bool,
    ) -> io::Result<(FlightRecorder, Vec<TraceSpan>)> {
        let slots = slots.max(1);
        env.fs().create_dir_all(dir)?;
        let path = dir.join(FR_FILE_NAME);
        let (recovered, last_seq) = match env.fs().read(&path) {
            Ok(bytes) => decode_journal_with_seq(&bytes),
            Err(_) => (Vec::new(), 0),
        };

        let mut header = Vec::with_capacity(FR_HEADER_BYTES);
        header.extend_from_slice(FR_MAGIC);
        header.extend_from_slice(&(FR_SLOT_BYTES as u32).to_le_bytes());
        header.extend_from_slice(&(slots as u32).to_le_bytes());
        let mut file = env.fs().open(&path, OpenMode::CreateTruncate)?;
        file.write_all(&header)?;
        file.flush()?;
        file.sync_data()?;
        drop(file);
        env.fs().sync_parent_dir(&path)?;

        let file = env.fs().open(&path, OpenMode::Append)?;
        Ok((
            FlightRecorder {
                env,
                path,
                fsync,
                slot_count: slots as u32,
                inner: Mutex::new(FrInner {
                    file,
                    next_slot: 0,
                    seq: last_seq + 1,
                    dropped: 0,
                }),
            },
            recovered,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Spans dropped because their JSON exceeded a slot even with
    /// annotations stripped.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Appends one span as a journal slot.  Spans too large for a slot
    /// are retried without annotations, then counted as dropped.
    ///
    /// # Errors
    /// Propagates write/sync errors; the slot counter only advances on
    /// success, so a failed slot is overwritten by the next attempt's
    /// bytes landing at the same EOF.
    pub fn record(&self, span: &TraceSpan) -> io::Result<()> {
        let mut payload = span.to_json().to_string().into_bytes();
        if payload.len() > FR_MAX_PAYLOAD {
            let mut trimmed = span.clone();
            trimmed.annotations.clear();
            payload = trimmed.to_json().to_string().into_bytes();
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if payload.len() > FR_MAX_PAYLOAD {
            inner.dropped += 1;
            return Ok(());
        }
        if inner.next_slot == self.slot_count {
            // Ring wrap: drop the previous generation and restart at
            // slot 0.  The truncation is synced so a crash right after
            // it recovers an empty (not stale) journal.
            inner.file.set_len(FR_HEADER_BYTES as u64)?;
            if self.fsync {
                inner.file.sync_data()?;
            }
            inner.next_slot = 0;
        }
        let mut slot = vec![0u8; FR_SLOT_BYTES];
        slot[0..8].copy_from_slice(&inner.seq.to_le_bytes());
        slot[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        slot[12..16].copy_from_slice(&crc32(&payload).to_le_bytes());
        slot[FR_SLOT_HEADER..FR_SLOT_HEADER + payload.len()].copy_from_slice(&payload);
        inner.file.write_all(&slot)?;
        inner.file.flush()?;
        if self.fsync {
            inner.file.sync_data()?;
        }
        inner.seq += 1;
        inner.next_slot += 1;
        Ok(())
    }

    /// The clock used for diagnostics, exposed so callers timestamp
    /// recovery dumps consistently with the journal's contents.
    pub fn now_ns(&self) -> u64 {
        self.env.clock().monotonic().as_nanos() as u64
    }
}

/// Decodes a journal image into the longest valid slot prefix of spans.
/// Invalid headers, torn slots, CRC mismatches, and sequence breaks all
/// terminate the prefix; trailing garbage is ignored.  Never fails —
/// recovery of a corrupt journal is an empty span list.
pub fn decode_journal(bytes: &[u8]) -> Vec<TraceSpan> {
    decode_journal_with_seq(bytes).0
}

fn decode_journal_with_seq(bytes: &[u8]) -> (Vec<TraceSpan>, u64) {
    let mut spans = Vec::new();
    let mut last_seq = 0u64;
    if bytes.len() < FR_HEADER_BYTES || &bytes[0..8] != FR_MAGIC {
        return (spans, last_seq);
    }
    let slot_size = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes")) as usize;
    if slot_size != FR_SLOT_BYTES {
        return (spans, last_seq);
    }
    let mut offset = FR_HEADER_BYTES;
    while offset + FR_SLOT_BYTES <= bytes.len() {
        let slot = &bytes[offset..offset + FR_SLOT_BYTES];
        let seq = u64::from_le_bytes(slot[0..8].try_into().expect("8 seq bytes"));
        if seq == 0 || (last_seq != 0 && seq != last_seq + 1) {
            break;
        }
        let len = u32::from_le_bytes(slot[8..12].try_into().expect("4 len bytes")) as usize;
        if len > FR_MAX_PAYLOAD {
            break;
        }
        let crc = u32::from_le_bytes(slot[12..16].try_into().expect("4 crc bytes"));
        let payload = &slot[FR_SLOT_HEADER..FR_SLOT_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(span) = serde::from_str::<TraceSpan>(text) else {
            break;
        };
        spans.push(span);
        last_seq = seq;
        offset += FR_SLOT_BYTES;
    }
    (spans, last_seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::RealEnv;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqfit_fr_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn span(i: u64) -> TraceSpan {
        TraceSpan {
            trace_id: 0xABCD_0000 + u128::from(i),
            span_id: i + 1,
            parent_span_id: if i == 0 { 0 } else { i },
            name: format!("span.{i}"),
            start_ns: i * 100,
            end_ns: i * 100 + 50,
            annotations: vec![("i".to_string(), i.to_string())],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_round_trips_and_recovers_across_reopen() {
        let env = RealEnv::arc();
        let dir = tmp_dir("roundtrip");
        let (recorder, recovered) =
            FlightRecorder::open(Arc::clone(&env), &dir, 64, false).expect("open fresh");
        assert!(recovered.is_empty());
        let spans: Vec<TraceSpan> = (0..5).map(span).collect();
        for s in &spans {
            recorder.record(s).expect("record span");
        }
        drop(recorder);

        let (recorder, recovered) =
            FlightRecorder::open(Arc::clone(&env), &dir, 64, false).expect("reopen");
        assert_eq!(recovered, spans);
        // Seq continues: new spans decode after another reopen too.
        recorder.record(&span(9)).expect("record after reopen");
        drop(recorder);
        let bytes = std::fs::read(dir.join(FR_FILE_NAME)).expect("read journal");
        assert_eq!(decode_journal(&bytes), vec![span(9)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_wraps_by_truncating_to_a_fresh_generation() {
        let env = RealEnv::arc();
        let dir = tmp_dir("wrap");
        let (recorder, _) = FlightRecorder::open(Arc::clone(&env), &dir, 4, false).expect("open");
        for i in 0..10 {
            recorder.record(&span(i)).expect("record span");
        }
        drop(recorder);
        let bytes = std::fs::read(dir.join(FR_FILE_NAME)).expect("read journal");
        // 10 spans over a 4-slot ring: generations [0..4), [4..8), [8..10).
        assert_eq!(bytes.len(), FR_HEADER_BYTES + 2 * FR_SLOT_BYTES);
        assert_eq!(decode_journal(&bytes), vec![span(8), span(9)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_slots_truncate_the_prefix() {
        let env = RealEnv::arc();
        let dir = tmp_dir("torn");
        let (recorder, _) = FlightRecorder::open(Arc::clone(&env), &dir, 16, false).expect("open");
        let spans: Vec<TraceSpan> = (0..4).map(span).collect();
        for s in &spans {
            recorder.record(s).expect("record span");
        }
        drop(recorder);
        let bytes = std::fs::read(dir.join(FR_FILE_NAME)).expect("read journal");

        // Cut at every slot boundary: exact prefixes decode.
        for k in 0..=4usize {
            let cut = FR_HEADER_BYTES + k * FR_SLOT_BYTES;
            assert_eq!(
                decode_journal(&bytes[..cut]),
                spans[..k].to_vec(),
                "cut {k}"
            );
        }
        // A mid-slot cut drops the torn slot.
        let cut = FR_HEADER_BYTES + 2 * FR_SLOT_BYTES + 37;
        assert_eq!(decode_journal(&bytes[..cut]), spans[..2].to_vec());
        // A flipped payload byte fails the CRC and ends the prefix.
        let mut corrupt = bytes.clone();
        corrupt[FR_HEADER_BYTES + FR_SLOT_BYTES + FR_SLOT_HEADER + 3] ^= 0x40;
        assert_eq!(decode_journal(&corrupt), spans[..1].to_vec());
        // Garbage headers recover nothing rather than failing.
        assert!(decode_journal(b"").is_empty());
        assert!(decode_journal(&bytes[1..]).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_spans_shed_annotations_then_drop() {
        let env = RealEnv::arc();
        let dir = tmp_dir("oversize");
        let (recorder, _) = FlightRecorder::open(Arc::clone(&env), &dir, 8, false).expect("open");
        let mut big = span(0);
        big.annotations = vec![("blob".to_string(), "x".repeat(2 * FR_SLOT_BYTES))];
        recorder.record(&big).expect("record oversized");
        assert_eq!(recorder.dropped(), 0);
        let mut hopeless = span(1);
        hopeless.name = "n".repeat(2 * FR_SLOT_BYTES);
        recorder.record(&hopeless).expect("record hopeless");
        assert_eq!(recorder.dropped(), 1);
        drop(recorder);
        let bytes = std::fs::read(dir.join(FR_FILE_NAME)).expect("read journal");
        let recovered = decode_journal(&bytes);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].span_id, big.span_id);
        assert!(recovered[0].annotations.is_empty(), "annotations shed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
