//! `cqfit-obs` — the observability spine of the cqfit stack.
//!
//! A std-only, dependency-free metrics registry designed for two masters at
//! once:
//!
//! * **Production hot paths.**  Counters, gauges, and histograms are plain
//!   atomics — recording a sample is a handful of `fetch_add`s with no
//!   allocation, no locking, and no formatting.  The group-commit append
//!   loop and the pipelined request path can afford to call them on every
//!   record.
//! * **The deterministic simulator.**  The registry itself never reads a
//!   clock.  Every timestamp and duration is passed in by the caller, who
//!   obtains it from the `cqfit-env` `Clock` seam.  Under `ManualClock`
//!   (fixed auto-tick) the recorded values are bit-for-bit reproducible
//!   across runs, so the sim harness can assert *exact* counter and
//!   histogram contents against its oracle.
//!
//! The pieces:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`.
//! * [`Gauge`] — instantaneous `AtomicI64` (connections, pipeline depth).
//! * [`Histogram`] — 64 log₂-scaled buckets plus exact count/sum/max;
//!   p50/p90/p99 are extracted from the bucket counts at snapshot time.
//! * [`Registry`] — a plain struct with one named field per metric.  No
//!   hash maps, no string interning: the set of metrics is closed at
//!   compile time, which is what keeps the hot path allocation-free.
//! * Bounded event and span rings ([`EventRecord`], [`SpanRecord`]) for
//!   structured tracing of rare transitions (rollback, poison, compaction)
//!   and per-request decode→dispatch→reply phase timestamps.
//! * [`Snapshot`] — a plain-data copy of everything, plus
//!   [`render_prometheus`] for text exposition.
//! * Causal tracing ([`TraceContext`], [`Tracer`], [`TraceSpan`]) with a
//!   bounded completed-span ring, a [`SlowTable`] of the slowest
//!   requests, a crash-surviving [`FlightRecorder`] journal, and
//!   Chrome-trace / waterfall exporters ([`render_chrome_trace`],
//!   [`render_waterfall`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod flight;
mod trace;

pub use export::{render_chrome_trace, render_waterfall};
pub use flight::{
    crc32, decode_journal, FlightRecorder, FR_DEFAULT_SLOTS, FR_FILE_NAME, FR_HEADER_BYTES,
    FR_MAGIC, FR_MAX_PAYLOAD, FR_SLOT_BYTES,
};
pub use trace::{
    OpenSpan, SlowTable, TraceContext, TraceSpan, Tracer, SLOW_TABLE_CAPACITY, TRACE_RING_CAPACITY,
};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log₂ buckets in a [`Histogram`].
///
/// Bucket `i` holds samples whose bit length is `i` — i.e. values in
/// `[2^(i-1), 2^i - 1]` — with bucket 0 reserved for exact zeros and the
/// final bucket absorbing everything above `2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Capacity of the structured-event ring buffer.
pub const EVENT_RING_CAPACITY: usize = 128;

/// Capacity of the request-span ring buffer.
pub const SPAN_RING_CAPACITY: usize = 128;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂-scaled histogram for latency-like samples
/// (nanoseconds by convention).
///
/// Recording is three relaxed `fetch_add`s and one `fetch_max` — no
/// allocation, no lock.  Quantiles are extracted from the bucket counts at
/// snapshot time; the reported quantile is the inclusive upper bound of
/// the bucket containing the target rank, clamped to the exact observed
/// maximum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a sample to its bucket index: bit length of the value, clamped to
/// the final bucket.  Zero lands in bucket 0.
#[inline]
fn bucket_index(value: u64) -> usize {
    let bits = (u64::BITS - value.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `index` (`2^index - 1`, saturating for
/// the final bucket).
#[inline]
fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the full bucket state out for quantile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Condensed summary (count/sum/max + p50/p90/p99) for wire exposure.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Extracts quantile `q` (in `[0, 1]`) as the inclusive upper bound of
    /// the bucket holding the target rank, clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Condenses the snapshot to count/sum/max + p50/p90/p99.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Condensed histogram view carried in snapshots and over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// A structured event: a rare, named transition worth tracing (rollback,
/// poison, compaction, reconnect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic timestamp in nanoseconds, drawn by the caller from the
    /// `cqfit-env` clock.
    pub at_ns: u64,
    /// Event kind, e.g. `"wal.rollback"`.
    pub kind: String,
    /// Free-form detail (workspace name, byte counts, error text).
    pub detail: String,
}

/// A completed request span: one protocol request's phase timestamps as it
/// moved decode → dispatch → reply through the server.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Protocol op kind, e.g. `"add_example"`.
    pub op: String,
    /// Target workspace, when the op addresses one.
    pub workspace: Option<String>,
    /// Client-assigned request id, when present.
    pub request_id: Option<u64>,
    /// Monotonic ns when the raw frame was taken off the wire.
    pub start_ns: u64,
    /// Monotonic ns when decoding finished.
    pub decoded_ns: u64,
    /// Monotonic ns when the engine returned (commit included — durable
    /// ops ack only after their WAL append).
    pub dispatched_ns: u64,
    /// Monotonic ns when the reply frame was written.
    pub replied_ns: u64,
}

#[derive(Debug)]
struct Ring<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T: Clone> Ring<T> {
    fn push(&self, item: T, capacity: usize) {
        let mut items = self.items.lock().unwrap_or_else(|e| e.into_inner());
        if items.len() == capacity {
            items.pop_front();
        }
        items.push_back(item);
    }

    fn to_vec(&self) -> Vec<T> {
        let items = self.items.lock().unwrap_or_else(|e| e.into_inner());
        items.iter().cloned().collect()
    }
}

/// The closed set of metrics for the whole stack.
///
/// One registry is shared per process side: the store creates one and the
/// engine adopts it (mirroring how the engine inherits the store's `Env`),
/// so store, cache, engine, and server metrics land in a single snapshot;
/// the client owns its own.  Fields a given holder never touches simply
/// stay zero.
#[derive(Debug, Default)]
pub struct Registry {
    // -- store / WAL --
    /// Full append latency: stage → ticket resolution.
    pub store_append_ns: Histogram,
    /// Time an append spent parked on the group-commit condvar.
    pub store_commit_wait_ns: Histogram,
    /// Leader flush latency: write + flush + fsync of one batch.
    pub store_fsync_ns: Histogram,
    /// Records per group-commit batch.
    pub store_batch_records: Histogram,
    /// Records durably acknowledged (ticket resolved Ok).
    pub store_appends_acked: Counter,
    /// Appends that resolved with a commit error.
    pub store_append_errors: Counter,
    /// Successful post-failure rollbacks (`set_len` truncations).
    pub store_rollbacks: Counter,
    /// Rollback failures that poisoned a log.
    pub store_poisons: Counter,
    /// Snapshot compactions performed.
    pub store_compactions: Counter,
    /// Bytes reclaimed by compaction.
    pub store_bytes_compacted: Counter,

    // -- engine --
    /// Requests handled (including batch members).
    pub engine_requests: Counter,
    /// Per-op fitting-computation latency (memo hits record nothing).
    pub engine_fit_ns: Histogram,
    /// Identified mutations answered from the idempotency memo.
    pub engine_memo_replays: Counter,
    /// Homomorphism-cache hits.
    pub hom_hits: Counter,
    /// Homomorphism-cache misses.
    pub hom_misses: Counter,
    /// Core-cache hits.
    pub core_hits: Counter,
    /// Core-cache misses.
    pub core_misses: Counter,

    // -- server --
    /// Live connections being served.
    pub server_connections: Gauge,
    /// Requests in flight in the pipeline window right now.
    pub server_pipeline_depth: Gauge,
    /// Distribution of dispatched batch sizes (pipelined reads take >1).
    pub server_batch_depth: Histogram,
    /// Wire-to-wire request latency (decode → reply, per batch member).
    pub server_request_ns: Histogram,

    // -- client --
    /// Calls retried after a transport error.
    pub client_retries: Counter,
    /// Reconnects performed after losing an established connection.
    pub client_reconnects: Counter,
    /// Backoff sleeps taken before a retry.
    pub client_backoff_sleeps: Counter,

    // -- tracing --
    /// The slow-request table: top-K completed request spans by
    /// duration, threshold-gated (see [`SlowTable`]).
    pub slow: SlowTable,

    events: Ring<EventRecord>,
    spans: Ring<SpanRecord>,
    traces: Ring<TraceSpan>,
}

impl Registry {
    /// Creates a registry with every metric at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a structured event to the bounded ring (oldest dropped).
    /// This takes a lock and allocates — rare-path only.
    pub fn event(&self, at_ns: u64, kind: &str, detail: impl Into<String>) {
        self.events.push(
            EventRecord {
                at_ns,
                kind: kind.to_string(),
                detail: detail.into(),
            },
            EVENT_RING_CAPACITY,
        );
    }

    /// Appends a completed request span to the bounded ring.
    pub fn span(&self, span: SpanRecord) {
        self.spans.push(span, SPAN_RING_CAPACITY);
    }

    /// Appends a completed trace span to the bounded trace ring.
    /// Normally called through [`OpenSpan::finish`], not directly.
    pub fn trace_span(&self, span: TraceSpan) {
        self.traces.push(span, TRACE_RING_CAPACITY);
    }

    /// The current contents of the trace ring, oldest first.  Kept out
    /// of [`Snapshot`] (and therefore off the `metrics` wire op): trace
    /// dumps have their own protocol op with different volume and
    /// retention than metrics scrapes.
    pub fn traces(&self) -> Vec<TraceSpan> {
        self.traces.to_vec()
    }

    /// Copies every metric into a plain-data [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counter = |name: &str, c: &Counter| (name.to_string(), c.get());
        let gauge = |name: &str, g: &Gauge| (name.to_string(), g.get());
        let histogram = |name: &str, h: &Histogram| (name.to_string(), h.summary());
        Snapshot {
            counters: vec![
                counter("store_appends_acked", &self.store_appends_acked),
                counter("store_append_errors", &self.store_append_errors),
                counter("store_rollbacks", &self.store_rollbacks),
                counter("store_poisons", &self.store_poisons),
                counter("store_compactions", &self.store_compactions),
                counter("store_bytes_compacted", &self.store_bytes_compacted),
                counter("engine_requests", &self.engine_requests),
                counter("engine_memo_replays", &self.engine_memo_replays),
                counter("hom_hits", &self.hom_hits),
                counter("hom_misses", &self.hom_misses),
                counter("core_hits", &self.core_hits),
                counter("core_misses", &self.core_misses),
                counter("client_retries", &self.client_retries),
                counter("client_reconnects", &self.client_reconnects),
                counter("client_backoff_sleeps", &self.client_backoff_sleeps),
            ],
            gauges: vec![
                gauge("server_connections", &self.server_connections),
                gauge("server_pipeline_depth", &self.server_pipeline_depth),
            ],
            histograms: vec![
                histogram("store_append_ns", &self.store_append_ns),
                histogram("store_commit_wait_ns", &self.store_commit_wait_ns),
                histogram("store_fsync_ns", &self.store_fsync_ns),
                histogram("store_batch_records", &self.store_batch_records),
                histogram("engine_fit_ns", &self.engine_fit_ns),
                histogram("server_batch_depth", &self.server_batch_depth),
                histogram("server_request_ns", &self.server_request_ns),
            ],
            events: self.events.to_vec(),
            spans: self.spans.to_vec(),
        }
    }
}

/// A plain-data copy of a [`Registry`] at one instant: name/value lists
/// for counters and gauges, condensed summaries for histograms, and the
/// current contents of the event and span rings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, in registry order.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, in registry order.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Bounded structured-event ring contents (oldest first).
    pub events: Vec<EventRecord>,
    /// Bounded request-span ring contents (oldest first).
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Looks up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a gauge by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// `# HELP` text for a series: the metric name with the word breaks
/// spelled out (the closed metric set carries its real documentation as
/// rustdoc on [`Registry`]'s fields).
fn help_text(name: &str) -> String {
    name.replace('_', " ")
}

/// Renders a registry in the Prometheus text exposition format
/// (version 0.0.4).  Counters and gauges become single samples;
/// histograms are real `histogram`-typed families with **cumulative
/// `_bucket` series** carrying `le` labels at the log₂ bucket upper
/// bounds (empty buckets elided, `+Inf` always present), plus `_sum` and
/// `_count`, and a companion `_max` gauge for the exact observed
/// maximum.  Every family gets `# HELP` and `# TYPE` lines, and every
/// series is prefixed `cqfit_`.
///
/// Takes the registry rather than a [`Snapshot`] because bucket-level
/// detail is deliberately kept off the wire snapshot — the scrape
/// endpoint is in-process and reads the live atomics.
pub fn render_prometheus(registry: &Registry) -> String {
    let counters: [(&str, &Counter); 15] = [
        ("store_appends_acked", &registry.store_appends_acked),
        ("store_append_errors", &registry.store_append_errors),
        ("store_rollbacks", &registry.store_rollbacks),
        ("store_poisons", &registry.store_poisons),
        ("store_compactions", &registry.store_compactions),
        ("store_bytes_compacted", &registry.store_bytes_compacted),
        ("engine_requests", &registry.engine_requests),
        ("engine_memo_replays", &registry.engine_memo_replays),
        ("hom_hits", &registry.hom_hits),
        ("hom_misses", &registry.hom_misses),
        ("core_hits", &registry.core_hits),
        ("core_misses", &registry.core_misses),
        ("client_retries", &registry.client_retries),
        ("client_reconnects", &registry.client_reconnects),
        ("client_backoff_sleeps", &registry.client_backoff_sleeps),
    ];
    let gauges: [(&str, &Gauge); 2] = [
        ("server_connections", &registry.server_connections),
        ("server_pipeline_depth", &registry.server_pipeline_depth),
    ];
    let histograms: [(&str, &Histogram); 7] = [
        ("store_append_ns", &registry.store_append_ns),
        ("store_commit_wait_ns", &registry.store_commit_wait_ns),
        ("store_fsync_ns", &registry.store_fsync_ns),
        ("store_batch_records", &registry.store_batch_records),
        ("engine_fit_ns", &registry.engine_fit_ns),
        ("server_batch_depth", &registry.server_batch_depth),
        ("server_request_ns", &registry.server_request_ns),
    ];

    let mut out = String::new();
    for (name, counter) in counters {
        out.push_str(&format!(
            "# HELP cqfit_{name} {}\n# TYPE cqfit_{name} counter\ncqfit_{name} {}\n",
            help_text(name),
            counter.get()
        ));
    }
    for (name, gauge) in gauges {
        out.push_str(&format!(
            "# HELP cqfit_{name} {}\n# TYPE cqfit_{name} gauge\ncqfit_{name} {}\n",
            help_text(name),
            gauge.get()
        ));
    }
    for (name, histogram) in histograms {
        let snap = histogram.snapshot();
        out.push_str(&format!(
            "# HELP cqfit_{name} {}\n# TYPE cqfit_{name} histogram\n",
            help_text(name)
        ));
        let mut cumulative = 0u64;
        for (index, &bucket) in snap.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            cumulative += bucket;
            out.push_str(&format!(
                "cqfit_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(index)
            ));
        }
        out.push_str(&format!(
            "cqfit_{name}_bucket{{le=\"+Inf\"}} {}\ncqfit_{name}_sum {}\ncqfit_{name}_count {}\n",
            snap.count, snap.sum, snap.count
        ));
        out.push_str(&format!(
            "# HELP cqfit_{name}_max {} max\n# TYPE cqfit_{name}_max gauge\ncqfit_{name}_max {}\n",
            help_text(name),
            snap.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::{Clock, ManualClock};
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket i holds values with bit length i: [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);

        let h = Histogram::new();
        h.record(1023);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[11], 1);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 2047);
        assert_eq!(snap.max, 1024);
    }

    #[test]
    fn quantiles_come_from_bucket_ranks_clamped_to_max() {
        let h = Histogram::new();
        // 90 cheap samples in bucket 7 ([64, 127]), 10 slow in bucket 14.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(9000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.50), 127);
        assert_eq!(snap.quantile(0.90), 127);
        // Rank 99 falls in the slow bucket; its bound clamps to the max.
        assert_eq!(snap.quantile(0.99), 9000);
        assert_eq!(snap.quantile(1.0), 9000);
        assert_eq!(snap.max, 9000);

        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.summary(), HistogramSummary::default());
    }

    #[test]
    fn manual_clock_driven_latencies_are_deterministic() {
        // The registry never reads a clock: the caller times operations
        // through the env seam.  Under ManualClock every monotonic()
        // reading auto-ticks by exactly the configured step, so the
        // recorded durations — and therefore the whole snapshot — are
        // reproducible bit for bit.
        let run = || {
            let clock = ManualClock::with_auto_tick(std::time::Duration::from_micros(3));
            let h = Histogram::new();
            for _ in 0..5 {
                let begun = clock.monotonic();
                let ended = clock.monotonic();
                h.record((ended - begun).as_nanos() as u64);
            }
            h.snapshot()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert_eq!(first.count, 5);
        // Each sample is exactly one 3µs auto-tick.
        assert_eq!(first.sum, 5 * 3_000);
        assert_eq!(first.max, 3_000);
        assert_eq!(first.quantile(0.5), bucket_upper_bound(12).min(3_000));
    }

    #[test]
    fn concurrent_writers_lose_no_samples() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                        c.inc();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8_000);
        assert_eq!(c.get(), 8_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8_000);
        // Exact sum: sum over t of sum over i of (1000 t + i).
        let expected: u64 = (0..8u64)
            .map(|t| 1_000 * (1_000 * t) + (0..1_000).sum::<u64>())
            .sum();
        assert_eq!(snap.sum, expected);
    }

    #[test]
    fn gauge_tracks_ups_and_downs() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn event_and_span_rings_are_bounded() {
        let registry = Registry::new();
        for i in 0..(EVENT_RING_CAPACITY + 10) {
            registry.event(i as u64, "wal.rollback", format!("event {i}"));
        }
        for i in 0..(SPAN_RING_CAPACITY + 5) {
            registry.span(SpanRecord {
                op: format!("op {i}"),
                ..SpanRecord::default()
            });
        }
        let snap = registry.snapshot();
        assert_eq!(snap.events.len(), EVENT_RING_CAPACITY);
        assert_eq!(snap.events[0].detail, "event 10");
        assert_eq!(snap.spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(snap.spans[0].op, "op 5");
    }

    #[test]
    fn snapshot_lookups_and_prometheus_rendering() {
        let registry = Registry::new();
        registry.store_appends_acked.add(42);
        registry.server_connections.set(3);
        registry.store_append_ns.record(2_500);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store_appends_acked"), 42);
        assert_eq!(snap.counter("no_such_counter"), 0);
        assert_eq!(snap.gauge("server_connections"), 3);
        assert_eq!(snap.histogram("store_append_ns").unwrap().count, 1);

        let text = render_prometheus(&registry);
        assert!(text.contains("# TYPE cqfit_store_appends_acked counter"));
        assert!(text.contains("cqfit_store_appends_acked 42"));
        assert!(text.contains("cqfit_server_connections 3"));
        assert!(text.contains("cqfit_store_append_ns_count 1"));
        // 2500 has bit length 12: bucket upper bound 4095, cumulative 1.
        assert!(text.contains("cqfit_store_append_ns_bucket{le=\"4095\"} 1"));
        assert!(text.contains("cqfit_store_append_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("# TYPE cqfit_store_append_ns histogram"));
        // Every non-comment line is "name value" — parseable exposition.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name.starts_with("cqfit_"));
            let value = parts.next().unwrap();
            assert!(
                value.parse::<i64>().is_ok() || value.parse::<u64>().is_ok(),
                "{line}"
            );
            assert!(parts.next().is_none());
        }
    }

    #[test]
    fn exposition_declares_types_and_helps_and_cumulates_buckets() {
        let registry = Registry::new();
        // Samples across several buckets, to exercise cumulation.
        for value in [0, 1, 100, 100, 2_500, 9_000, 9_001] {
            registry.server_request_ns.record(value);
        }
        registry.engine_requests.add(7);
        let text = render_prometheus(&registry);

        // Collect TYPE/HELP declarations per family.
        let mut types = std::collections::HashMap::new();
        let mut helps = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap().to_string();
                assert!(parts.next().is_none(), "TYPE line has extra tokens: {line}");
                assert!(
                    matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                    "bad TYPE kind: {line}"
                );
                assert!(
                    !types.contains_key(&family),
                    "family declared twice: {family}"
                );
                types.insert(family, kind);
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                helps.insert(rest.split(' ').next().unwrap().to_string());
            }
        }
        // Every declared family has HELP text too.
        for family in types.keys() {
            assert!(helps.contains(family), "missing HELP for {family}");
        }

        // Every sample line belongs to a declared family of the right
        // kind, stripping histogram suffixes and labels.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.split(' ').next().unwrap();
            let series = series.split('{').next().unwrap();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| series.strip_suffix(suffix))
                .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                .unwrap_or(series);
            assert!(types.contains_key(family), "undeclared series: {line}");
        }

        // Bucket series are cumulative, non-decreasing, and end at the
        // sample count on the +Inf bucket.
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter(|l| l.starts_with("cqfit_server_request_ns_bucket{le="))
            .map(|l| {
                let mut parts = l.split(' ');
                (
                    parts.next().unwrap().to_string(),
                    parts.next().unwrap().parse::<u64>().unwrap(),
                )
            })
            .collect();
        assert!(buckets.len() >= 4, "expected several buckets: {buckets:?}");
        assert!(
            buckets.windows(2).all(|w| w[0].1 <= w[1].1),
            "buckets must cumulate: {buckets:?}"
        );
        let last = buckets.last().unwrap();
        assert!(last.0.contains("le=\"+Inf\""));
        assert_eq!(last.1, 7);
        // Spot-check one boundary: two samples of 100 land in the
        // [64, 127] bucket; with 0 and 1 below, the cumulative at
        // le="127" is 4.
        assert!(text.contains("cqfit_server_request_ns_bucket{le=\"127\"} 4"));
    }
}
