//! Causal tracing: trace contexts, a span-opening [`Tracer`] handle, and
//! the server-side slow-request table.
//!
//! A **trace** is a tree of spans sharing one 128-bit `trace_id`; each
//! span carries its own 64-bit `span_id` and its parent's (`0` for a
//! root).  Contexts propagate over the protocol's optional `trace` field,
//! so a retried request's client attempt, its server dispatch, its
//! group-commit wait, and its WAL fsync all land in *one* tree.
//!
//! Determinism contract: ids are drawn from [`cqfit_env::Env::rng_u64`]
//! and timestamps from the [`cqfit_env::Clock`] seam, never from ambient
//! OS sources — under the simulator's seeded rng and `ManualClock`,
//! whole span trees are reproducible bit for bit.

use std::sync::{Arc, Mutex};

use cqfit_env::Env;
use serde::json::{JsonError, Value as Json};
use serde::{Deserialize, Serialize};

use crate::flight::FlightRecorder;
use crate::Registry;

/// Capacity of the registry's completed-trace-span ring.
pub const TRACE_RING_CAPACITY: usize = 1024;

/// Maximum entries retained by a [`SlowTable`] (top-K by duration).
pub const SLOW_TABLE_CAPACITY: usize = 32;

/// The propagated identity of a span: which trace it belongs to, which
/// span it is, and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// 128-bit trace identifier shared by every span in the tree.
    pub trace_id: u128,
    /// This span's identifier (nonzero).
    pub span_id: u64,
    /// The parent span's identifier; `0` marks a trace root.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The trace id as the 32-digit lower-hex wire form.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The span id as the 16-digit lower-hex wire form.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }

    /// Parses a 32-digit hex trace id (as printed by
    /// [`TraceContext::trace_id_hex`]).
    pub fn parse_trace_id(s: &str) -> Option<u128> {
        (!s.is_empty() && s.len() <= 32)
            .then(|| u128::from_str_radix(s, 16).ok())
            .flatten()
    }

    /// Parses a 16-digit hex span id.
    pub fn parse_span_id(s: &str) -> Option<u64> {
        (!s.is_empty() && s.len() <= 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
    }
}

impl Serialize for TraceContext {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::str(self.trace_id_hex())),
            ("span_id", Json::str(self.span_id_hex())),
            (
                "parent_span_id",
                Json::str(format!("{:016x}", self.parent_span_id)),
            ),
        ])
    }
}

impl Deserialize for TraceContext {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let hex = |key: &str| -> Result<&str, JsonError> {
            v.req(key)?
                .as_str()
                .ok_or_else(|| JsonError::semantic(format!("trace field `{key}` must be a string")))
        };
        let trace_id = TraceContext::parse_trace_id(hex("trace_id")?)
            .ok_or_else(|| JsonError::semantic("invalid trace_id hex"))?;
        let span_id = TraceContext::parse_span_id(hex("span_id")?)
            .ok_or_else(|| JsonError::semantic("invalid span_id hex"))?;
        let parent_span_id = TraceContext::parse_span_id(hex("parent_span_id")?)
            .ok_or_else(|| JsonError::semantic("invalid parent_span_id hex"))?;
        Ok(TraceContext {
            trace_id,
            span_id,
            parent_span_id,
        })
    }
}

/// A completed, annotated span: the unit persisted to the trace ring, the
/// flight recorder, and the wire (`trace_dump` / `slow_requests`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpan {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (nonzero).
    pub span_id: u64,
    /// Parent span id; `0` for trace roots.
    pub parent_span_id: u64,
    /// Span name, e.g. `"server.request"` or `"store.fsync"`.
    pub name: String,
    /// Monotonic start, nanoseconds (env clock).
    pub start_ns: u64,
    /// Monotonic end, nanoseconds (env clock).
    pub end_ns: u64,
    /// Ordered key/value annotations (workspace, op, batch, retry, …).
    pub annotations: Vec<(String, String)>,
}

impl TraceSpan {
    /// Span duration in nanoseconds (0 when the clock stood still).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up an annotation value by key.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// This span's identity as a [`TraceContext`] — what a child span's
    /// context is derived from.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent_span_id,
        }
    }
}

impl Serialize for TraceSpan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::str(format!("{:032x}", self.trace_id))),
            ("span_id", Json::str(format!("{:016x}", self.span_id))),
            (
                "parent_span_id",
                Json::str(format!("{:016x}", self.parent_span_id)),
            ),
            ("name", Json::str(self.name.clone())),
            ("start_ns", self.start_ns.to_json()),
            ("end_ns", self.end_ns.to_json()),
            (
                "annotations",
                Json::Arr(
                    self.annotations
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), Json::str(v.clone())]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for TraceSpan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let ctx = TraceContext::from_json(v)?;
        let name = v
            .req("name")?
            .as_str()
            .ok_or_else(|| JsonError::semantic("span `name` must be a string"))?
            .to_string();
        let start_ns = u64::from_json(v.req("start_ns")?)?;
        let end_ns = u64::from_json(v.req("end_ns")?)?;
        let mut annotations = Vec::new();
        for pair in v
            .req("annotations")?
            .as_arr()
            .ok_or_else(|| JsonError::semantic("span `annotations` must be an array"))?
        {
            let kv = pair
                .as_arr()
                .filter(|kv| kv.len() == 2)
                .ok_or_else(|| JsonError::semantic("annotation must be a [key, value] pair"))?;
            match (kv[0].as_str(), kv[1].as_str()) {
                (Some(k), Some(val)) => annotations.push((k.to_string(), val.to_string())),
                _ => return Err(JsonError::semantic("annotation key/value must be strings")),
            }
        }
        Ok(TraceSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name,
            start_ns,
            end_ns,
            annotations,
        })
    }
}

/// The handle that mints trace contexts and opens/closes spans against a
/// [`Registry`] (and, when attached, a [`FlightRecorder`]).
///
/// Ids come from the environment's rng, timestamps from its clock — the
/// tracer itself holds no time or randomness state.
#[derive(Debug)]
pub struct Tracer {
    env: Arc<dyn Env>,
    registry: Arc<Registry>,
    flight: Mutex<Option<Arc<FlightRecorder>>>,
}

impl Tracer {
    /// A tracer recording into `registry`, drawing ids and timestamps
    /// from `env`.
    pub fn new(env: Arc<dyn Env>, registry: Arc<Registry>) -> Tracer {
        Tracer {
            env,
            registry,
            flight: Mutex::new(None),
        }
    }

    /// The registry completed spans are pushed to.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Attaches a flight recorder: every span committed from now on is
    /// also journaled durably.
    pub fn attach_flight_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.flight.lock().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    }

    fn nonzero_id(&self) -> u64 {
        loop {
            let id = self.env.rng_u64();
            if id != 0 {
                return id;
            }
        }
    }

    /// Mints a fresh root context: new trace id, new span id, no parent.
    pub fn root_context(&self) -> TraceContext {
        let trace_id = loop {
            let id = (u128::from(self.env.rng_u64()) << 64) | u128::from(self.env.rng_u64());
            if id != 0 {
                break id;
            }
        };
        TraceContext {
            trace_id,
            span_id: self.nonzero_id(),
            parent_span_id: 0,
        }
    }

    /// Mints a child context under `parent`: same trace, new span id.
    pub fn child_context(&self, parent: &TraceContext) -> TraceContext {
        TraceContext {
            trace_id: parent.trace_id,
            span_id: self.nonzero_id(),
            parent_span_id: parent.span_id,
        }
    }

    /// Current monotonic time in nanoseconds, from the env clock.
    pub fn now_ns(&self) -> u64 {
        self.env.clock().monotonic().as_nanos() as u64
    }

    /// Opens a span for `ctx` starting now.
    pub fn start(&self, ctx: TraceContext, name: &'static str) -> OpenSpan {
        let start_ns = self.now_ns();
        self.start_at(ctx, name, start_ns)
    }

    /// Opens a span for `ctx` with a caller-supplied start timestamp
    /// (e.g. the instant a frame came off the wire, read before decode).
    pub fn start_at(&self, ctx: TraceContext, name: &'static str, start_ns: u64) -> OpenSpan {
        OpenSpan {
            ctx,
            name,
            start_ns,
            annotations: Vec::new(),
        }
    }

    /// Records an error event: into the registry's event ring and, when a
    /// flight recorder is attached, durably as a zero-trace span named
    /// `event:{kind}`.
    pub fn error_event(&self, kind: &str, detail: &str) {
        let at_ns = self.now_ns();
        self.registry.event(at_ns, kind, detail);
        let flight = self.flight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(recorder) = flight.as_ref() {
            let _ = recorder.record(&TraceSpan {
                trace_id: 0,
                span_id: 0,
                parent_span_id: 0,
                name: format!("event:{kind}"),
                start_ns: at_ns,
                end_ns: at_ns,
                annotations: vec![("detail".to_string(), detail.to_string())],
            });
        }
    }

    fn commit(&self, span: TraceSpan) -> TraceSpan {
        let flight = self.flight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(recorder) = flight.as_ref() {
            let _ = recorder.record(&span);
        }
        drop(flight);
        self.registry.trace_span(span.clone());
        span
    }
}

/// A span that has been opened but not yet finished.  Accumulates
/// annotations; committing happens in [`OpenSpan::finish`] /
/// [`OpenSpan::finish_at`].
#[derive(Debug)]
pub struct OpenSpan {
    ctx: TraceContext,
    name: &'static str,
    start_ns: u64,
    annotations: Vec<(String, String)>,
}

impl OpenSpan {
    /// This span's context — pass it down as the parent of child spans.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// The span's start timestamp.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Adds a key/value annotation (insertion order preserved).
    pub fn annotate(&mut self, key: &'static str, value: impl Into<String>) {
        self.annotations.push((key.to_string(), value.into()));
    }

    /// Closes the span now and commits it, returning the completed span.
    pub fn finish(self, tracer: &Tracer) -> TraceSpan {
        let end_ns = tracer.now_ns();
        self.finish_at(tracer, end_ns)
    }

    /// Closes the span at a caller-supplied end timestamp and commits it.
    pub fn finish_at(self, tracer: &Tracer, end_ns: u64) -> TraceSpan {
        tracer.commit(TraceSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.ctx.parent_span_id,
            name: self.name.to_string(),
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
            annotations: self.annotations,
        })
    }
}

/// The server-side slow-request table: the top-K completed request spans
/// by duration, gated by a settable threshold.  Backs the
/// `slow_requests` protocol op and `cqfit-session slow`.
#[derive(Debug, Default)]
pub struct SlowTable {
    inner: Mutex<SlowInner>,
}

#[derive(Debug, Default)]
struct SlowInner {
    threshold_ns: u64,
    spans: Vec<TraceSpan>,
}

impl SlowTable {
    /// Sets the minimum duration a span must reach to be retained.
    pub fn set_threshold_ns(&self, ns: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .threshold_ns = ns;
    }

    /// Offers a completed span; retained if it meets the threshold and
    /// ranks in the top [`SLOW_TABLE_CAPACITY`] by duration.
    pub fn record(&self, span: &TraceSpan) {
        let duration = span.duration_ns();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if duration < inner.threshold_ns {
            return;
        }
        let at = inner.spans.partition_point(|s| s.duration_ns() >= duration);
        if at >= SLOW_TABLE_CAPACITY {
            return;
        }
        inner.spans.insert(at, span.clone());
        inner.spans.truncate(SLOW_TABLE_CAPACITY);
    }

    /// The current table, slowest first.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::{ManualClock, PartsEnv, RealEnv};
    use std::time::Duration;

    #[test]
    fn contexts_chain_and_round_trip() {
        let env: Arc<dyn Env> = Arc::new(PartsEnv::new(
            Arc::new(RealEnv::new()),
            Arc::new(ManualClock::new()),
            7,
        ));
        let tracer = Tracer::new(env, Arc::new(Registry::new()));
        let root = tracer.root_context();
        assert_ne!(root.trace_id, 0);
        assert_ne!(root.span_id, 0);
        assert_eq!(root.parent_span_id, 0);
        let child = tracer.child_context(&root);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);

        let text = serde::to_string(&child);
        let back: TraceContext = serde::from_str(&text).expect("context round trip");
        assert_eq!(back, child);
        assert_eq!(
            TraceContext::parse_trace_id(&root.trace_id_hex()),
            Some(root.trace_id)
        );
        assert_eq!(TraceContext::parse_trace_id("zz"), None);
        assert_eq!(TraceContext::parse_trace_id(""), None);
    }

    #[test]
    fn spans_record_into_the_registry_ring() {
        let env: Arc<dyn Env> = Arc::new(PartsEnv::new(
            Arc::new(RealEnv::new()),
            Arc::new(ManualClock::with_auto_tick(Duration::from_micros(5))),
            11,
        ));
        let registry = Arc::new(Registry::new());
        let tracer = Tracer::new(env, Arc::clone(&registry));
        let root = tracer.root_context();
        let mut span = tracer.start(root, "server.request");
        span.annotate("op", "ping");
        let mut child = tracer.start(tracer.child_context(&root), "engine.handle");
        child.annotate("workspace", "w");
        let child_done = child.finish(&tracer);
        let root_done = span.finish(&tracer);
        assert_eq!(child_done.parent_span_id, root_done.span_id);
        assert!(child_done.start_ns >= root_done.start_ns);
        assert!(child_done.end_ns <= root_done.end_ns);
        assert_eq!(root_done.annotation("op"), Some("ping"));

        let traces = registry.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name, "engine.handle");
        assert_eq!(traces[1].name, "server.request");

        let text = serde::to_string(&root_done);
        let back: TraceSpan = serde::from_str(&text).expect("span round trip");
        assert_eq!(back, root_done);
    }

    #[test]
    fn slow_table_keeps_top_k_above_threshold() {
        let table = SlowTable::default();
        table.set_threshold_ns(1_000);
        let span = |id: u64, dur: u64| TraceSpan {
            trace_id: 1,
            span_id: id,
            parent_span_id: 0,
            name: "server.request".to_string(),
            start_ns: 0,
            end_ns: dur,
            annotations: Vec::new(),
        };
        table.record(&span(1, 500)); // below threshold
        for i in 0..(SLOW_TABLE_CAPACITY as u64 + 8) {
            table.record(&span(100 + i, 2_000 + i));
        }
        let snap = table.snapshot();
        assert_eq!(snap.len(), SLOW_TABLE_CAPACITY);
        // Slowest first, and the slowest overall survived the cap.
        assert_eq!(
            snap[0].duration_ns(),
            2_000 + SLOW_TABLE_CAPACITY as u64 + 7
        );
        assert!(snap
            .windows(2)
            .all(|w| w[0].duration_ns() >= w[1].duration_ns()));
        assert!(snap.iter().all(|s| s.duration_ns() >= 1_000 + 1_000));
    }
}
