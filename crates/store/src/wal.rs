//! Append-only log files: framing, fsync discipline, torn-tail
//! truncation, and atomic snapshot rewrites.
//!
//! One file per workspace, named by a percent-style encoding of the
//! workspace name (so arbitrary names cannot escape the data directory or
//! collide), extension `.wal`.  Appends go through a single handle opened
//! in append mode; with `fsync` enabled every append is `sync_data`'d
//! before it is acknowledged, which is what bounds the loss window of a
//! `kill -9` to the single unacknowledged request.  Compaction rewrites
//! the log as one snapshot record via the classic temp-file + rename +
//! directory-sync sequence, so a crash mid-compaction leaves either the
//! old log or the new one, never a mix.
//!
//! Every filesystem call goes through [`cqfit_env::Fs`], so the same code
//! runs against the real filesystem in production and against
//! `cqfit-sim`'s crash-injecting `SimFs` in the simulation harness.

use crate::record::{decode_record, encode_record, LogRecord};
use crate::StoreError;
use cqfit_env::{Env, Fs, FsFile, OpenMode};
use cqfit_obs::{Registry, TraceContext, Tracer};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Extension of write-ahead log files.
pub(crate) const WAL_EXT: &str = "wal";

/// Encodes a workspace name as a filesystem-safe file stem: ASCII
/// alphanumerics, `-` and `_` pass through, every other byte becomes
/// `%XX`.  The encoding is injective, so distinct workspace names never
/// share a log file.
pub(crate) fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Decodes a file stem produced by [`encode_name`]; `None` for stems this
/// store did not write (stray files in the data directory are skipped, not
/// destroyed).
///
/// Only the *canonical* encoding is accepted: a stem using lowercase hex
/// or escaping a byte that did not need escaping decodes to a name whose
/// re-encoding differs, and is rejected — otherwise two distinct on-disk
/// stems (e.g. `a` and `%61`) would collapse onto one workspace name and
/// recovery would silently pair one file's state with another's handle.
pub(crate) fn decode_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = stem.get(i + 1..i + 3)?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    let name = String::from_utf8(out).ok()?;
    (encode_name(&name) == stem).then_some(name)
}

/// The shared outcome of one group-committed batch: every appender whose
/// record rode the batch reads the same result once the covering sync (or
/// its failure) has happened.  On success the ticket carries the batch's
/// per-log sequence number, which is what links every member's
/// `store.append` trace span to the leader's `store.fsync` span.
type CommitTicket = OnceLock<Result<u64, CommitError>>;

/// A clonable snapshot of the I/O error that failed a batch, handed to
/// every follower of the batch (`std::io::Error` itself is not `Clone`).
#[derive(Debug, Clone)]
struct CommitError {
    kind: std::io::ErrorKind,
    message: String,
}

impl CommitError {
    fn of(e: &std::io::Error) -> CommitError {
        CommitError {
            kind: e.kind(),
            message: e.to_string(),
        }
    }

    fn into_store_error(self) -> StoreError {
        StoreError::Io(std::io::Error::new(self.kind, self.message))
    }
}

/// The mutable half of a log handle, behind [`WalFile`]'s mutex.
#[derive(Debug)]
struct WalInner {
    /// The open append handle; `None` exactly while a commit leader is
    /// writing a batch outside the lock (the leader owns it meanwhile).
    file: Option<Box<dyn FsFile>>,
    /// Records durably in the file (staged records do not count until
    /// their batch commits).
    records: u64,
    /// Records appended since the most recent snapshot record (compaction
    /// budget accounting; the snapshot itself does not count).
    since_snapshot: u64,
    /// Bytes durably in the file — the rollback target of a failed batch.
    bytes: u64,
    /// Encoded lines staged for the next batch, in stage order.
    staged: String,
    /// Per staged record: is it a snapshot record (for the
    /// `since_snapshot` accounting once the batch commits)?
    staged_meta: Vec<bool>,
    /// The ticket of the currently open (staged, not yet taken) batch;
    /// `None` when nothing is staged.
    batch: Option<Arc<CommitTicket>>,
    /// Sequence number the next committed batch will carry (trace
    /// correlation between append spans and their covering fsync).
    next_batch_seq: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// tail no longer matches the counters, so further appends could land
    /// *behind* torn bytes and be silently discarded at recovery.  A
    /// poisoned log rejects every operation until a restart replays and
    /// truncates it.
    poisoned: bool,
}

impl WalInner {
    fn check_poisoned(&self, path: &Path) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Corrupt(poison_message(path)));
        }
        Ok(())
    }
}

fn poison_message(path: &Path) -> String {
    format!(
        "log {} is poisoned by an earlier unrecoverable I/O failure; \
         restart to replay and truncate it",
        path.display()
    )
}

/// The open append handle of one workspace's log, with its record and byte
/// counters and the group-commit queue.
///
/// ## Group commit
///
/// Concurrent appends to one log are batched into a single
/// `write_all` + `sync_data` pair: each appender *stages* its encoded
/// line under the log mutex and joins the open batch's commit ticket.
/// The first appender that finds the file handle free becomes the
/// batch's **leader**: it takes every staged line, releases the lock,
/// writes the whole batch with one `write_all`, syncs once, re-takes the
/// lock, advances the counters, and resolves the ticket.  **Followers**
/// block on the ticket and are acknowledged only after the covering sync
/// — durability semantics per record are exactly those of the old
/// fsync-per-append discipline, at one fsync per batch.  Records staged
/// while a leader is writing form the next batch; their stagers wait,
/// and the first to wake after the leader publishes leads that batch.
///
/// A sequential caller degrades to batches of one with the identical
/// write/flush/sync call sequence as before, which keeps the simulated
/// filesystem's op-count coordinates (crash points, write/sync faults)
/// stable.
#[derive(Debug)]
pub(crate) struct WalFile {
    env: Arc<dyn Env>,
    path: PathBuf,
    fsync: bool,
    /// Shared metrics registry (the store's); append/commit-wait/fsync
    /// latencies, batch sizes, ack counts, and rollback/poison events are
    /// recorded here.  Timestamps come from `env.clock()` only, so under
    /// `ManualClock` the recorded values are deterministic.
    registry: Arc<Registry>,
    inner: Mutex<WalInner>,
    /// Signalled whenever a batch resolves or the file handle returns.
    commit_cv: Condvar,
}

impl WalFile {
    /// Creates a fresh (truncated) log file.
    pub(crate) fn create(
        env: Arc<dyn Env>,
        path: PathBuf,
        fsync: bool,
        registry: Arc<Registry>,
    ) -> Result<Self, StoreError> {
        // Truncate any stale file first, then take the real handle in
        // O_APPEND mode — every write must land at EOF *by mode*, not by
        // cursor position: the append-failure rollback truncates with
        // `set_len`, which does not move a write-mode cursor, and a
        // stale cursor past EOF would make the next acknowledged append
        // write behind a NUL hole that recovery then truncates away.
        drop(env.fs().open(&path, OpenMode::CreateTruncate)?);
        let file = env.fs().open(&path, OpenMode::Append)?;
        if fsync {
            env.fs().sync_parent_dir(&path)?;
        }
        Ok(WalFile::with_handle(
            env, path, fsync, registry, file, 0, 0, 0,
        ))
    }

    /// Opens an existing log for appending, with counters supplied by the
    /// replay that just scanned it.
    pub(crate) fn open_append(
        env: Arc<dyn Env>,
        path: PathBuf,
        fsync: bool,
        registry: Arc<Registry>,
        records: u64,
        since_snapshot: u64,
        bytes: u64,
    ) -> Result<Self, StoreError> {
        let file = env.fs().open(&path, OpenMode::Append)?;
        Ok(WalFile::with_handle(
            env,
            path,
            fsync,
            registry,
            file,
            records,
            since_snapshot,
            bytes,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn with_handle(
        env: Arc<dyn Env>,
        path: PathBuf,
        fsync: bool,
        registry: Arc<Registry>,
        file: Box<dyn FsFile>,
        records: u64,
        since_snapshot: u64,
        bytes: u64,
    ) -> Self {
        WalFile {
            env,
            path,
            fsync,
            registry,
            inner: Mutex::new(WalInner {
                file: Some(file),
                records,
                since_snapshot,
                bytes,
                staged: String::new(),
                staged_meta: Vec::new(),
                batch: None,
                next_batch_seq: 0,
                poisoned: false,
            }),
            commit_cv: Condvar::new(),
        }
    }

    /// Records currently committed to the file.
    pub(crate) fn records(&self) -> u64 {
        self.inner.lock().expect("wal state").records
    }

    /// Records committed since the most recent snapshot record.
    pub(crate) fn since_snapshot(&self) -> u64 {
        self.inner.lock().expect("wal state").since_snapshot
    }

    /// Bytes currently committed to the file.
    pub(crate) fn bytes(&self) -> u64 {
        self.inner.lock().expect("wal state").bytes
    }

    /// Appends one record; with `fsync` enabled the record is on disk when
    /// this returns.  Concurrent appends are group-committed: see the
    /// type-level documentation for the staging / leader / follower
    /// protocol.
    ///
    /// On failure the file is rolled back to the last acknowledged record,
    /// so a half-written batch (write error) or a written-but-unsynced
    /// batch (fsync error after the write landed) can never sit in front
    /// of later acknowledged appends — either would be silently discarded
    /// at recovery, losing acknowledged data (torn fragment) or
    /// resurrecting rejected mutations (unsynced records).  If the
    /// rollback itself fails, the log is poisoned and rejects everything
    /// until a restart replays and truncates it.
    pub(crate) fn append(&self, record: &LogRecord) -> Result<(), StoreError> {
        self.append_traced(record, None)
    }

    /// [`append`] under an optional trace context: a `store.append` span
    /// (staging through resolution) is opened as a child of the given
    /// context, with a `store.commit_wait` child covering the queued
    /// portion; if this appender ends up leading its batch, the covering
    /// `store.fsync` span is parented under its append span.  With
    /// `trace: None` the call is byte-for-byte the untraced path — no
    /// extra clock or rng draws.
    ///
    /// [`append`]: WalFile::append
    pub(crate) fn append_traced(
        &self,
        record: &LogRecord,
        trace: Option<(&Tracer, &TraceContext)>,
    ) -> Result<(), StoreError> {
        let begun_ns = self.env.clock().monotonic().as_nanos() as u64;
        // The append span's own context is fixed up front so a leader can
        // parent its fsync span under it before the span closes.
        let append_ctx = trace.map(|(tracer, parent)| tracer.child_context(parent));
        let line = encode_record(record);
        let is_snapshot = matches!(record, LogRecord::Snapshot(_));
        let mut inner = self.inner.lock().expect("wal state");
        inner.check_poisoned(&self.path)?;
        // Stage under the lock and join the open batch's ticket.
        inner.staged.push_str(&line);
        inner.staged_meta.push(is_snapshot);
        let ticket = match &inner.batch {
            Some(t) => t.clone(),
            None => {
                let t = Arc::new(CommitTicket::new());
                inner.batch = Some(t.clone());
                t
            }
        };
        let staged_ns = self.env.clock().monotonic().as_nanos() as u64;
        loop {
            if let Some(outcome) = ticket.get() {
                let resolved_ns = self.env.clock().monotonic().as_nanos() as u64;
                self.registry
                    .store_append_ns
                    .record(resolved_ns.saturating_sub(begun_ns));
                self.registry
                    .store_commit_wait_ns
                    .record(resolved_ns.saturating_sub(staged_ns));
                if outcome.is_err() {
                    self.registry.store_append_errors.inc();
                }
                if let (Some((tracer, _)), Some(ctx)) = (trace, append_ctx) {
                    let wait =
                        tracer.start_at(tracer.child_context(&ctx), "store.commit_wait", staged_ns);
                    wait.finish_at(tracer, resolved_ns);
                    let mut span = tracer.start_at(ctx, "store.append", begun_ns);
                    if let Ok(seq) = outcome {
                        span.annotate("batch", seq.to_string());
                    }
                    span.finish_at(tracer, resolved_ns);
                }
                return outcome
                    .clone()
                    .map(|_| ())
                    .map_err(CommitError::into_store_error);
            }
            let batch_still_open = inner
                .batch
                .as_ref()
                .is_some_and(|b| Arc::ptr_eq(b, &ticket));
            if batch_still_open && inner.file.is_some() {
                // No leader is writing and our batch is still staged:
                // lead it ourselves (resolves `ticket`, so the next loop
                // iteration returns).
                inner = self.flush_batch(inner, trace.map(|(t, _)| (t, append_ctx.unwrap())));
                continue;
            }
            // Either a leader owns the handle or it owns our batch:
            // wait for it to publish.
            inner = self.commit_cv.wait(inner).expect("wal state");
        }
    }

    /// Takes the currently staged batch and commits it with one
    /// `write_all` + one `sync_data`, resolving its ticket.  Must be
    /// called with the file handle present and a batch staged; the lock
    /// is released for the duration of the I/O so later appends can stage
    /// the next batch meanwhile.
    fn flush_batch<'a>(
        &'a self,
        mut inner: MutexGuard<'a, WalInner>,
        trace: Option<(&Tracer, TraceContext)>,
    ) -> MutexGuard<'a, WalInner> {
        let batch = std::mem::take(&mut inner.staged);
        let meta = std::mem::take(&mut inner.staged_meta);
        let ticket = inner
            .batch
            .take()
            .expect("flush_batch needs a staged batch");
        let seq = inner.next_batch_seq;
        if inner.poisoned {
            let _ = ticket.set(Err(CommitError {
                kind: std::io::ErrorKind::Other,
                message: poison_message(&self.path),
            }));
            self.commit_cv.notify_all();
            return inner;
        }
        let mut file = inner
            .file
            .take()
            .expect("flush_batch needs the file handle");
        let acked_bytes = inner.bytes;
        drop(inner);
        // One write + one flush + one (covering) sync for the whole
        // batch: every record in it becomes durable together.
        let flush_begun_ns = self.env.clock().monotonic().as_nanos() as u64;
        let written = file
            .write_all(batch.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| if self.fsync { file.sync_data() } else { Ok(()) });
        let flush_ended_ns = self.env.clock().monotonic().as_nanos() as u64;
        self.registry
            .store_fsync_ns
            .record(flush_ended_ns.saturating_sub(flush_begun_ns));
        self.registry.store_batch_records.record(meta.len() as u64);
        if let Some((tracer, leader_ctx)) = trace {
            let mut span = tracer.start_at(
                tracer.child_context(&leader_ctx),
                "store.fsync",
                flush_begun_ns,
            );
            span.annotate("batch", seq.to_string());
            span.annotate("records", meta.len().to_string());
            span.finish_at(tracer, flush_ended_ns);
        }
        let outcome = match written {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the file back to the last acknowledged byte; the
                // whole batch fails together (no record of it was synced).
                let rolled_back = file.set_len(acked_bytes).and_then(|()| file.sync_data());
                if rolled_back.is_ok() {
                    self.registry.store_rollbacks.inc();
                    self.registry.event(
                        flush_ended_ns,
                        "wal.rollback",
                        format!(
                            "{}: rolled back to {acked_bytes} bytes: {e}",
                            self.path.display()
                        ),
                    );
                } else {
                    self.registry.store_poisons.inc();
                    self.registry.event(
                        flush_ended_ns,
                        "wal.poison",
                        format!("{}: rollback failed: {e}", self.path.display()),
                    );
                }
                Err((CommitError::of(&e), rolled_back.is_err()))
            }
        };
        let mut inner = self.inner.lock().expect("wal state");
        inner.file = Some(file);
        inner.next_batch_seq = seq + 1;
        match outcome {
            Ok(()) => {
                self.registry.store_appends_acked.add(meta.len() as u64);
                inner.records += meta.len() as u64;
                for is_snapshot in meta {
                    if is_snapshot {
                        inner.since_snapshot = 0;
                    } else {
                        inner.since_snapshot += 1;
                    }
                }
                inner.bytes += batch.len() as u64;
                let _ = ticket.set(Ok(seq));
            }
            Err((e, rollback_failed)) => {
                if rollback_failed {
                    inner.poisoned = true;
                }
                let _ = ticket.set(Err(e));
            }
        }
        self.commit_cv.notify_all();
        inner
    }

    /// Waits until no commit leader is writing, draining any staged batch
    /// first (leading it if necessary), and returns the guard with the
    /// file handle present and the stage empty.
    fn quiesce(&self) -> MutexGuard<'_, WalInner> {
        let mut inner = self.inner.lock().expect("wal state");
        loop {
            if inner.batch.is_some() && inner.file.is_some() {
                // A staged-but-unflushed batch: flush it now so no caller
                // of sync/rewrite can observe staged records dropped on a
                // clean shutdown.  Quiesce-driven flushes are untraced:
                // the stagers' own spans still resolve off the ticket.
                inner = self.flush_batch(inner, None);
                continue;
            }
            if inner.file.is_some() && inner.batch.is_none() {
                return inner;
            }
            inner = self.commit_cv.wait(inner).expect("wal state");
        }
    }

    /// Atomically replaces the log's contents with the given records
    /// (compaction: a single snapshot record).  Returns `(bytes_before,
    /// bytes_after)`.
    ///
    /// Runs quiesced: any in-flight batch commits first, and the lock is
    /// held across the whole temp-write + rename + reopen sequence, so a
    /// batch can never land in the unlinked pre-rewrite inode.
    pub(crate) fn rewrite(&self, records: &[LogRecord]) -> Result<(u64, u64), StoreError> {
        let mut inner = self.quiesce();
        inner.check_poisoned(&self.path)?;
        let bytes_before = inner.bytes;
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut text = String::new();
        for record in records {
            text.push_str(&encode_record(record));
        }
        // Failures before the rename leave the old log and its handle
        // fully intact — plain error returns are safe (the stray temp
        // file is removed best-effort).
        let tmp_written = (|| {
            let mut tmp = self.env.fs().open(&tmp_path, OpenMode::CreateTruncate)?;
            tmp.write_all(text.as_bytes())?;
            tmp.sync_all()?;
            Ok::<(), std::io::Error>(())
        })();
        if let Err(e) = tmp_written {
            let _ = self.env.fs().remove_file(&tmp_path);
            return Err(e.into());
        }
        if let Err(e) = self.env.fs().rename(&tmp_path, &self.path) {
            let _ = self.env.fs().remove_file(&tmp_path);
            return Err(e.into());
        }
        // From here on the rename has happened: the open handle points at
        // the unlinked pre-rewrite inode.  Any failure to re-establish a
        // handle on the renamed file must POISON the log — otherwise
        // later appends would be written (and fsync'd, and acknowledged)
        // into the unlinked inode and silently vanish on restart.
        let reopened = (|| {
            if self.fsync {
                self.env.fs().sync_parent_dir(&self.path)?;
            }
            self.env.fs().open(&self.path, OpenMode::Append)
        })();
        match reopened {
            Ok(file) => inner.file = Some(file),
            Err(e) => {
                inner.poisoned = true;
                return Err(e.into());
            }
        }
        inner.records = records.len() as u64;
        inner.since_snapshot = records
            .iter()
            .rev()
            .take_while(|r| !matches!(r, LogRecord::Snapshot(_)))
            .count() as u64;
        inner.bytes = text.len() as u64;
        Ok((bytes_before, inner.bytes))
    }

    /// Flushes and (when enabled) fsyncs the file, first draining any
    /// staged-but-unsynced batch — the clean-shutdown path must never
    /// drop records that are sitting in the commit queue.
    pub(crate) fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.quiesce();
        inner.check_poisoned(&self.path)?;
        let file = inner.file.as_mut().expect("quiesced handle");
        file.flush()?;
        if self.fsync {
            file.sync_data()?;
        }
        Ok(())
    }
}

/// Outcome of scanning one log file on open.
#[derive(Debug)]
pub(crate) struct ReplayOutcome {
    /// The decoded records, in log order (empty if the whole file was torn).
    pub(crate) records: Vec<LogRecord>,
    /// Bytes of intact records (the file is truncated to this length).
    pub(crate) good_bytes: u64,
    /// Bytes discarded as the torn tail.
    pub(crate) torn_bytes: u64,
    /// Records appended after the most recent snapshot record.
    pub(crate) since_snapshot: u64,
}

/// Reads a log file, decoding records until the first torn or corrupt
/// line, and **truncates the file** to the intact prefix so subsequent
/// appends extend a clean log.
///
/// A record is intact when its line is newline-terminated, parses, and
/// passes its checksum.  Everything from the first failure on is the torn
/// tail — records after a corrupt line are unreplayable because log order
/// is the mutation order.
pub(crate) fn replay(fs: &dyn Fs, path: &Path) -> Result<ReplayOutcome, StoreError> {
    let data = fs.read(path)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut since_snapshot = 0u64;
    while offset < data.len() {
        let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
            break; // unterminated tail
        };
        let line_bytes = &data[offset..offset + nl];
        let Ok(line) = std::str::from_utf8(line_bytes) else {
            break;
        };
        let Ok(record) = decode_record(line) else {
            break;
        };
        if matches!(record, LogRecord::Snapshot(_)) {
            since_snapshot = 0;
        } else {
            since_snapshot += 1;
        }
        records.push(record);
        offset += nl + 1;
    }
    let good_bytes = offset as u64;
    let torn_bytes = (data.len() - offset) as u64;
    if torn_bytes > 0 {
        let mut file = fs.open(path, OpenMode::Write)?;
        file.set_len(good_bytes)?;
        file.sync_all()?;
    }
    Ok(ReplayOutcome {
        records,
        good_bytes,
        torn_bytes,
        since_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::RealEnv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn real_env() -> Arc<dyn Env> {
        RealEnv::arc()
    }

    /// The freshly-created handle must write at EOF *by mode*: after the
    /// rollback path truncates with `set_len`, a write-mode cursor would
    /// sit past EOF and the next acknowledged append would land behind a
    /// NUL-filled hole that recovery truncates away — silent loss of
    /// acknowledged records.
    #[test]
    fn create_handle_appends_at_eof_after_rollback_truncation() {
        let dir = std::env::temp_dir().join(format!("cqfit_wal_cursor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let env = real_env();
        let path = dir.join("t.wal");
        let record = LogRecord::Create {
            schema: cqfit_data::Schema::digraph().as_ref().clone(),
            arity: 0,
        };
        let wal =
            WalFile::create(env.clone(), path.clone(), false, Arc::new(Registry::new())).unwrap();
        wal.append(&record).unwrap();
        let one_record = std::fs::metadata(&path).unwrap().len();
        // Simulate the append-failure rollback: truncate everything and
        // reset the counters, exactly as the error path does.
        {
            let mut inner = wal.inner.lock().unwrap();
            inner.file.as_mut().unwrap().set_len(0).unwrap();
            inner.bytes = 0;
            inner.records = 0;
            inner.since_snapshot = 0;
        }
        // The next append must land at the new EOF (offset 0), not at the
        // pre-truncation cursor position.
        wal.append(&record).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            one_record,
            "append after truncation must not leave a hole"
        );
        let outcome = replay(env.fs(), &path).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Group commit: concurrent appenders against one log all come back
    /// acknowledged, every record is intact on disk, and the counters
    /// match — regardless of how the batches formed.
    #[test]
    fn concurrent_appends_group_commit_without_losing_records() {
        let dir = std::env::temp_dir().join(format!("cqfit_wal_group_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let env = real_env();
        let path = dir.join("g.wal");
        let registry = Arc::new(Registry::new());
        let wal =
            Arc::new(WalFile::create(env.clone(), path.clone(), true, registry.clone()).unwrap());
        let schema = cqfit_data::Schema::digraph();
        let example = cqfit_data::parse_example(&schema, "R(a,b)").unwrap();
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 25;
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let wal = wal.clone();
                let example = example.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        wal.append(&LogRecord::AddExample {
                            id: (w as u64) * PER_WRITER + i,
                            positive: true,
                            example: example.clone(),
                            request_id: Some((w as u64) << 32 | i),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.records(), WRITERS as u64 * PER_WRITER);
        assert_eq!(wal.bytes(), std::fs::metadata(&path).unwrap().len());
        let outcome = replay(env.fs(), &path).unwrap();
        assert_eq!(outcome.records.len(), WRITERS * PER_WRITER as usize);
        assert_eq!(outcome.torn_bytes, 0);
        let mut ids: Vec<u64> = outcome
            .records
            .iter()
            .map(|r| match r {
                LogRecord::AddExample { id, .. } => *id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..WRITERS as u64 * PER_WRITER).collect::<Vec<_>>());
        // Metric invariants: every acked record was counted exactly once,
        // the batch-size distribution covers exactly the acked records,
        // and nothing failed or rolled back.
        let total = WRITERS as u64 * PER_WRITER;
        assert_eq!(registry.store_appends_acked.get(), total);
        assert_eq!(registry.store_batch_records.snapshot().sum, total);
        assert_eq!(registry.store_append_ns.count(), total);
        assert_eq!(registry.store_commit_wait_ns.count(), total);
        assert_eq!(registry.store_append_errors.get(), 0);
        assert_eq!(registry.store_rollbacks.get(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn name_encoding_round_trips_and_is_safe() {
        for name in ["plain", "with space", "sl/ash", "..", "ünïcode", "a%b", ""] {
            let encoded = encode_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "unsafe byte in {encoded:?}"
            );
            assert_eq!(decode_name(&encoded).as_deref(), Some(name));
        }
        // Distinct names cannot collide (injective encoding).
        assert_ne!(encode_name("a b"), encode_name("a_b"));
        // Stems we did not write are rejected, not misdecoded.
        assert_eq!(decode_name("has.dot"), None);
        assert_eq!(decode_name("bad%zz"), None);
        assert_eq!(decode_name("trunc%4"), None);
        // Non-canonical encodings must not collapse onto canonical names:
        // `%61` (an escaped safe byte) and lowercase hex decode to names
        // whose canonical stems differ, so both are rejected.
        assert_eq!(decode_name("%61"), None, "escape of a safe byte");
        assert_eq!(decode_name("a%2fb"), None, "lowercase hex");
        assert_eq!(decode_name("a%2Fb").as_deref(), Some("a/b"));
    }

    /// A random workspace name drawn to stress the encoder: adversarial
    /// mixes of safe ASCII, percent signs, hex-looking pairs, multi-byte
    /// unicode (including astral-plane), control bytes, and path
    /// metacharacters.
    fn adversarial_name(rng: &mut StdRng) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '0', '-', '_', '%', '2', 'F', 'f', '.', '/', '\\', ' ', '\n', '\t', '\0',
            'é', 'ü', 'ß', 'λ', '中', '🦀', '\u{7f}', '\u{80}', '\u{2028}', '\u{fffd}',
        ];
        let len = rng.gen_range(0usize..24);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }

    /// Property fuzz (satellite of PR 6): across seeded random adversarial
    /// names, encoding round-trips, stays filesystem-safe, and is
    /// injective; random *stems* either decode-then-re-encode canonically
    /// or are rejected — no stem decodes to a name whose canonical file
    /// would differ.
    #[test]
    fn fuzz_name_encoding_round_trip_and_injectivity() {
        let seed = std::env::var("CQFIT_SIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE_u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stems: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for i in 0..2000 {
            let name = adversarial_name(&mut rng);
            let stem = encode_name(&name);
            assert!(
                stem.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "seed {seed} iter {i}: unsafe stem {stem:?} for {name:?}"
            );
            assert_eq!(
                decode_name(&stem).as_deref(),
                Some(name.as_str()),
                "seed {seed} iter {i}: round-trip failed for {name:?}"
            );
            // Injectivity: a stem seen before must come from the same name.
            if let Some(prev) = stems.insert(stem.clone(), name.clone()) {
                assert_eq!(
                    prev, name,
                    "seed {seed} iter {i}: names {prev:?} and {name:?} collide on stem {stem:?}"
                );
            }
        }
        // Canonicality: random stems built from the *stem* alphabet either
        // reject or re-encode to themselves — never to a different stem.
        const STEM_POOL: &[u8] = b"azAZ09-_%%%%0123456789abcdefABCDEF";
        for i in 0..2000 {
            let len = rng.gen_range(0usize..16);
            let stem: String = (0..len)
                .map(|_| STEM_POOL[rng.gen_range(0..STEM_POOL.len())] as char)
                .collect();
            if let Some(name) = decode_name(&stem) {
                assert_eq!(
                    encode_name(&name),
                    stem,
                    "seed {seed} iter {i}: stem {stem:?} decoded non-canonically to {name:?}"
                );
            }
        }
    }
}
