//! Append-only log files: framing, fsync discipline, torn-tail
//! truncation, and atomic snapshot rewrites.
//!
//! One file per workspace, named by a percent-style encoding of the
//! workspace name (so arbitrary names cannot escape the data directory or
//! collide), extension `.wal`.  Appends go through a single handle opened
//! in append mode; with `fsync` enabled every append is `sync_data`'d
//! before it is acknowledged, which is what bounds the loss window of a
//! `kill -9` to the single unacknowledged request.  Compaction rewrites
//! the log as one snapshot record via the classic temp-file + rename +
//! directory-sync sequence, so a crash mid-compaction leaves either the
//! old log or the new one, never a mix.
//!
//! Every filesystem call goes through [`cqfit_env::Fs`], so the same code
//! runs against the real filesystem in production and against
//! `cqfit-sim`'s crash-injecting `SimFs` in the simulation harness.

use crate::record::{decode_record, encode_record, LogRecord};
use crate::StoreError;
use cqfit_env::{Env, Fs, FsFile, OpenMode};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Extension of write-ahead log files.
pub(crate) const WAL_EXT: &str = "wal";

/// Encodes a workspace name as a filesystem-safe file stem: ASCII
/// alphanumerics, `-` and `_` pass through, every other byte becomes
/// `%XX`.  The encoding is injective, so distinct workspace names never
/// share a log file.
pub(crate) fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Decodes a file stem produced by [`encode_name`]; `None` for stems this
/// store did not write (stray files in the data directory are skipped, not
/// destroyed).
///
/// Only the *canonical* encoding is accepted: a stem using lowercase hex
/// or escaping a byte that did not need escaping decodes to a name whose
/// re-encoding differs, and is rejected — otherwise two distinct on-disk
/// stems (e.g. `a` and `%61`) would collapse onto one workspace name and
/// recovery would silently pair one file's state with another's handle.
pub(crate) fn decode_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = stem.get(i + 1..i + 3)?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    let name = String::from_utf8(out).ok()?;
    (encode_name(&name) == stem).then_some(name)
}

/// The open append handle of one workspace's log, with its record and byte
/// counters.
#[derive(Debug)]
pub(crate) struct WalFile {
    env: Arc<dyn Env>,
    path: PathBuf,
    file: Box<dyn FsFile>,
    fsync: bool,
    /// Records currently in the file.
    pub(crate) records: u64,
    /// Records appended since the most recent snapshot record (compaction
    /// budget accounting; the snapshot itself does not count).
    pub(crate) since_snapshot: u64,
    /// Bytes currently in the file.
    pub(crate) bytes: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// tail no longer matches the counters, so further appends could land
    /// *behind* torn bytes and be silently discarded at recovery.  A
    /// poisoned log rejects every operation until a restart replays and
    /// truncates it.
    poisoned: bool,
}

impl WalFile {
    /// Creates a fresh (truncated) log file.
    pub(crate) fn create(
        env: Arc<dyn Env>,
        path: PathBuf,
        fsync: bool,
    ) -> Result<Self, StoreError> {
        // Truncate any stale file first, then take the real handle in
        // O_APPEND mode — every write must land at EOF *by mode*, not by
        // cursor position: the append-failure rollback truncates with
        // `set_len`, which does not move a write-mode cursor, and a
        // stale cursor past EOF would make the next acknowledged append
        // write behind a NUL hole that recovery then truncates away.
        drop(env.fs().open(&path, OpenMode::CreateTruncate)?);
        let file = env.fs().open(&path, OpenMode::Append)?;
        if fsync {
            env.fs().sync_parent_dir(&path)?;
        }
        Ok(WalFile {
            env,
            path,
            file,
            fsync,
            records: 0,
            since_snapshot: 0,
            bytes: 0,
            poisoned: false,
        })
    }

    /// Opens an existing log for appending, with counters supplied by the
    /// replay that just scanned it.
    pub(crate) fn open_append(
        env: Arc<dyn Env>,
        path: PathBuf,
        fsync: bool,
        records: u64,
        since_snapshot: u64,
        bytes: u64,
    ) -> Result<Self, StoreError> {
        let file = env.fs().open(&path, OpenMode::Append)?;
        Ok(WalFile {
            env,
            path,
            file,
            fsync,
            records,
            since_snapshot,
            bytes,
            poisoned: false,
        })
    }

    fn check_poisoned(&self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Corrupt(format!(
                "log {} is poisoned by an earlier unrecoverable I/O failure; \
                 restart to replay and truncate it",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Appends one record; with `fsync` enabled the record is on disk when
    /// this returns.
    ///
    /// On failure the file is rolled back to the last acknowledged record,
    /// so a half-written line (write error) or a written-but-unsynced
    /// record (fsync error after the write landed) can never sit in front
    /// of later acknowledged appends — either would be silently discarded
    /// at recovery, losing acknowledged data (torn fragment) or
    /// resurrecting a rejected mutation (unsynced record).  If the
    /// rollback itself fails, the log is poisoned and rejects everything
    /// until a restart replays and truncates it.
    pub(crate) fn append(&mut self, record: &LogRecord) -> Result<(), StoreError> {
        self.check_poisoned()?;
        let line = encode_record(record);
        let written = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| {
                if self.fsync {
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            });
        if let Err(e) = written {
            let rolled_back = self
                .file
                .set_len(self.bytes)
                .and_then(|()| self.file.sync_data());
            if rolled_back.is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.records += 1;
        if matches!(record, LogRecord::Snapshot(_)) {
            self.since_snapshot = 0;
        } else {
            self.since_snapshot += 1;
        }
        self.bytes += line.len() as u64;
        Ok(())
    }

    /// Atomically replaces the log's contents with the given records
    /// (compaction: a single snapshot record).  Returns `(bytes_before,
    /// bytes_after)`.
    pub(crate) fn rewrite(&mut self, records: &[LogRecord]) -> Result<(u64, u64), StoreError> {
        self.check_poisoned()?;
        let bytes_before = self.bytes;
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut text = String::new();
        for record in records {
            text.push_str(&encode_record(record));
        }
        // Failures before the rename leave the old log and its handle
        // fully intact — plain error returns are safe (the stray temp
        // file is removed best-effort).
        let tmp_written = (|| {
            let mut tmp = self.env.fs().open(&tmp_path, OpenMode::CreateTruncate)?;
            tmp.write_all(text.as_bytes())?;
            tmp.sync_all()?;
            Ok::<(), std::io::Error>(())
        })();
        if let Err(e) = tmp_written {
            let _ = self.env.fs().remove_file(&tmp_path);
            return Err(e.into());
        }
        if let Err(e) = self.env.fs().rename(&tmp_path, &self.path) {
            let _ = self.env.fs().remove_file(&tmp_path);
            return Err(e.into());
        }
        // From here on the rename has happened: the open handle points at
        // the unlinked pre-rewrite inode.  Any failure to re-establish a
        // handle on the renamed file must POISON the log — otherwise
        // later appends would be written (and fsync'd, and acknowledged)
        // into the unlinked inode and silently vanish on restart.
        let reopened = (|| {
            if self.fsync {
                self.env.fs().sync_parent_dir(&self.path)?;
            }
            self.env.fs().open(&self.path, OpenMode::Append)
        })();
        match reopened {
            Ok(file) => self.file = file,
            Err(e) => {
                self.poisoned = true;
                return Err(e.into());
            }
        }
        self.records = records.len() as u64;
        self.since_snapshot = records
            .iter()
            .rev()
            .take_while(|r| !matches!(r, LogRecord::Snapshot(_)))
            .count() as u64;
        self.bytes = text.len() as u64;
        Ok((bytes_before, self.bytes))
    }

    /// Flushes and (when enabled) fsyncs the file.
    pub(crate) fn sync(&mut self) -> Result<(), StoreError> {
        self.check_poisoned()?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Outcome of scanning one log file on open.
#[derive(Debug)]
pub(crate) struct ReplayOutcome {
    /// The decoded records, in log order (empty if the whole file was torn).
    pub(crate) records: Vec<LogRecord>,
    /// Bytes of intact records (the file is truncated to this length).
    pub(crate) good_bytes: u64,
    /// Bytes discarded as the torn tail.
    pub(crate) torn_bytes: u64,
    /// Records appended after the most recent snapshot record.
    pub(crate) since_snapshot: u64,
}

/// Reads a log file, decoding records until the first torn or corrupt
/// line, and **truncates the file** to the intact prefix so subsequent
/// appends extend a clean log.
///
/// A record is intact when its line is newline-terminated, parses, and
/// passes its checksum.  Everything from the first failure on is the torn
/// tail — records after a corrupt line are unreplayable because log order
/// is the mutation order.
pub(crate) fn replay(fs: &dyn Fs, path: &Path) -> Result<ReplayOutcome, StoreError> {
    let data = fs.read(path)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut since_snapshot = 0u64;
    while offset < data.len() {
        let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
            break; // unterminated tail
        };
        let line_bytes = &data[offset..offset + nl];
        let Ok(line) = std::str::from_utf8(line_bytes) else {
            break;
        };
        let Ok(record) = decode_record(line) else {
            break;
        };
        if matches!(record, LogRecord::Snapshot(_)) {
            since_snapshot = 0;
        } else {
            since_snapshot += 1;
        }
        records.push(record);
        offset += nl + 1;
    }
    let good_bytes = offset as u64;
    let torn_bytes = (data.len() - offset) as u64;
    if torn_bytes > 0 {
        let mut file = fs.open(path, OpenMode::Write)?;
        file.set_len(good_bytes)?;
        file.sync_all()?;
    }
    Ok(ReplayOutcome {
        records,
        good_bytes,
        torn_bytes,
        since_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_env::RealEnv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn real_env() -> Arc<dyn Env> {
        RealEnv::arc()
    }

    /// The freshly-created handle must write at EOF *by mode*: after the
    /// rollback path truncates with `set_len`, a write-mode cursor would
    /// sit past EOF and the next acknowledged append would land behind a
    /// NUL-filled hole that recovery truncates away — silent loss of
    /// acknowledged records.
    #[test]
    fn create_handle_appends_at_eof_after_rollback_truncation() {
        let dir = std::env::temp_dir().join(format!("cqfit_wal_cursor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let env = real_env();
        let path = dir.join("t.wal");
        let record = LogRecord::Create {
            schema: cqfit_data::Schema::digraph().as_ref().clone(),
            arity: 0,
        };
        let mut wal = WalFile::create(env.clone(), path.clone(), false).unwrap();
        wal.append(&record).unwrap();
        let one_record = std::fs::metadata(&path).unwrap().len();
        // Simulate the append-failure rollback: truncate everything and
        // reset the counters, exactly as the error path does.
        wal.file.set_len(0).unwrap();
        wal.bytes = 0;
        wal.records = 0;
        wal.since_snapshot = 0;
        // The next append must land at the new EOF (offset 0), not at the
        // pre-truncation cursor position.
        wal.append(&record).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            one_record,
            "append after truncation must not leave a hole"
        );
        let outcome = replay(env.fs(), &path).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn name_encoding_round_trips_and_is_safe() {
        for name in ["plain", "with space", "sl/ash", "..", "ünïcode", "a%b", ""] {
            let encoded = encode_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "unsafe byte in {encoded:?}"
            );
            assert_eq!(decode_name(&encoded).as_deref(), Some(name));
        }
        // Distinct names cannot collide (injective encoding).
        assert_ne!(encode_name("a b"), encode_name("a_b"));
        // Stems we did not write are rejected, not misdecoded.
        assert_eq!(decode_name("has.dot"), None);
        assert_eq!(decode_name("bad%zz"), None);
        assert_eq!(decode_name("trunc%4"), None);
        // Non-canonical encodings must not collapse onto canonical names:
        // `%61` (an escaped safe byte) and lowercase hex decode to names
        // whose canonical stems differ, so both are rejected.
        assert_eq!(decode_name("%61"), None, "escape of a safe byte");
        assert_eq!(decode_name("a%2fb"), None, "lowercase hex");
        assert_eq!(decode_name("a%2Fb").as_deref(), Some("a/b"));
    }

    /// A random workspace name drawn to stress the encoder: adversarial
    /// mixes of safe ASCII, percent signs, hex-looking pairs, multi-byte
    /// unicode (including astral-plane), control bytes, and path
    /// metacharacters.
    fn adversarial_name(rng: &mut StdRng) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '0', '-', '_', '%', '2', 'F', 'f', '.', '/', '\\', ' ', '\n', '\t', '\0',
            'é', 'ü', 'ß', 'λ', '中', '🦀', '\u{7f}', '\u{80}', '\u{2028}', '\u{fffd}',
        ];
        let len = rng.gen_range(0usize..24);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }

    /// Property fuzz (satellite of PR 6): across seeded random adversarial
    /// names, encoding round-trips, stays filesystem-safe, and is
    /// injective; random *stems* either decode-then-re-encode canonically
    /// or are rejected — no stem decodes to a name whose canonical file
    /// would differ.
    #[test]
    fn fuzz_name_encoding_round_trip_and_injectivity() {
        let seed = std::env::var("CQFIT_SIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE_u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stems: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for i in 0..2000 {
            let name = adversarial_name(&mut rng);
            let stem = encode_name(&name);
            assert!(
                stem.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "seed {seed} iter {i}: unsafe stem {stem:?} for {name:?}"
            );
            assert_eq!(
                decode_name(&stem).as_deref(),
                Some(name.as_str()),
                "seed {seed} iter {i}: round-trip failed for {name:?}"
            );
            // Injectivity: a stem seen before must come from the same name.
            if let Some(prev) = stems.insert(stem.clone(), name.clone()) {
                assert_eq!(
                    prev, name,
                    "seed {seed} iter {i}: names {prev:?} and {name:?} collide on stem {stem:?}"
                );
            }
        }
        // Canonicality: random stems built from the *stem* alphabet either
        // reject or re-encode to themselves — never to a different stem.
        const STEM_POOL: &[u8] = b"azAZ09-_%%%%0123456789abcdefABCDEF";
        for i in 0..2000 {
            let len = rng.gen_range(0usize..16);
            let stem: String = (0..len)
                .map(|_| STEM_POOL[rng.gen_range(0..STEM_POOL.len())] as char)
                .collect();
            if let Some(name) = decode_name(&stem) {
                assert_eq!(
                    encode_name(&name),
                    stem,
                    "seed {seed} iter {i}: stem {stem:?} decoded non-canonically to {name:?}"
                );
            }
        }
    }
}
