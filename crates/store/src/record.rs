//! The log-record format of the write-ahead log.
//!
//! Every record is one JSONL line of the form
//!
//! ```text
//! {"crc":3632233996,"rec":{"op":"add","id":0,"polarity":"positive","example":{…}}}
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the serialized `rec` value, byte for
//! byte as written.  The vendored JSON writer is deterministic (object keys
//! keep insertion order, integers print canonically), so re-serializing the
//! parsed `rec` value reproduces the written bytes exactly and the checksum
//! can be verified without storing the raw body twice.  A line that fails
//! to parse, fails the checksum, or lacks its trailing newline marks the
//! torn tail of the log: everything from that byte offset on is discarded
//! (see the crate documentation on recovery).
//!
//! Record kinds mirror the engine's mutations: `create` (schema + arity),
//! `add` / `remove` (one example by id and polarity), and `snapshot` (the
//! full workspace state, written by log compaction; replay restarts from
//! the most recent snapshot).

use cqfit_data::{Example, Schema};
use serde::json::{JsonError, Value as Json};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A full copy of one workspace's logical state, as carried by a
/// `snapshot` record and returned by recovery.
///
/// `next_id` and `revision` are stored explicitly so a restored workspace
/// hands out the same example ids and reports the same revision as the
/// pre-crash engine (clients hold ids across restarts).
#[derive(Debug, Clone)]
pub struct WorkspaceSnapshot {
    /// Schema of the workspace's examples.
    pub schema: Schema,
    /// Arity of the workspace's examples.
    pub arity: usize,
    /// The id the next added example will receive.
    pub next_id: u64,
    /// The workspace's mutation counter.
    pub revision: u64,
    /// Positive examples with their ids, in id order.
    pub positives: Vec<(u64, Example)>,
    /// Negative examples with their ids, in id order.
    pub negatives: Vec<(u64, Example)>,
}

/// One record of a workspace's write-ahead log.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// The workspace was created.  Always the first record of a fresh log.
    Create {
        /// Schema of the workspace's examples.
        schema: Schema,
        /// Arity of the workspace's examples.
        arity: usize,
    },
    /// An example was added.
    AddExample {
        /// The id the engine assigned.
        id: u64,
        /// `true` for `E⁺`, `false` for `E⁻`.
        positive: bool,
        /// The example itself.
        example: Example,
        /// The client-supplied idempotency id of the request that caused
        /// this mutation, when it carried one.  Recovery feeds these back
        /// into the engine's exactly-once memo so a retry that races a
        /// crash cannot re-apply after restart.
        request_id: Option<u64>,
    },
    /// An example was removed.
    RemoveExample {
        /// The id being removed.
        id: u64,
        /// `true` for `E⁺`, `false` for `E⁻`.
        positive: bool,
        /// The idempotency id of the causing request (see
        /// [`LogRecord::AddExample::request_id`]).
        request_id: Option<u64>,
    },
    /// A full state snapshot, written by log compaction.  Replay restarts
    /// from the most recent snapshot and folds the records after it.
    Snapshot(WorkspaceSnapshot),
}

fn polarity_str(positive: bool) -> &'static str {
    if positive {
        "positive"
    } else {
        "negative"
    }
}

fn parse_polarity(s: &str) -> Result<bool, JsonError> {
    match s {
        "positive" => Ok(true),
        "negative" => Ok(false),
        other => Err(JsonError::semantic(format!(
            "unknown polarity `{other}` in log record"
        ))),
    }
}

fn examples_json(examples: &[(u64, Example)]) -> Json {
    Json::Arr(
        examples
            .iter()
            .map(|(id, e)| Json::obj([("id", id.to_json()), ("example", e.to_json())]))
            .collect(),
    )
}

fn examples_from_json(v: &Json) -> Result<Vec<(u64, Example)>, JsonError> {
    v.as_arr()
        .ok_or_else(|| JsonError::mismatch("array", v))?
        .iter()
        .map(|entry| {
            Ok((
                u64::from_json(entry.req("id")?)?,
                Example::from_json(entry.req("example")?)?,
            ))
        })
        .collect()
}

impl Serialize for WorkspaceSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", self.schema.to_json()),
            ("arity", Json::Int(self.arity as i64)),
            ("next_id", self.next_id.to_json()),
            ("revision", self.revision.to_json()),
            ("positives", examples_json(&self.positives)),
            ("negatives", examples_json(&self.negatives)),
        ])
    }
}

impl Deserialize for WorkspaceSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(WorkspaceSnapshot {
            schema: Schema::from_json(v.req("schema")?)?,
            arity: usize::from_json(v.req("arity")?)?,
            next_id: u64::from_json(v.req("next_id")?)?,
            revision: u64::from_json(v.req("revision")?)?,
            positives: examples_from_json(v.req("positives")?)?,
            negatives: examples_from_json(v.req("negatives")?)?,
        })
    }
}

impl Serialize for LogRecord {
    fn to_json(&self) -> Json {
        match self {
            LogRecord::Create { schema, arity } => Json::obj([
                ("op", Json::str("create")),
                ("schema", schema.to_json()),
                ("arity", Json::Int(*arity as i64)),
            ]),
            LogRecord::AddExample {
                id,
                positive,
                example,
                request_id,
            } => {
                // The request id is emitted only when present, so logs
                // written before the field existed re-encode byte for
                // byte (the CRC check re-serializes the parsed body).
                let mut pairs = vec![
                    ("op".to_string(), Json::str("add")),
                    ("id".to_string(), id.to_json()),
                    ("polarity".to_string(), Json::str(polarity_str(*positive))),
                    ("example".to_string(), example.to_json()),
                ];
                if let Some(rid) = request_id {
                    pairs.push(("request_id".to_string(), rid.to_json()));
                }
                Json::Obj(pairs)
            }
            LogRecord::RemoveExample {
                id,
                positive,
                request_id,
            } => {
                let mut pairs = vec![
                    ("op".to_string(), Json::str("remove")),
                    ("id".to_string(), id.to_json()),
                    ("polarity".to_string(), Json::str(polarity_str(*positive))),
                ];
                if let Some(rid) = request_id {
                    pairs.push(("request_id".to_string(), rid.to_json()));
                }
                Json::Obj(pairs)
            }
            LogRecord::Snapshot(s) => {
                // One source of truth for the snapshot shape: prepend the
                // op tag to WorkspaceSnapshot's own serialization (the
                // Deserialize side reuses WorkspaceSnapshot::from_json
                // the same way).
                let mut pairs = vec![("op".to_string(), Json::str("snapshot"))];
                match s.to_json() {
                    Json::Obj(fields) => pairs.extend(fields),
                    other => unreachable!("snapshot serializes as an object, got {other:?}"),
                }
                Json::Obj(pairs)
            }
        }
    }
}

impl Deserialize for LogRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let op = String::from_json(v.req("op")?)?;
        match op.as_str() {
            "create" => Ok(LogRecord::Create {
                schema: Schema::from_json(v.req("schema")?)?,
                arity: usize::from_json(v.req("arity")?)?,
            }),
            "add" => Ok(LogRecord::AddExample {
                id: u64::from_json(v.req("id")?)?,
                positive: parse_polarity(&String::from_json(v.req("polarity")?)?)?,
                example: Example::from_json(v.req("example")?)?,
                request_id: v.get("request_id").map(u64::from_json).transpose()?,
            }),
            "remove" => Ok(LogRecord::RemoveExample {
                id: u64::from_json(v.req("id")?)?,
                positive: parse_polarity(&String::from_json(v.req("polarity")?)?)?,
                request_id: v.get("request_id").map(u64::from_json).transpose()?,
            }),
            "snapshot" => Ok(LogRecord::Snapshot(WorkspaceSnapshot::from_json(v)?)),
            other => Err(JsonError::semantic(format!(
                "unknown log record op `{other}`"
            ))),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Encodes one record as a checksummed JSONL line (including the trailing
/// newline).
pub fn encode_record(record: &LogRecord) -> String {
    let body = serde::to_string(record);
    let crc = crc32(body.as_bytes());
    format!("{{\"crc\":{crc},\"rec\":{body}}}\n")
}

/// Decodes one log line (without its trailing newline), verifying the
/// checksum against the re-serialized record body.
///
/// # Errors
/// Returns a human-readable description on parse failure, checksum
/// mismatch, or structural mismatch — all of which mark the line (and
/// everything after it) as the torn tail of the log.
pub fn decode_record(line: &str) -> Result<LogRecord, String> {
    let v = Json::parse(line).map_err(|e| format!("unparsable log line: {e}"))?;
    let crc = u32::from_json(v.req("crc").map_err(|e| e.to_string())?)
        .map_err(|e| format!("bad crc field: {e}"))?;
    let rec = v.req("rec").map_err(|e| e.to_string())?;
    let body = rec.to_string();
    let actual = crc32(body.as_bytes());
    if actual != crc {
        return Err(format!(
            "checksum mismatch: record says {crc}, body hashes to {actual}"
        ));
    }
    LogRecord::from_json(rec).map_err(|e| format!("malformed log record: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfit_data::parse_example;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn sample_records() -> Vec<LogRecord> {
        let schema = Schema::digraph();
        let e = parse_example(&schema, "R(a,b)\nR(b,c)").unwrap();
        vec![
            LogRecord::Create {
                schema: schema.as_ref().clone(),
                arity: 0,
            },
            LogRecord::AddExample {
                id: 0,
                positive: true,
                example: e.clone(),
                request_id: None,
            },
            LogRecord::AddExample {
                id: 1,
                positive: false,
                example: e.clone(),
                request_id: Some(0x1234_5678_9ABC),
            },
            LogRecord::RemoveExample {
                id: 0,
                positive: false,
                request_id: None,
            },
            LogRecord::RemoveExample {
                id: 1,
                positive: false,
                request_id: Some(7),
            },
            LogRecord::Snapshot(WorkspaceSnapshot {
                schema: schema.as_ref().clone(),
                arity: 0,
                next_id: 3,
                revision: 7,
                positives: vec![(1, e.clone())],
                negatives: vec![(2, e)],
            }),
        ]
    }

    #[test]
    fn records_round_trip_through_the_line_format() {
        for record in sample_records() {
            let line = encode_record(&record);
            assert!(line.ends_with('\n'));
            let back = decode_record(line.trim_end()).unwrap();
            // Structural identity via re-encoding: the writer is
            // deterministic, so equal encodings mean equal records.
            assert_eq!(encode_record(&back), line);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let line = encode_record(&sample_records()[1]);
        let trimmed = line.trim_end();
        // Flip one byte inside the record body.
        let mut bytes = trimmed.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'0' { b'1' } else { b'0' };
        let tampered = String::from_utf8_lossy(&bytes).into_owned();
        assert!(decode_record(&tampered).is_err());
        // Truncation is also rejected.
        assert!(decode_record(&trimmed[..trimmed.len() - 4]).is_err());
        // Garbage is rejected.
        assert!(decode_record("not json at all").is_err());
        assert!(decode_record("{\"crc\":1}").is_err());
    }

    #[test]
    fn request_ids_round_trip_and_old_lines_still_decode() {
        let schema = Schema::digraph();
        let e = parse_example(&schema, "R(a,b)").unwrap();
        let with_id = LogRecord::AddExample {
            id: 4,
            positive: true,
            example: e,
            request_id: Some(0xDEAD_BEEF),
        };
        let line = encode_record(&with_id);
        assert!(line.contains("\"request_id\":3735928559"));
        match decode_record(line.trim_end()).unwrap() {
            LogRecord::AddExample { request_id, .. } => {
                assert_eq!(request_id, Some(0xDEAD_BEEF));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A pre-PR8 line (no request_id field) still decodes, still
        // passes its CRC, and re-encodes byte-identically.
        let old = LogRecord::RemoveExample {
            id: 2,
            positive: false,
            request_id: None,
        };
        let old_line = encode_record(&old);
        assert!(!old_line.contains("request_id"));
        let back = decode_record(old_line.trim_end()).unwrap();
        assert_eq!(encode_record(&back), old_line);
    }

    #[test]
    fn snapshot_preserves_ids_and_counters() {
        let record = sample_records().pop().unwrap();
        let back = decode_record(encode_record(&record).trim_end()).unwrap();
        match back {
            LogRecord::Snapshot(s) => {
                assert_eq!(s.next_id, 3);
                assert_eq!(s.revision, 7);
                assert_eq!(s.positives.len(), 1);
                assert_eq!(s.positives[0].0, 1);
                assert_eq!(s.negatives[0].0, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
